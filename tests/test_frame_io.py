"""Unit tests for CSV I/O."""

import pytest

from repro.frame import DataFrame, dtypes, read_csv, read_csv_text, write_csv, write_csv_text


class TestRead:
    def test_basic_inference(self):
        df = read_csv_text("a,b,c\n1,2.5,x\n2,3.5,y\n")
        assert df["a"].dtype == dtypes.INT64
        assert df["b"].dtype == dtypes.FLOAT64
        assert df["c"].dtype == dtypes.STRING

    def test_missing_tokens(self):
        df = read_csv_text("a\n1\nN/A\n\n")
        assert df["a"].to_list() == [1, None, None]

    def test_messy_numeric_becomes_mixed(self):
        df = read_csv_text("income\n50000\n12k\n61000\n")
        assert df["income"].dtype == dtypes.MIXED
        assert df["income"].to_list() == [50000, "12k", 61000]

    def test_dtype_override(self):
        df = read_csv_text("a\n1\n2\n", dtypes_map={"a": dtypes.FLOAT64})
        assert df["a"].dtype == dtypes.FLOAT64

    def test_ragged_rows_pad_with_missing(self):
        df = read_csv_text("a,b\n1,2\n3\n")
        assert df["b"].to_list() == [2, None]

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            read_csv_text("")


class TestWrite:
    def test_roundtrip(self):
        df = DataFrame.from_dict({
            "cat": ["x", None], "val": [1.5, 2.5], "n": [1, None],
        })
        again = read_csv_text(write_csv_text(df))
        assert again["cat"].to_list() == ["x", None]
        assert again["val"].to_list() == [1.5, 2.5]
        assert again["n"].to_list() == [1, None]

    def test_file_roundtrip(self, tmp_path):
        df = DataFrame.from_dict({"a": [1, 2]})
        path = tmp_path / "out.csv"
        write_csv(df, path)
        assert read_csv(path)["a"].to_list() == [1, 2]
