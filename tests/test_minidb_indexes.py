"""Unit tests for hash and B+tree index wrappers."""

import pytest

from repro.errors import IntegrityError
from repro.minidb.hash_index import BTreeIndex, HashIndex, normalize_key


class TestNormalizeKey:
    def test_int_float_equivalence(self):
        assert normalize_key(1) == normalize_key(1.0)

    def test_bool_as_number(self):
        assert normalize_key(True) == normalize_key(1)

    def test_text_untouched(self):
        assert normalize_key("x") == "x"


class TestHashIndex:
    def test_insert_lookup_remove(self):
        index = HashIndex("i", "c", 0)
        index.insert("a", 1)
        index.insert("a", 2)
        index.insert("b", 3)
        assert index.lookup("a") == {1, 2}
        index.remove("a", 1)
        assert index.lookup("a") == {2}
        index.remove("a", 2)
        assert index.lookup("a") == set()
        assert index.n_keys == 1

    def test_nulls_not_indexed(self):
        index = HashIndex("i", "c", 0)
        index.insert(None, 1)
        assert len(index) == 0
        assert index.lookup(None) == set()

    def test_numeric_equivalence(self):
        index = HashIndex("i", "c", 0)
        index.insert(1, 10)
        assert index.lookup(1.0) == {10}

    def test_unique_violation(self):
        index = HashIndex("i", "c", 0, unique=True)
        index.insert("a", 1)
        with pytest.raises(IntegrityError):
            index.insert("a", 2)

    def test_remove_absent_is_noop(self):
        index = HashIndex("i", "c", 0)
        index.remove("zzz", 1)  # no error


class TestBTreeIndex:
    def test_lookup(self):
        index = BTreeIndex("i", "c", 0)
        index.insert(5.0, 1)
        index.insert(5, 2)
        assert index.lookup(5) == {1, 2}

    def test_range_mixed_types(self):
        """Numbers sort before text: an unbounded-high scan reaches text."""
        index = BTreeIndex("i", "c", 0)
        index.insert(10, 1)
        index.insert(20, 2)
        index.insert("12k", 3)
        assert set(index.range(15, None)) == {2, 3}
        assert set(index.range(None, 15)) == {1}

    def test_nulls_not_indexed(self):
        index = BTreeIndex("i", "c", 0)
        index.insert(None, 1)
        assert len(index) == 0

    def test_unique_violation(self):
        index = BTreeIndex("i", "c", 0, unique=True)
        index.insert(1, 1)
        with pytest.raises(IntegrityError):
            index.insert(1.0, 2)
