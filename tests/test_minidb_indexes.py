"""Unit tests for hash and B+tree index wrappers."""

import pytest

from repro.errors import IntegrityError
from repro.minidb.hash_index import BTreeIndex, HashIndex, normalize_key


class TestNormalizeKey:
    def test_int_float_equivalence(self):
        assert normalize_key(1) == normalize_key(1.0)

    def test_bool_as_number(self):
        assert normalize_key(True) == normalize_key(1)

    def test_text_untouched(self):
        assert normalize_key("x") == "x"


class TestHashIndex:
    def test_insert_lookup_remove(self):
        index = HashIndex("i", "c", 0)
        index.insert("a", 1)
        index.insert("a", 2)
        index.insert("b", 3)
        assert index.lookup("a") == {1, 2}
        index.remove("a", 1)
        assert index.lookup("a") == {2}
        index.remove("a", 2)
        assert index.lookup("a") == set()
        assert index.n_keys == 1

    def test_nulls_not_indexed(self):
        index = HashIndex("i", "c", 0)
        index.insert(None, 1)
        assert len(index) == 0
        assert index.lookup(None) == set()

    def test_numeric_equivalence(self):
        index = HashIndex("i", "c", 0)
        index.insert(1, 10)
        assert index.lookup(1.0) == {10}

    def test_unique_violation(self):
        index = HashIndex("i", "c", 0, unique=True)
        index.insert("a", 1)
        with pytest.raises(IntegrityError):
            index.insert("a", 2)

    def test_remove_absent_is_noop(self):
        index = HashIndex("i", "c", 0)
        index.remove("zzz", 1)  # no error


class TestBTreeIndex:
    def test_lookup(self):
        index = BTreeIndex("i", "c", 0)
        index.insert(5.0, 1)
        index.insert(5, 2)
        assert index.lookup(5) == {1, 2}

    def test_range_mixed_types(self):
        """Numbers sort before text: an unbounded-high scan reaches text."""
        index = BTreeIndex("i", "c", 0)
        index.insert(10, 1)
        index.insert(20, 2)
        index.insert("12k", 3)
        assert set(index.range(15, None)) == {2, 3}
        assert set(index.range(None, 15)) == {1}

    def test_nulls_are_indexed_and_tracked(self):
        """NULL-aware keys: NULL rows live in the tree (sorted first) and
        their rowids are tracked for IS NULL lookups."""
        index = BTreeIndex("i", "c", 0)
        index.insert(None, 1)
        index.insert(5, 2)
        assert len(index) == 2
        assert index.null_rowids == {1}
        assert index.lookup_null() == {1}
        assert list(index.ordered_rowids()) == [1, 2]  # NULL sorts first
        assert list(index.ordered_rowids(reverse=True)) == [2, 1]
        index.remove(None, 1)
        assert index.null_rowids == set()

    def test_null_never_matches_equality_or_range(self):
        index = BTreeIndex("i", "c", 0)
        index.insert(None, 1)
        index.insert(3, 2)
        assert index.lookup(None) == set()
        assert set(index.range(None, None)) == {2}  # unbounded skips NULLs
        assert set(index.range(None, 10)) == {2}

    def test_unique_violation(self):
        index = BTreeIndex("i", "c", 0, unique=True)
        index.insert(1, 1)
        with pytest.raises(IntegrityError):
            index.insert(1.0, 2)

    def test_unique_allows_multiple_nulls(self):
        index = BTreeIndex("i", "c", 0, unique=True)
        index.insert(None, 1)
        index.insert(None, 2)  # SQL: NULLs never collide under UNIQUE
        assert index.null_rowids == {1, 2}


class TestCompositeBTreeIndex:
    def _index(self) -> BTreeIndex:
        index = BTreeIndex("i", ("cat", "val"), (0, 1))
        rows = [
            (1, ["a", 3.0]),
            (2, ["a", 1.0]),
            (3, ["b", 2.0]),
            (4, ["a", None]),
            (5, [None, 9.0]),
            (6, ["a", "12k"]),  # text contamination sorts above numbers
        ]
        for rowid, row in rows:
            index.add_row(row, rowid)
        return index

    def test_prefix_scan_orders_by_suffix(self):
        index = self._index()
        # NULL val first, then numbers ascending, then text
        assert list(index.prefix_scan(("a",))) == [4, 2, 1, 6]

    def test_prefix_scan_reverse(self):
        index = self._index()
        assert list(index.prefix_scan(("a",), reverse=True)) == [6, 1, 2, 4]

    def test_full_key_lookup(self):
        index = self._index()
        assert index.lookup_values(("a", 1)) == {2}
        assert index.lookup_values(("a", 1.0)) == {2}
        assert index.lookup_values(("zzz", 1)) == set()

    def test_null_prefix_matches_nothing(self):
        index = self._index()
        assert list(index.prefix_scan((None,))) == []
        assert index.lookup_values((None, 9.0)) == set()

    def test_null_rowids_track_any_component(self):
        index = self._index()
        assert index.null_rowids == {4, 5}

    def test_ordered_rowids_full_walk(self):
        index = self._index()
        # (NULL, 9) < (a, NULL) < (a, 1) < (a, 3) < (a, '12k') < (b, 2)
        assert list(index.ordered_rowids()) == [5, 4, 2, 1, 6, 3]
        assert list(index.ordered_rowids(reverse=True)) == [3, 6, 1, 2, 4, 5]

    def test_remove_row_keeps_tracking_consistent(self):
        index = self._index()
        index.remove_row(["a", None], 4)
        index.remove_row([None, 9.0], 5)
        assert index.null_rowids == set()
        assert list(index.prefix_scan(("a",))) == [2, 1, 6]

    def test_unique_composite(self):
        index = BTreeIndex("i", ("a", "b"), (0, 1), unique=True)
        index.add_row([1, 2], 1)
        with pytest.raises(IntegrityError):
            index.add_row([1.0, 2.0], 2)
        index.add_row([1, None], 3)  # NULL component: no collision
        index.add_row([1, None], 4)

    def test_single_column_helpers_rejected(self):
        index = BTreeIndex("i", ("a", "b"), (0, 1))
        with pytest.raises(ValueError):
            list(index.range(1, 2))
        with pytest.raises(ValueError):
            index.numeric_min()


class TestCompositeHashIndex:
    def test_tuple_keys(self):
        index = HashIndex("i", ("a", "b"), (0, 1))
        index.add_row(["x", 1], 1)
        index.add_row(["x", 2], 2)
        index.add_row(["x", None], 3)  # NULL component skipped entirely
        assert index.lookup_values(("x", 1)) == {1}
        assert index.lookup_values(("x", 1.0)) == {1}
        assert index.lookup_values(("x", None)) == set()
        assert len(index) == 2
        index.remove_row(["x", 1], 1)
        assert index.lookup_values(("x", 1)) == set()
