"""Tests for the streaming SELECT pipeline: short-circuiting limits,
top-k ordering, index-ordered scans, generalized hash joins, WHERE
pushdown below joins, and the streaming cursor API."""

import pytest

from repro.errors import DatabaseError, ExecutionError
from repro.minidb import Database, StreamingResult


@pytest.fixture
def big_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE t (cat TEXT, val REAL)")
    db.insert_rows(
        "t", [(f"c{i % 10}", float((i * 37) % 1009)) for i in range(2000)]
    )
    db.execute("CREATE INDEX idx_val ON t (val)")
    db.execute("CREATE INDEX idx_cat ON t (cat) USING hash")
    return db


class TestLimitShortCircuit:
    def test_limit_stops_the_scan(self):
        """A poisoned row past the limit is never evaluated."""
        db = Database()
        db.execute("CREATE TABLE t (v REAL)")
        db.insert_rows("t", [(float(i),) for i in range(50)])
        db.insert_rows("t", [("boom",)])  # arithmetic on text raises
        rows = db.execute("SELECT v + 1 FROM t LIMIT 5").scalars()
        assert rows == [1.0, 2.0, 3.0, 4.0, 5.0]
        with pytest.raises(ExecutionError):
            db.execute("SELECT v + 1 FROM t")

    def test_offset_also_streams(self):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.insert_rows("t", [(i,) for i in range(20)])
        db.insert_rows("t", [("boom",)])
        rows = db.execute("SELECT v * 2 FROM t LIMIT 3 OFFSET 4").scalars()
        assert rows == [8, 10, 12]

    def test_limit_null_returns_everything(self, big_db):
        assert len(big_db.execute("SELECT rowid FROM t LIMIT NULL")) == 2000


class TestTopK:
    def test_matches_full_sort(self, big_db):
        top = big_db.execute(
            "SELECT val FROM t WHERE cat = 'c3' ORDER BY val DESC LIMIT 7"
        ).scalars()
        everything = big_db.execute(
            "SELECT val FROM t WHERE cat = 'c3' ORDER BY val DESC"
        ).scalars()
        assert top == everything[:7]

    def test_respects_offset(self, big_db):
        paged = big_db.execute(
            "SELECT val FROM t ORDER BY val DESC LIMIT 5 OFFSET 10"
        ).scalars()
        everything = big_db.execute(
            "SELECT val FROM t ORDER BY val DESC"
        ).scalars()
        assert paged == everything[10:15]

    def test_multi_key_order(self, big_db):
        top = big_db.execute(
            "SELECT cat, val FROM t ORDER BY cat, val DESC LIMIT 9"
        ).rows
        everything = big_db.execute(
            "SELECT cat, val FROM t ORDER BY cat, val DESC"
        ).rows
        assert top == everything[:9]

    def test_explain_shows_topk(self, big_db):
        # cat only has a hash index, which cannot serve an ordered walk
        plan = big_db.explain("SELECT cat FROM t ORDER BY cat DESC LIMIT 7")
        assert "TopK" in plan and "Limit" in plan

    def test_order_without_limit_still_sorts(self, big_db):
        plan = big_db.explain("SELECT cat FROM t ORDER BY cat DESC")
        assert "Sort" in plan


class TestIndexOrderScan:
    def test_explain_and_result(self, big_db):
        plan = big_db.explain("SELECT val FROM t ORDER BY val LIMIT 10")
        assert "IndexOrderScan" in plan and "Sort" not in plan
        values = big_db.execute(
            "SELECT val FROM t ORDER BY val LIMIT 10"
        ).scalars()
        assert values == sorted(
            big_db.execute("SELECT val FROM t").scalars()
        )[:10]

    def test_residual_filter_keeps_order(self, big_db):
        values = big_db.execute(
            "SELECT val FROM t WHERE cat <> 'c3' ORDER BY val LIMIT 15"
        ).scalars()
        expected = sorted(
            big_db.execute("SELECT val FROM t WHERE cat <> 'c3'").scalars()
        )[:15]
        assert values == expected

    def test_nulls_keep_index_order_valid(self):
        """NULL-aware keys: NULLs are in the index, sorted first, so the
        ordered walk stays available on nullable columns."""
        db = Database()
        db.execute("CREATE TABLE t (v REAL)")
        db.insert_rows("t", [(3.0,), (None,), (1.0,)])
        db.execute("CREATE INDEX idx_v ON t (v)")
        plan = db.explain("SELECT v FROM t ORDER BY v LIMIT 2")
        assert "IndexOrderScan" in plan and "Sort" not in plan and "TopK" not in plan
        assert db.execute("SELECT v FROM t ORDER BY v LIMIT 2").scalars() == [None, 1.0]
        plan = db.explain("SELECT v FROM t ORDER BY v DESC")
        assert "IndexOrderScan" in plan
        assert db.execute(
            "SELECT v FROM t ORDER BY v DESC"
        ).scalars() == [3.0, 1.0, None]

    def test_desc_order_served_by_reverse_walk(self, big_db):
        plan = big_db.explain("SELECT val FROM t ORDER BY val DESC LIMIT 5")
        assert "IndexOrderScan" in plan and "DESC" in plan
        assert "TopK" not in plan and "Sort" not in plan
        values = big_db.execute(
            "SELECT val FROM t ORDER BY val DESC LIMIT 5"
        ).scalars()
        expected = sorted(
            big_db.execute("SELECT val FROM t").scalars(), reverse=True
        )[:5]
        assert values == expected


class TestHashJoinGeneralized:
    @pytest.fixture
    def db(self) -> Database:
        db = Database()
        db.execute("CREATE TABLE a (k TEXT, x INT)")
        db.execute("CREATE TABLE b (k TEXT, y INT)")
        db.insert_rows("a", [("p", 1), ("p", 2), ("q", 3), ("r", 4), (None, 5)])
        db.insert_rows("b", [("p", 10), ("p", 20), ("q", 30), ("s", 40), (None, 50)])
        return db

    def test_extra_conjunct_uses_hash_join(self, db):
        plan = db.explain(
            "SELECT a.x, b.y FROM a JOIN b ON a.k = b.k AND b.y > 10"
        )
        assert "HashJoin" in plan and "NestedLoopJoin" not in plan
        rows = db.execute(
            "SELECT a.x, b.y FROM a JOIN b ON a.k = b.k AND b.y > 10 "
            "ORDER BY a.x, b.y"
        ).rows
        assert rows == [(1, 20), (2, 20), (3, 30)]

    def test_left_join_residual_pads(self, db):
        rows = db.execute(
            "SELECT a.x, b.y FROM a LEFT JOIN b ON a.k = b.k AND b.y >= 30 "
            "ORDER BY a.x"
        ).rows
        assert rows == [(1, None), (2, None), (3, 30), (4, None), (5, None)]

    def test_mixed_side_conjunct_is_residual(self, db):
        rows = db.execute(
            "SELECT a.x, b.y FROM a JOIN b ON a.k = b.k AND a.x * 10 = b.y "
            "ORDER BY a.x"
        ).rows
        assert rows == [(1, 10), (2, 20), (3, 30)]

    def test_composite_equi_key(self, db):
        db.execute("CREATE TABLE c (k TEXT, y INT, tag TEXT)")
        db.insert_rows("c", [("p", 1, "hit"), ("p", 2, "hit2"), ("q", 1, "miss")])
        plan = db.explain(
            "SELECT a.x, c.tag FROM a JOIN c ON a.k = c.k AND a.x = c.y"
        )
        assert "HashJoin" in plan and "keys=2" in plan
        rows = db.execute(
            "SELECT a.x, c.tag FROM a JOIN c ON a.k = c.k AND a.x = c.y "
            "ORDER BY a.x"
        ).rows
        assert rows == [(1, "hit"), (2, "hit2")]

    def test_null_keys_never_match(self, db):
        n = db.execute(
            "SELECT COUNT(*) FROM a JOIN b ON a.k = b.k"
        ).scalar()
        assert n == 5  # (p,p)x4 + (q,q); NULL keys excluded

    def test_non_equi_still_nested_loop(self, db):
        plan = db.explain("SELECT COUNT(*) FROM a JOIN b ON a.x < b.y")
        assert "NestedLoopJoin" in plan


class TestWherePushdown:
    @pytest.fixture
    def db(self, dirty_db) -> Database:
        dirty_db.execute("CREATE TABLE errors (ref INT, code TEXT)")
        dirty_db.executemany(
            "INSERT INTO errors VALUES (?, ?)",
            [(3, "type_mismatch"), (4, "outlier"), (6, "missing_value")],
        )
        return dirty_db

    def test_base_predicate_reaches_the_index(self, db):
        plan = db.explain(
            "SELECT s.country, e.code FROM salary s JOIN errors e "
            "ON s.rowid = e.ref WHERE s.country = 'Bhutan'"
        )
        assert "IndexEqScan" in plan and "idx_salary_country" in plan
        rows = db.execute(
            "SELECT s.country, e.code FROM salary s JOIN errors e "
            "ON s.rowid = e.ref WHERE s.country = 'Bhutan' ORDER BY e.code"
        ).rows
        assert rows == [("Bhutan", "outlier"), ("Bhutan", "type_mismatch")]

    def test_join_side_predicate_stays_above(self, db):
        plan = db.explain(
            "SELECT s.country FROM salary s JOIN errors e ON s.rowid = e.ref "
            "WHERE e.code = 'outlier'"
        )
        assert "SeqScan(salary)" in plan and "Filter" in plan
        rows = db.execute(
            "SELECT s.country FROM salary s JOIN errors e ON s.rowid = e.ref "
            "WHERE e.code = 'outlier'"
        ).scalars()
        assert rows == ["Bhutan"]

    def test_pushdown_below_left_join_is_safe(self, db):
        rows = db.execute(
            "SELECT s.rowid, e.code FROM salary s LEFT JOIN errors e "
            "ON s.rowid = e.ref WHERE s.country = 'Lesotho' ORDER BY s.rowid"
        ).rows
        assert rows == [(5, None), (6, "missing_value"), (7, None), (8, None)]


class TestDistinctUnhashable:
    def test_duplicate_unhashable_rows_collapse(self):
        """Unhashable markers dedupe via the linear-scan fallback."""
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.insert_rows("t", [([1, 2],), ([1, 2],), (5,), (5,), ([3],)])
        rows = db.execute("SELECT DISTINCT v FROM t").scalars()
        assert rows == [[1, 2], 5, [3]]


class TestStreamingCursor:
    def test_stream_returns_cursor(self, big_db):
        cursor = big_db.stream("SELECT rowid FROM t ORDER BY val LIMIT 5")
        assert isinstance(cursor, StreamingResult)
        assert cursor.columns == ["rowid"]
        first = cursor.fetchone()
        rest = cursor.fetchmany(10)
        assert first is not None and len(rest) == 4

    def test_stream_is_lazy(self):
        db = Database()
        db.execute("CREATE TABLE t (v REAL)")
        db.insert_rows("t", [(1.0,), (2.0,), ("boom",)])
        cursor = db.stream("SELECT v * 2 FROM t")
        assert cursor.fetchone() == (2.0,)
        assert cursor.fetchone() == (4.0,)
        with pytest.raises(ExecutionError):
            cursor.fetchone()

    def test_materialize_drains(self, big_db):
        result = big_db.stream("SELECT cat FROM t LIMIT 3").materialize()
        assert len(result) == 3 and result.columns == ["cat"]

    def test_stream_rejects_dml(self, big_db):
        with pytest.raises(DatabaseError):
            big_db.stream("DELETE FROM t")

    def test_capped_distinct_short_circuits(self):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.insert_rows("t", [(i,) for i in range(100)])
        db.insert_rows("t", [("boom",)])
        cursor = db.stream("SELECT DISTINCT v + 0 FROM t LIMIT 5")
        assert len(cursor.fetchmany(5)) == 5  # never reaches the bad row


class TestSnapshotReleaseOnClose:
    """A cursor's snapshot must release even when no row was ever read.

    Regression: ``_with_release`` used to be a generator, and closing a
    never-advanced generator skips its ``finally`` — so a stream opened
    and immediately closed leaked its snapshot and pinned the GC
    horizon forever.
    """

    def test_unstarted_stream_releases_snapshot_on_close(self):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.execute("INSERT INTO t VALUES (1)")
        cursor = db.stream("SELECT v FROM t")
        assert db.txn.outstanding_snapshots == 1
        cursor.close()
        assert db.txn.outstanding_snapshots == 0

    def test_unstarted_stream_close_unpins_gc(self):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.execute("INSERT INTO t VALUES (1)")
        cursor = db.stream("SELECT v FROM t")
        db.execute("DELETE FROM t WHERE v = 1")
        table = db.table("t")
        assert 1 in table.versions  # pinned while the cursor is open
        cursor.close()
        assert 1 not in table.versions  # release triggered the GC pass

    def test_partially_read_stream_still_releases(self):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.insert_rows("t", [(i,) for i in range(10)])
        cursor = db.stream("SELECT v FROM t")
        assert cursor.fetchone() is not None
        cursor.close()
        assert db.txn.outstanding_snapshots == 0

    def test_context_manager_without_reads_releases(self):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.execute("INSERT INTO t VALUES (1)")
        with db.stream("SELECT v FROM t"):
            pass
        assert db.txn.outstanding_snapshots == 0
