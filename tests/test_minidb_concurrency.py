"""Randomized multi-threaded MVCC stress: readers race writers.

N writer threads run money-transfer transactions (two UPDATEs that must
commit atomically) plus INSERT/UPDATE/DELETE churn on a scratch table,
retrying on :class:`~repro.errors.SerializationError`.  M reader threads
run point, range and aggregate SELECTs inside read transactions and
assert every snapshot is internally consistent: the transfer invariant
(SUM of balances never moves) and statement-level repeatability (the
same query twice in one transaction returns the same answer).

At the end, the committed transactions are replayed serially — in the
manager's commit order — into a fresh database, and the final states
must match: snapshot isolation with first-updater-wins conflicts makes
the concurrent history equivalent to that serial one.

Scale knobs (CI runs a larger configuration):
``REPRO_STRESS_WRITERS``, ``REPRO_STRESS_READERS``,
``REPRO_STRESS_TXNS``, ``REPRO_STRESS_QUERIES``, ``REPRO_STRESS_SEED``.
"""

import os
import random
import threading
import time

from repro.errors import SerializationError
from repro.minidb import Database

N_ACCOUNTS = 20
START_BALANCE = 1000
TOTAL = N_ACCOUNTS * START_BALANCE

N_WRITERS = int(os.environ.get("REPRO_STRESS_WRITERS", "3"))
N_READERS = int(os.environ.get("REPRO_STRESS_READERS", "3"))
N_TXNS = int(os.environ.get("REPRO_STRESS_TXNS", "40"))
N_QUERIES = int(os.environ.get("REPRO_STRESS_QUERIES", "30"))
SEED = int(os.environ.get("REPRO_STRESS_SEED", "20260730"))

MAX_RETRIES = 500


def _build_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE accounts (id INT, balance INT)")
    db.executemany(
        "INSERT INTO accounts VALUES (?, ?)",
        [(i, START_BALANCE) for i in range(N_ACCOUNTS)],
    )
    db.execute("CREATE INDEX idx_acct ON accounts(id)")
    db.execute("CREATE TABLE scratch (wid INT, seq INT, payload TEXT)")
    db.execute("CREATE INDEX idx_scratch ON scratch(wid, seq)")
    return db


class Writer(threading.Thread):
    """Runs ``N_TXNS`` committed transactions; records what each did."""

    def __init__(self, db, wid, barrier):
        super().__init__(name=f"writer-{wid}")
        self.db = db
        self.wid = wid
        self.barrier = barrier
        self.rng = random.Random(SEED * 1009 + wid)
        self.committed: dict[int, list] = {}  # txid -> [(sql, params), ...]
        self.errors: list = []
        self.conflicts = 0

    def _one_txn(self, conn, seq: int) -> None:
        ops = []
        kind = self.rng.random()
        if kind < 0.6:  # transfer between two accounts
            a = self.rng.randrange(N_ACCOUNTS)
            b = self.rng.randrange(N_ACCOUNTS)
            amount = self.rng.randrange(1, 50)
            ops.append((
                "UPDATE accounts SET balance = balance - ? WHERE id = ?",
                (amount, a),
            ))
            ops.append((
                "UPDATE accounts SET balance = balance + ? WHERE id = ?",
                (amount, b),
            ))
        elif kind < 0.85:  # scratch insert (+ an update of it)
            ops.append((
                "INSERT INTO scratch VALUES (?, ?, ?)",
                (self.wid, seq, f"w{self.wid}s{seq}"),
            ))
            ops.append((
                "UPDATE scratch SET payload = ? WHERE wid = ? AND seq = ?",
                (f"w{self.wid}s{seq}v2", self.wid, seq),
            ))
        else:  # delete this writer's oldest scratch rows
            ops.append((
                "DELETE FROM scratch WHERE wid = ? AND seq < ?",
                (self.wid, seq - 5),
            ))
        for attempt in range(MAX_RETRIES):
            conn.execute("BEGIN")
            txid = conn._session.txn.txid
            try:
                for sql, params in ops:
                    conn.execute(sql, params)
                conn.commit()
            except SerializationError:
                self.conflicts += 1
                conn.rollback()
                # randomized backoff: optimistic concurrency livelocks
                # without it — a writer mid-transaction can be starved of
                # the (unfair) write lock by competitors spin-retrying,
                # and everyone then conflicts on its uncommitted versions
                time.sleep(self.rng.random() * 0.0005 * min(attempt + 1, 16))
                continue
            self.committed[txid] = ops
            return
        raise AssertionError(f"writer {self.wid}: txn never committed")

    def run(self) -> None:
        conn = self.db.connect()
        try:
            self.barrier.wait()
            for seq in range(N_TXNS):
                self._one_txn(conn, seq)
        except Exception as exc:  # surfaced by the main thread
            self.errors.append(exc)
        finally:
            conn.close()


class Reader(threading.Thread):
    """Asserts snapshot consistency from inside read transactions."""

    def __init__(self, db, rid, barrier):
        super().__init__(name=f"reader-{rid}")
        self.db = db
        self.rid = rid
        self.barrier = barrier
        self.rng = random.Random(SEED * 2003 + rid)
        self.errors: list = []

    def run(self) -> None:
        conn = self.db.connect()
        try:
            self.barrier.wait()
            for _ in range(N_QUERIES):
                conn.execute("BEGIN")
                total = conn.execute(
                    "SELECT SUM(balance) FROM accounts").scalar()
                assert total == TOTAL, f"torn read: SUM = {total} != {TOTAL}"
                count = conn.execute(
                    "SELECT COUNT(*) FROM accounts").scalar()
                assert count == N_ACCOUNTS
                # point probe through the index
                target = self.rng.randrange(N_ACCOUNTS)
                point = conn.execute(
                    "SELECT balance FROM accounts WHERE id = ?", (target,)
                ).scalars()
                assert len(point) == 1
                # bounded range + aggregate over the scratch churn
                low = self.rng.randrange(N_ACCOUNTS)
                rows = conn.execute(
                    "SELECT id, balance FROM accounts WHERE id >= ? "
                    "ORDER BY id", (low,)
                ).rows
                assert [r[0] for r in rows] == list(range(low, N_ACCOUNTS))
                n_scratch = conn.execute(
                    "SELECT COUNT(*) FROM scratch").scalar()
                # repeatability: the same statements answer the same inside
                # one transaction, no matter what committed meanwhile
                assert conn.execute(
                    "SELECT SUM(balance) FROM accounts").scalar() == total
                assert conn.execute(
                    "SELECT COUNT(*) FROM scratch").scalar() == n_scratch
                assert conn.execute(
                    "SELECT balance FROM accounts WHERE id = ?", (target,)
                ).scalars() == point
                conn.commit()
        except Exception as exc:
            self.errors.append(exc)
        finally:
            conn.close()


def _serial_replay(writers) -> Database:
    """Re-run every committed transaction serially, in commit order."""
    by_txid: dict[int, list] = {}
    for writer in writers:
        by_txid.update(writer.committed)
    replay = _build_db()
    for txid in writers[0].db.txn.committed:
        ops = by_txid.get(txid)
        if ops is None:
            continue  # a read-only or implicit transaction
        for sql, params in ops:
            replay.execute(sql, params)
    return replay


def _table_state(db: Database, sql: str):
    return sorted(db.execute(sql).rows)


def test_threaded_stress_snapshot_consistency_and_serial_equivalence():
    db = _build_db()
    db.start_background_gc(interval=0.01)
    barrier = threading.Barrier(N_WRITERS + N_READERS)
    writers = [Writer(db, i, barrier) for i in range(N_WRITERS)]
    readers = [Reader(db, i, barrier) for i in range(N_READERS)]
    threads = writers + readers
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), f"{thread.name} hung"
    finally:
        db.stop_background_gc()
    failures = [exc for t in threads for exc in t.errors]
    assert not failures, failures

    # the concurrent history must equal its serial commit-order replay
    replay = _serial_replay(writers)
    assert _table_state(db, "SELECT id, balance FROM accounts") == \
        _table_state(replay, "SELECT id, balance FROM accounts")
    assert _table_state(db, "SELECT wid, seq, payload FROM scratch") == \
        _table_state(replay, "SELECT wid, seq, payload FROM scratch")
    assert db.execute("SELECT SUM(balance) FROM accounts").scalar() == TOTAL

    # everything quiesces: GC collapses every chain, fast path resumes
    db.vacuum()
    assert not db.mvcc_engaged()
    for table in db.tables.values():
        assert table.versions == {}
    assert db.execute("SELECT COUNT(*) FROM accounts").scalar() == N_ACCOUNTS


def test_stress_conflicts_actually_happen():
    """Sanity: the harness genuinely exercises the conflict path (two
    racing single-row writers must serialize one behind the other)."""
    db = _build_db()
    barrier = threading.Barrier(2)
    conflicts = []

    def hammer(wid):
        conn = db.connect()
        rng = random.Random(wid)
        barrier.wait()
        try:
            for _ in range(30):
                conn.execute("BEGIN")
                try:
                    conn.execute(
                        "UPDATE accounts SET balance = balance + 1 WHERE id = 0"
                    )
                    if rng.random() < 0.5:
                        conn.execute(
                            "UPDATE accounts SET balance = balance - 1 "
                            "WHERE id = 0"
                        )
                    conn.commit()
                except SerializationError:
                    conflicts.append(wid)
                    conn.rollback()
        finally:
            conn.close()

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    # balance stayed an integer state reachable by some serial history
    assert db.execute(
        "SELECT balance FROM accounts WHERE id = 0").scalar() >= START_BALANCE
    db.vacuum()
    assert db.table("accounts").versions == {}
