"""Tests for INSERT/UPDATE/DELETE, transactions, WAL, and the planner."""

import pytest

from repro.errors import (
    CatalogError,
    ExecutionError,
    SQLSyntaxError,
    TransactionError,
)
from repro.minidb import Database, WriteAheadLog
from repro.minidb.planner import INDEX_EQ, INDEX_IN, INDEX_RANGE, SEQ, plan_scan
from repro.minidb.parser import parse


class TestInsert:
    def test_rowcount_and_lastrowid(self, dirty_db):
        result = dirty_db.execute(
            "INSERT INTO salary VALUES ('X', 'BS', 1.0, 20), ('Y', 'MS', 2.0, 21)"
        )
        assert result.rowcount == 2
        assert result.lastrowid == 11

    def test_partial_columns_default_null(self, dirty_db):
        dirty_db.execute("INSERT INTO salary (country) VALUES ('Z')")
        row = dirty_db.execute(
            "SELECT degree, income, age FROM salary WHERE country = 'Z'").first()
        assert row == (None, None, None)

    def test_arity_mismatch(self, dirty_db):
        with pytest.raises(ExecutionError, match="values for"):
            dirty_db.execute("INSERT INTO salary (country, age) VALUES (1)")

    def test_insert_updates_indexes(self, dirty_db):
        dirty_db.execute(
            "INSERT INTO salary VALUES ('Bhutan', 'BS', 1.0, 20)")
        n = dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE country = 'Bhutan'").scalar()
        assert n == 5


class TestUpdate:
    def test_update_with_where(self, dirty_db):
        result = dirty_db.execute(
            "UPDATE salary SET income = 12000 WHERE typeof(income) = 'text'")
        assert result.rowcount == 1
        assert dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE typeof(income) = 'text'"
        ).scalar() == 0

    def test_update_expression_references_row(self, dirty_db):
        dirty_db.execute("UPDATE salary SET age = age + 1 WHERE country = 'Nauru'")
        assert dirty_db.execute(
            "SELECT age FROM salary WHERE country = 'Nauru'").scalar() == 28

    def test_update_keeps_indexes_consistent(self, dirty_db):
        dirty_db.execute(
            "UPDATE salary SET country = 'Lesotho' WHERE country = 'Nauru'")
        assert dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE country = 'Lesotho'").scalar() == 5
        assert dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE country = 'Nauru'").scalar() == 0

    def test_update_all_rows(self, dirty_db):
        result = dirty_db.execute("UPDATE salary SET age = 0")
        assert result.rowcount == 9


class TestDelete:
    def test_delete_with_indexed_predicate(self, dirty_db):
        result = dirty_db.execute("DELETE FROM salary WHERE country = 'Bhutan'")
        assert result.rowcount == 4
        assert dirty_db.execute("SELECT COUNT(*) FROM salary").scalar() == 5

    def test_delete_all(self, dirty_db):
        dirty_db.execute("DELETE FROM salary")
        assert dirty_db.execute("SELECT COUNT(*) FROM salary").scalar() == 0

    def test_delete_null_predicate(self, dirty_db):
        result = dirty_db.execute("DELETE FROM salary WHERE income IS NULL")
        assert result.rowcount == 1


class TestTransactions:
    def test_rollback_restores_deletes(self, dirty_db):
        dirty_db.execute("BEGIN")
        dirty_db.execute("DELETE FROM salary WHERE country = 'Bhutan'")
        dirty_db.execute("ROLLBACK")
        assert dirty_db.execute("SELECT COUNT(*) FROM salary").scalar() == 9
        # rowids preserved
        assert dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE rowid = 1").scalar() == 1

    def test_rollback_restores_updates_and_indexes(self, dirty_db):
        dirty_db.execute("BEGIN")
        dirty_db.execute("UPDATE salary SET country = 'X' WHERE country = 'Bhutan'")
        dirty_db.execute("ROLLBACK")
        assert dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE country = 'Bhutan'").scalar() == 4

    def test_rollback_removes_inserts(self, dirty_db):
        dirty_db.execute("BEGIN")
        dirty_db.execute("INSERT INTO salary VALUES ('X', 'BS', 1.0, 1)")
        dirty_db.execute("ROLLBACK")
        assert dirty_db.execute("SELECT COUNT(*) FROM salary").scalar() == 9

    def test_commit_keeps_changes(self, dirty_db):
        dirty_db.execute("BEGIN")
        dirty_db.execute("DELETE FROM salary WHERE country = 'Nauru'")
        dirty_db.execute("COMMIT")
        assert dirty_db.execute("SELECT COUNT(*) FROM salary").scalar() == 8

    def test_nested_begin_rejected(self, dirty_db):
        dirty_db.execute("BEGIN")
        with pytest.raises(TransactionError):
            dirty_db.execute("BEGIN")

    def test_stray_commit_rejected(self, dirty_db):
        with pytest.raises(TransactionError):
            dirty_db.execute("COMMIT")

    def test_stray_rollback_rejected(self, dirty_db):
        with pytest.raises(TransactionError):
            dirty_db.execute("ROLLBACK")


class TestWal:
    def test_committed_changes_logged(self):
        db = Database(wal=WriteAheadLog())
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("UPDATE t SET a = 2")
        db.execute("DELETE FROM t")
        ops = [r["op"] for r in db.wal.records]
        assert ops == ["ddl", "insert", "update", "delete"]

    def test_transaction_buffered_until_commit(self):
        db = Database(wal=WriteAheadLog())
        db.execute("CREATE TABLE t (a INT)")
        before = len(db.wal)
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1)")
        assert len(db.wal) == before
        db.execute("COMMIT")
        assert len(db.wal) == before + 1

    def test_rolled_back_changes_never_logged(self):
        db = Database(wal=WriteAheadLog())
        db.execute("CREATE TABLE t (a INT)")
        before = len(db.wal)
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("ROLLBACK")
        assert len(db.wal) == before

    def test_replay_reconstructs_database(self):
        wal = WriteAheadLog()
        db = Database(wal=wal)
        db.execute("CREATE TABLE t (a INT, b TEXT)")
        db.executemany("INSERT INTO t VALUES (?, ?)", [(1, "x"), (2, "y")])
        db.execute("UPDATE t SET b = 'z' WHERE a = 1")
        db.execute("DELETE FROM t WHERE a = 2")

        fresh = Database()
        wal.replay_into(fresh)
        assert fresh.execute("SELECT a, b FROM t").rows == [(1, "z")]

    def test_replay_honors_drop_table(self):
        """DROP TABLE is WAL-logged, so replay never resurrects it."""
        wal = WriteAheadLog()
        db = Database(wal=wal)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("DROP TABLE t")

        fresh = Database()
        wal.replay_into(fresh)
        assert fresh.table_names() == []

    def test_replay_honors_drop_index(self):
        wal = WriteAheadLog()
        db = Database(wal=wal)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE INDEX idx_a ON t (a)")
        db.execute("DROP INDEX idx_a")

        fresh = Database()
        wal.replay_into(fresh)
        assert fresh.index_names() == []

    def test_checkpoint_truncates_and_counts(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "db.wal")
        db = Database(wal=wal)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        flushed = db.checkpoint()
        assert flushed == 2
        assert len(wal) == 0
        assert wal.checkpoint_count == 1
        reloaded = WriteAheadLog.load(tmp_path / "db.wal")
        assert len(reloaded) == 2

    def test_size_bytes_positive(self):
        wal = WriteAheadLog()
        db = Database(wal=wal)
        db.execute("CREATE TABLE t (a INT)")
        assert wal.size_bytes() > 0


class TestPlanner:
    def test_prefers_hash_for_equality(self, dirty_db):
        table = dirty_db.table("salary")
        stmt = parse("SELECT * FROM salary WHERE country = 'Bhutan'")
        plan = plan_scan(table, stmt.where)
        assert plan.kind == INDEX_EQ
        assert plan.index_name == "idx_salary_country"
        assert plan.residual is None

    def test_range_on_btree(self, dirty_db):
        table = dirty_db.table("salary")
        stmt = parse("SELECT * FROM salary WHERE income >= 100 AND income < 5000")
        plan = plan_scan(table, stmt.where)
        assert plan.kind == INDEX_RANGE
        assert plan.include_low and not plan.include_high
        assert plan.residual is None

    def test_in_list_uses_index(self, dirty_db):
        table = dirty_db.table("salary")
        stmt = parse("SELECT * FROM salary WHERE country IN ('Bhutan', 'Nauru')")
        plan = plan_scan(table, stmt.where)
        assert plan.kind == INDEX_IN

    def test_residual_kept(self, dirty_db):
        table = dirty_db.table("salary")
        stmt = parse("SELECT * FROM salary WHERE country = 'Bhutan' AND age > 30")
        plan = plan_scan(table, stmt.where)
        assert plan.kind == INDEX_EQ
        assert plan.residual is not None

    def test_unindexed_column_seq_scans(self, dirty_db):
        table = dirty_db.table("salary")
        stmt = parse("SELECT * FROM salary WHERE age = 34")
        plan = plan_scan(table, stmt.where)
        assert plan.kind == SEQ

    def test_flipped_comparison(self, dirty_db):
        table = dirty_db.table("salary")
        stmt = parse("SELECT * FROM salary WHERE 'Bhutan' = country")
        plan = plan_scan(table, stmt.where)
        assert plan.kind == INDEX_EQ

    def test_or_prevents_index_use(self, dirty_db):
        table = dirty_db.table("salary")
        stmt = parse("SELECT * FROM salary WHERE country = 'B' OR age = 1")
        plan = plan_scan(table, stmt.where)
        assert plan.kind == SEQ


class TestDDLAndCatalog:
    def test_create_table_twice_rejected(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a INT)")  # no error

    def test_drop_table(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE INDEX i ON t (a)")
        db.execute("DROP TABLE t")
        assert not db.has_table("t")
        assert db.index_names() == []
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE t")
        db.execute("DROP TABLE IF EXISTS t")

    def test_drop_index(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE INDEX i ON t (a)")
        db.execute("DROP INDEX i")
        assert db.index_names() == []
        db.execute("DROP INDEX IF EXISTS i")

    def test_multi_column_index_created(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.execute("INSERT INTO t VALUES (1, 2), (1, 3)")
        db.execute("CREATE INDEX i ON t (a, b)")
        assert db.index_catalog["i"].columns == ("a", "b")
        assert db.execute(
            "SELECT b FROM t WHERE a = 1 AND b = 3"
        ).scalars() == [3]

    def test_index_on_missing_column_names_it(self):
        """A typo'd column fails in the catalog, not inside the B+tree."""
        db = Database()
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.execute("INSERT INTO t VALUES (1, 2)")
        with pytest.raises(CatalogError, match=r"no column 'zz'.*has: a, b"):
            db.execute("CREATE INDEX i ON t (a, zz)")
        assert db.index_names() == []  # nothing half-created

    def test_index_duplicate_column_rejected(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(CatalogError, match="twice"):
            db.execute("CREATE INDEX i ON t (a, a)")

    def test_alter_add_column(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("ALTER TABLE t ADD COLUMN b TEXT")
        assert db.execute("SELECT b FROM t").scalar() is None

    def test_unknown_table_message(self):
        db = Database()
        with pytest.raises(CatalogError, match="no table"):
            db.execute("SELECT * FROM nope")

    def test_executemany_rowcount(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        total = db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(5)])
        assert total == 5

    def test_statement_cache_reused(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (?)", (1,))
        cached = db._stmt_cache["INSERT INTO t VALUES (?)"]
        db.execute("INSERT INTO t VALUES (?)", (2,))
        assert db._stmt_cache["INSERT INTO t VALUES (?)"] is cached

    def test_result_to_frame(self, dirty_db):
        frame = dirty_db.execute(
            "SELECT country, age FROM salary ORDER BY rowid").to_frame()
        assert frame.n_rows == 9
        assert frame["age"].to_list()[0] == 34
