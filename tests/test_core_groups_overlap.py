"""Unit tests for group generation and the overlap graph."""

import pytest

from repro.backends import make_backend
from repro.config import BuckarooConfig
from repro.core.groups import GroupManager
from repro.core.overlap import OverlapGraph
from repro.core.types import GroupKey
from repro.errors import BuckarooError
from repro.frame import DataFrame

from tests.test_backends import COLUMNS, ROWS


@pytest.fixture(params=["sql", "frame"])
def manager(request):
    backend = make_backend(DataFrame.from_rows(ROWS, COLUMNS), request.param)
    manager = GroupManager(backend, BuckarooConfig(min_group_size=2))
    manager.generate(cat_cols=["country", "degree"], num_cols=["income", "age"])
    return manager


class TestGeneration:
    def test_pairs_are_cat_times_num(self, manager):
        assert set(manager.pairs) == {
            ("country", "income"), ("country", "age"),
            ("degree", "income"), ("degree", "age"),
        }

    def test_group_count(self, manager):
        # 3 countries x 2 nums + 3 degrees x 2 nums
        assert len(manager.groups) == 12

    def test_group_membership(self, manager):
        key = GroupKey("country", "Bhutan", "income")
        assert sorted(manager.group(key).row_ids) == [1, 2, 3, 4]

    def test_row_ids_shared_across_pair_siblings(self, manager):
        income = manager.group(GroupKey("country", "Nauru", "income"))
        age = manager.group(GroupKey("country", "Nauru", "age"))
        assert income.row_ids == age.row_ids

    def test_unknown_group_raises(self, manager):
        with pytest.raises(BuckarooError, match="unknown group"):
            manager.group(GroupKey("country", "Atlantis", "income"))

    def test_auto_column_choice(self):
        backend = make_backend(DataFrame.from_rows(ROWS, COLUMNS), "frame")
        manager = GroupManager(backend, BuckarooConfig())
        keys = manager.generate()
        assert keys  # country/degree x income/age discovered automatically

    def test_keys_for_pair(self, manager):
        keys = manager.keys_for_pair("country", "income")
        assert len(keys) == 3
        assert all(k.pair == ("country", "income") for k in keys)


class TestGroupsOfRows:
    def test_row_in_one_group_per_pair(self, manager):
        keys = manager.groups_of_rows([1])
        assert len(keys) == 4  # one per pair
        assert GroupKey("country", "Bhutan", "income") in keys
        assert GroupKey("degree", "BS", "income") in keys

    def test_multiple_rows_union(self, manager):
        keys = manager.groups_of_rows([1, 5])
        assert GroupKey("country", "Lesotho", "income") in keys
        assert GroupKey("country", "Bhutan", "income") in keys

    def test_empty_input(self, manager):
        assert manager.groups_of_rows([]) == set()


class TestRefresh:
    def test_refresh_after_delete_drops_empty_group(self, manager):
        key = GroupKey("country", "Nauru", "income")
        manager.backend.delete_rows([9])
        alive = manager.refresh([key])
        assert alive == []
        assert key not in manager.groups

    def test_refresh_updates_membership(self, manager):
        key = GroupKey("country", "Bhutan", "income")
        manager.backend.delete_rows([1])
        manager.refresh([key])
        assert sorted(manager.group(key).row_ids) == [2, 3, 4]

    def test_discover_new_categories(self, manager):
        manager.backend.set_cells("country", [9], "Atlantis")
        new_keys = manager.discover_new_categories("country")
        assert GroupKey("country", "Atlantis", "income") in new_keys
        assert manager.group(GroupKey("country", "Atlantis", "income")).row_ids == (9,)

    def test_discover_ignores_non_grouping_columns(self, manager):
        assert manager.discover_new_categories("income") == []


class TestOverlapGraph:
    @pytest.fixture
    def graph(self, manager):
        return OverlapGraph(manager)

    def test_affected_groups(self, graph):
        keys = graph.affected_groups([3])  # Bhutan / BS row
        assert GroupKey("country", "Bhutan", "income") in keys
        assert GroupKey("degree", "BS", "income") in keys
        assert GroupKey("country", "Lesotho", "income") not in keys

    def test_neighbors_cross_attribute_only(self, graph):
        key = GroupKey("country", "Nauru", "income")
        neighbors = graph.neighbors(key)
        # Nauru's single row has degree BS -> overlaps the BS groups
        assert GroupKey("degree", "BS", "income") in neighbors
        assert GroupKey("country", "Bhutan", "income") not in neighbors

    def test_sibling_groups_never_overlap(self, graph, manager):
        """Groups over the same attribute are disjoint (§2.1 isolation)."""
        for first, second in graph.edges():
            if first.pair == second.pair:
                assert first.category == second.category

    def test_edges_symmetric_membership(self, graph, manager):
        edges = list(graph.edges())
        assert edges
        for first, second in edges:
            rows_first = set(manager.group(first).row_ids)
            rows_second = set(manager.group(second).row_ids)
            assert rows_first & rows_second

    def test_connected_component_bounded(self, graph):
        key = GroupKey("country", "Bhutan", "income")
        component = graph.connected_component(key, max_groups=3)
        assert key in component
        assert len(component) <= 4  # may slightly exceed via last expansion

    def test_connected_component_full(self, graph):
        key = GroupKey("country", "Bhutan", "income")
        component = graph.connected_component(key)
        # every group is reachable in this dense toy dataset
        assert len(component) == 12

    def test_to_networkx(self, graph, manager):
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 12
        assert nx_graph.number_of_edges() == len(list(graph.edges()))

    def test_degree(self, graph):
        assert graph.degree(GroupKey("country", "Nauru", "income")) > 0
