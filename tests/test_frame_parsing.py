"""Unit tests for strict and lenient numeric parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frame import parsing


class TestStrict:
    @pytest.mark.parametrize("text,expected", [
        ("42", 42.0),
        ("-3.5", -3.5),
        ("+7", 7.0),
        (".5", 0.5),
        ("1e3", 1000.0),
        ("2.5E-2", 0.025),
        ("  10  ", 10.0),
    ])
    def test_parses_literals(self, text, expected):
        assert parsing.parse_number_strict(text) == expected

    @pytest.mark.parametrize("text", ["12k", "$5", "1,200", "", "abc", "1.2.3", "--4"])
    def test_rejects_non_literals(self, text):
        assert parsing.parse_number_strict(text) is None

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_roundtrips_floats(self, value):
        assert parsing.parse_number_strict(repr(float(value))) == pytest.approx(float(value))


class TestLenient:
    @pytest.mark.parametrize("text,expected", [
        ("12k", 12_000.0),
        ("12K", 12_000.0),
        ("1.5m", 1_500_000.0),
        ("2B", 2_000_000_000.0),
        ("$1,200.50", 1200.50),
        ("€999", 999.0),
        ("15%", 0.15),
        ("(300)", -300.0),
        ("1_000", 1000.0),
        ("42", 42.0),
    ])
    def test_parses_messy_spellings(self, text, expected):
        assert parsing.parse_number_lenient(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["twelve", "N/A", "", "k", "$", "12kk"])
    def test_rejects_unrecoverable(self, text):
        assert parsing.parse_number_lenient(text) is None


class TestMissingTokens:
    @pytest.mark.parametrize("text", ["", "NA", "n/a", "NULL", "None", "nan", "?", " - "])
    def test_recognizes_missing(self, text):
        assert parsing.is_missing_token(text)

    @pytest.mark.parametrize("text", ["0", "no", "x"])
    def test_rejects_values(self, text):
        assert not parsing.is_missing_token(text)


class TestCoerce:
    def test_numbers_pass_through(self):
        assert parsing.coerce_to_number(5) == 5.0
        assert parsing.coerce_to_number(5.5) == 5.5

    def test_none_and_nan(self):
        assert parsing.coerce_to_number(None) is None
        assert parsing.coerce_to_number(float("nan")) is None

    def test_bool_is_not_a_number(self):
        assert parsing.coerce_to_number(True) is None

    def test_strings_use_lenient(self):
        assert parsing.coerce_to_number("12k") == 12000.0

    def test_other_objects(self):
        assert parsing.coerce_to_number(object()) is None
