"""Tests for pan/zoom navigation: viewport, tiles, quadtree, engine, drill-down."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import SQLBackend
from repro.errors import NavigationError
from repro.frame import DataFrame
from repro.zoom import (
    AGGREGATE,
    DrillDownApp,
    LayerSpec,
    LayerStack,
    POINTS,
    QuadTree,
    TileCache,
    TileGrid,
    Viewport,
    ZoomEngine,
    default_layers,
)

from tests.test_backends import COLUMNS, ROWS


class TestViewport:
    def test_validation(self):
        with pytest.raises(NavigationError):
            Viewport(5, 5)
        with pytest.raises(NavigationError):
            Viewport(0, 1, y0=3, y1=2)
        with pytest.raises(NavigationError):
            Viewport(0, 1, y0=1)  # half-open y

    def test_contains(self):
        view = Viewport(0, 10, 0, 10)
        assert view.contains(0, 0)
        assert not view.contains(10, 5)
        assert not view.contains(5, -1)

    def test_pan(self):
        view = Viewport(0, 10).pan(5)
        assert (view.x0, view.x1) == (5, 15)

    def test_zoom_in_halves_width(self):
        view = Viewport(0, 10).zoom(0.5)
        assert view.width == pytest.approx(5)
        assert view.x0 == pytest.approx(2.5)

    def test_zoom_around_center(self):
        view = Viewport(0, 10).zoom(0.5, center_x=2)
        assert (view.x0, view.x1) == (pytest.approx(-0.5), pytest.approx(4.5))

    def test_clamp(self):
        bounds = Viewport(0, 10)
        clamped = Viewport(-5, 5).clamp_to(bounds)
        assert (clamped.x0, clamped.x1) == (0, 10)

    def test_intersects(self):
        assert Viewport(0, 5).intersects(Viewport(4, 8))
        assert not Viewport(0, 5).intersects(Viewport(5, 8))


class TestTileGrid:
    def test_tile_width_halves_per_level(self):
        grid = TileGrid(0, 100, base_tiles=4)
        assert grid.tile_width(0) == 25
        assert grid.tile_width(1) == 12.5

    def test_tile_of_clamped(self):
        grid = TileGrid(0, 100, base_tiles=4)
        assert grid.tile_of(-5, 0) == 0
        assert grid.tile_of(150, 0) == 3

    def test_tiles_for_range(self):
        grid = TileGrid(0, 100, base_tiles=4)
        assert grid.tiles_for_range(10, 60, 0) == [0, 1, 2]
        assert grid.tiles_for_range(60, 10, 0) == []

    def test_extent_roundtrip(self):
        grid = TileGrid(0, 100, base_tiles=4)
        x0, x1 = grid.tile_extent(2, 0)
        assert (x0, x1) == (50, 75)
        assert grid.tile_of((x0 + x1) / 2, 0) == 2


class TestTileCache:
    def test_lru_eviction(self):
        cache = TileCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # a becomes most recent
        cache.put("c", 3)       # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_hit_rate(self):
        cache = TileCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.hit_rate == 0.5

    def test_invalidate(self):
        cache = TileCache(capacity=4)
        cache.put("a", 1)
        cache.invalidate()
        assert cache.get("a") is None


class TestQuadTree:
    def test_insert_and_query(self):
        tree = QuadTree(0, 0, 100, 100, capacity=2)
        for i in range(20):
            tree.insert(i * 5, i * 5, i)
        found = tree.query(Viewport(0, 26, 0, 26))
        assert sorted(p[2] for p in found) == [0, 1, 2, 3, 4, 5]

    def test_outside_extent_rejected(self):
        tree = QuadTree(0, 0, 10, 10)
        assert not tree.insert(20, 20, "x")
        assert len(tree) == 0

    def test_nearest(self):
        tree = QuadTree(0, 0, 100, 100, capacity=2)
        tree.insert(10, 10, "a")
        tree.insert(90, 90, "b")
        assert tree.nearest(12, 12)[2] == "a"
        assert tree.nearest(80, 85)[2] == "b"

    def test_2d_viewport_required(self):
        tree = QuadTree(0, 0, 10, 10)
        with pytest.raises(NavigationError):
            tree.query(Viewport(0, 5))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 99.9), st.floats(0, 99.9)),
                    max_size=100))
    def test_property_query_matches_linear_scan(self, points):
        tree = QuadTree(0, 0, 100, 100, capacity=4)
        for i, (x, y) in enumerate(points):
            tree.insert(x, y, i)
        view = Viewport(20, 70, 30, 80)
        found = {p[2] for p in tree.query(view)}
        expected = {
            i for i, (x, y) in enumerate(points) if view.contains(x, y)
        }
        assert found == expected


class TestLayers:
    def test_default_stack(self):
        stack = LayerStack()
        assert len(stack) == 4
        assert stack.layer(0).kind == AGGREGATE
        assert stack.deepest.kind == POINTS

    def test_levels_must_be_consecutive(self):
        with pytest.raises(NavigationError):
            LayerStack([LayerSpec(0), LayerSpec(2)])

    def test_next_level_clamped(self):
        stack = LayerStack(default_layers(depth=2))
        assert stack.next_level(0) == 1
        assert stack.next_level(1) == 1

    def test_bad_kind(self):
        with pytest.raises(NavigationError):
            LayerSpec(0, kind="hologram")


@pytest.fixture
def engine():
    backend = SQLBackend.from_frame(DataFrame.from_rows(ROWS, COLUMNS))
    return ZoomEngine(backend, "income", layers=LayerStack(default_layers(depth=2)))


class TestZoomEngine:
    def test_full_view_aggregate(self, engine):
        region = engine.fetch(engine.full_view(), level=0)
        assert region.kind == AGGREGATE
        assert region.row_count == 7  # numeric incomes only
        assert sum(n for _, _, n in region.buckets) == 7

    def test_points_layer(self, engine):
        region = engine.fetch(engine.full_view(), level=1)
        assert region.kind == POINTS
        assert region.row_count == 7
        rowids = {p[0] for p in region.points}
        assert 3 not in rowids  # '12k' has no numeric position
        assert 6 not in rowids  # NULL

    def test_narrow_viewport_filters_points(self, engine):
        region = engine.fetch(Viewport(49000, 56000), level=1)
        values = sorted(p[1] for p in region.points)
        assert values == [50000.0, 51000.0, 55000.0]

    def test_tile_cache_reused_on_pan(self, engine):
        view = Viewport(48000, 80000)
        engine.fetch(view, level=0)
        misses_before = engine.cache.misses
        moved, region = engine.pan(view, level=0, fraction=0.1)
        assert engine.cache.hits > 0
        assert engine.cache.misses >= misses_before  # few new tiles at most

    def test_drill_down_narrows_and_descends(self, engine):
        view, level, region = engine.drill_down(engine.full_view(), 0, 55000)
        assert level == 1
        assert view.width < engine.full_view().width

    def test_invalidate_after_mutation(self, engine):
        engine.fetch(engine.full_view(), level=0)
        engine.backend.delete_rows([1])
        engine.invalidate()
        region = engine.fetch(engine.full_view(), level=0)
        assert region.row_count == 6

    def test_rejects_empty_numeric_column(self):
        frame = DataFrame.from_dict({"a": ["x", "y"], "b": [None, None]})
        backend = SQLBackend.from_frame(frame)
        with pytest.raises(NavigationError):
            ZoomEngine(backend, "b")


class TestDrillDownApp:
    @pytest.fixture
    def app(self):
        backend = SQLBackend.from_frame(DataFrame.from_rows(ROWS, COLUMNS))
        return DrillDownApp(backend, ["country", "degree"])

    def test_top_level_bar_chart(self, app):
        view = app.current_view()
        assert dict(view.bars) == {"Bhutan": 4, "Lesotho": 4, "Nauru": 1}
        assert view.seconds > 0

    def test_drill_and_roll(self, app):
        view = app.drill_into("Bhutan")
        assert view.column == "degree"
        assert dict(view.bars) == {"BS": 2, "MS": 1, "PhD": 1}
        top = app.roll_up()
        assert top.column == "country"

    def test_cannot_drill_past_deepest(self, app):
        app.drill_into("Bhutan")
        with pytest.raises(NavigationError):
            app.drill_into("BS")

    def test_cannot_roll_past_top(self, app):
        with pytest.raises(NavigationError):
            app.roll_up()

    def test_visible_rows_respect_path(self, app):
        app.drill_into("Lesotho")
        rows = app.visible_row_ids()
        assert sorted(rows) == [5, 6, 7, 8]

    def test_remove_row_refreshes_chart(self, app):
        """The §6.2 measured interaction."""
        app.drill_into("Bhutan")
        view, seconds = app.remove_row(1)
        assert seconds > 0
        assert sum(n for _, n in view.bars) == 3

    def test_empty_hierarchy_rejected(self):
        backend = SQLBackend.from_frame(DataFrame.from_rows(ROWS, COLUMNS))
        with pytest.raises(NavigationError):
            DrillDownApp(backend, [])
