"""Tests for transform inference and the HTML session report."""

import pytest

from repro.config import BuckarooConfig
from repro.core.inference import DELETE_ROW, CellEdit, TransformInference
from repro.core.session import BuckarooSession
from repro.core.types import ERROR_MISSING, ERROR_OUTLIER, ERROR_TYPE_MISMATCH, GroupKey
from repro.errors import BuckarooError
from repro.frame import DataFrame
from repro.ui.report import html_report

from tests.test_backends import COLUMNS, ROWS

BHUTAN = GroupKey("country", "Bhutan", "income")
LESOTHO = GroupKey("country", "Lesotho", "income")


@pytest.fixture(params=["sql", "frame"])
def session(request):
    session = BuckarooSession.from_frame(
        DataFrame.from_rows(ROWS, COLUMNS), backend=request.param,
        config=BuckarooConfig(min_group_size=2),
    )
    session.generate_groups(cat_cols=["country", "degree"],
                            num_cols=["income", "age"])
    session.detect()
    return session


class TestTransformInference:
    def test_edit_to_parsed_value_infers_conversion(self, session):
        """Typing 12000 over '12k' demonstrates type conversion."""
        inference = TransformInference(session)
        results = inference.infer([CellEdit(3, "income", 12000.0)])
        assert results[0].consistent
        assert results[0].plan.wrangler_code == "convert_type"

    def test_edit_to_group_mean_infers_imputation(self, session):
        mean = session.backend.numeric_stats("income", "country", "Lesotho").mean
        inference = TransformInference(session)
        results = inference.infer(
            [CellEdit(6, "income", round(mean, 6))], group_key=LESOTHO,
        )
        best = results[0]
        assert best.consistent
        assert best.plan.wrangler_code == "impute_mean"

    def test_deletion_example_infers_delete_rows(self, session):
        inference = TransformInference(session)
        results = inference.infer(
            [CellEdit(4, "income", DELETE_ROW)], group_key=BHUTAN,
        )
        consistent = [r for r in results if r.consistent]
        assert consistent
        assert consistent[0].plan.wrangler_code == "delete_rows"

    def test_inconsistent_candidates_ranked_below(self, session):
        inference = TransformInference(session)
        results = inference.infer([CellEdit(3, "income", 12000.0)])
        flags = [r.consistent for r in results]
        assert flags == sorted(flags, reverse=True)

    def test_inferred_plan_is_applicable(self, session):
        inference = TransformInference(session)
        best = inference.infer([CellEdit(3, "income", 12000.0)])[0]
        result = session.apply(best.suggestion)
        assert result.resolved > 0
        assert session.backend.values("income", [3]) == [12000.0]

    def test_group_auto_located(self, session):
        inference = TransformInference(session)
        results = inference.infer([CellEdit(6, "income", 0.0)])
        assert results  # row 6's missing-income group was found
        assert all(
            r.plan.group_key.numerical == "income" for r in results
        )

    def test_requires_examples(self, session):
        with pytest.raises(BuckarooError, match="at least one example"):
            TransformInference(session).infer([])

    def test_rejects_multi_column_examples(self, session):
        with pytest.raises(BuckarooError, match="one transformation"):
            TransformInference(session).infer([
                CellEdit(3, "income", 1.0), CellEdit(3, "age", 1),
            ])

    def test_unlocatable_examples(self, session):
        with pytest.raises(BuckarooError, match="group_key"):
            # row 1 is clean: no anomalous group covers it
            TransformInference(session).infer([CellEdit(1, "income", 1.0)])

    def test_limit(self, session):
        inference = TransformInference(session)
        results = inference.infer([CellEdit(3, "income", 12000.0)], limit=2)
        assert len(results) == 2
        assert [r.suggestion.rank for r in results] == [1, 2]


class TestHtmlReport:
    def test_report_structure(self, session):
        html = html_report(session, title="Test <Report>")
        assert html.startswith("<!DOCTYPE html>")
        assert "Test &lt;Report&gt;" in html
        assert "Anomaly summary" in html
        assert "<svg" in html
        assert "(none yet)" in html  # no history
        assert "Bhutan" in html

    def test_report_includes_history_and_script(self, session):
        worst = session.anomaly_summary().groups[0].key
        session.apply(session.suggest(worst, limit=1, score_plans=False)[0])
        html = html_report(session)
        assert "Applied wrangling operations" in html
        assert "def wrangle" in html
        assert "(none yet)" not in html

    def test_report_error_colors_embedded(self, session):
        html = html_report(session)
        outlier_color = session.detectors.error_type(ERROR_OUTLIER).color
        assert outlier_color in html

    def test_chart_budget_respected(self, session):
        html = html_report(session, max_charts=1)
        assert html.count("<svg") == 1
