"""Tests for the minicheck static-analysis framework (repro.analysis).

Each rule is proven twice: its ``bad_*`` fixture fires, its ``good_*``
fixture stays clean.  Suppressions and the baseline round-trip through
the engine, and — the gate this PR installs — the live
``src/repro/minidb`` tree is clean under ``--strict`` semantics.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Analyzer, Baseline, analyze_paths
from repro.analysis.checkers import ALL_CHECKERS, RULES
from repro.analysis.findings import Finding, suppressed_rules
from repro.analysis.loader import load_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
MINIDB = REPO_ROOT / "src" / "repro" / "minidb"
BASELINE = REPO_ROOT / "minicheck_baseline.json"

ALL_RULES = sorted(RULES)


def run_rule(rule: str, path: Path):
    analyzer = Analyzer(checkers=[RULES[rule]()])
    return analyzer.run([path])


# -- per-rule fixtures -------------------------------------------------------

@pytest.mark.parametrize("rule", ALL_RULES)
def test_bad_fixture_fires(rule):
    fixture = FIXTURES / f"bad_{rule.replace('-', '_')}.py"
    report = run_rule(rule, fixture)
    assert report.findings, f"{rule} did not fire on {fixture.name}"
    assert all(f.rule == rule for f in report.findings)


@pytest.mark.parametrize("rule", ALL_RULES)
def test_good_fixture_clean(rule):
    fixture = FIXTURES / f"good_{rule.replace('-', '_')}.py"
    report = run_rule(rule, fixture)
    assert not report.findings, (
        f"{rule} false-positived on {fixture.name}: "
        + "; ".join(f.format() for f in report.findings)
    )


@pytest.mark.parametrize("rule", ALL_RULES)
def test_bad_fixture_suppressible(rule, tmp_path):
    """Every finding disappears under an inline ignore on its line."""
    fixture = FIXTURES / f"bad_{rule.replace('-', '_')}.py"
    report = run_rule(rule, fixture)
    lines = fixture.read_text().splitlines()
    for finding in report.findings:
        lines[finding.line - 1] += f"  # minicheck: ignore[{rule}]"
    patched = tmp_path / fixture.name
    patched.write_text("\n".join(lines) + "\n")
    report = run_rule(rule, patched)
    assert not report.findings
    assert report.suppressed


def test_suppression_on_def_line(tmp_path):
    """A function-level ignore covers findings attributed to it."""
    src = (
        "class Table:\n"
        "    def __init__(self):\n"
        "        self.rows = {}\n"
        "    def f(self, rowid):  # minicheck: ignore[lock-discipline]\n"
        "        self.rows[rowid] = 1\n"
    )
    path = tmp_path / "mod.py"
    path.write_text(src)
    report = run_rule("lock-discipline", path)
    assert not report.findings
    assert len(report.suppressed) == 1


def test_bare_suppression_covers_all_rules():
    assert suppressed_rules("x = 1  # minicheck: ignore") == set()
    assert suppressed_rules("x = 1  # minicheck: ignore[a, b]") == {"a", "b"}
    assert suppressed_rules("x = 1  # unrelated") is None


# -- baseline ----------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    fixture = FIXTURES / "bad_lock_discipline.py"
    first = run_rule("lock-discipline", fixture)
    assert first.findings

    baseline_path = tmp_path / "baseline.json"
    baseline = Baseline()
    baseline.save(baseline_path, first.findings)

    reloaded = Baseline.load(baseline_path)
    assert len(reloaded) == len({f.key() for f in first.findings})

    analyzer = Analyzer(checkers=[RULES["lock-discipline"]()],
                        baseline=reloaded)
    second = analyzer.run([fixture])
    assert not second.findings
    assert len(second.baselined) == len(first.findings)


def test_baseline_missing_file_is_empty(tmp_path):
    assert len(Baseline.load(tmp_path / "nope.json")) == 0


def test_finding_key_ignores_line_numbers():
    a = Finding("r", "error", "p.py", 10, 0, "msg", "q")
    b = Finding("r", "error", "p.py", 99, 4, "msg", "q")
    c = Finding("r", "error", "p.py", 10, 0, "other", "q")
    assert a.key() == b.key()
    assert a.key() != c.key()


# -- the gate: live minidb tree is clean -------------------------------------

def test_live_minidb_tree_is_clean():
    report = analyze_paths([MINIDB], baseline=Baseline.load(BASELINE))
    assert report.clean, "\n".join(f.format() for f in report.findings)


def test_committed_baseline_is_empty():
    """The tree was fixed rather than baselined: keep it that way."""
    data = json.loads(BASELINE.read_text())
    assert data["findings"] == []


# -- CLI ---------------------------------------------------------------------

def _run_cli(*args):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "run_analysis.py"),
         *args],
        capture_output=True, text=True, cwd=str(REPO_ROOT),
    )


def test_cli_strict_clean_on_minidb():
    proc = _run_cli("--strict")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_strict_fails_on_bad_fixture():
    proc = _run_cli("--strict", str(FIXTURES / "bad_lock_discipline.py"))
    assert proc.returncode == 1
    assert "[lock-discipline]" in proc.stdout


def test_cli_json_output():
    proc = _run_cli("--json", str(FIXTURES / "bad_publication_order.py"))
    payload = json.loads(proc.stdout)
    assert payload["clean"] is False
    rules = {f["rule"] for f in payload["findings"]}
    assert "publication-order" in rules


def test_cli_rule_selection():
    proc = _run_cli("--rules", "wal-coverage",
                    str(FIXTURES / "bad_lock_discipline.py"))
    # only wal-coverage runs; also fires here (unlogged rows mutation),
    # but no lock-discipline finding may appear
    assert "[lock-discipline]" not in proc.stdout


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    for cls in ALL_CHECKERS:
        assert cls.rule in proc.stdout


def test_cli_unknown_rule():
    proc = _run_cli("--rules", "no-such-rule")
    assert proc.returncode == 2


def test_fixture_corpus_is_complete():
    for rule in ALL_RULES:
        stem = rule.replace("-", "_")
        assert (FIXTURES / f"bad_{stem}.py").exists()
        assert (FIXTURES / f"good_{stem}.py").exists()


def test_loader_skips_pycache(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    cache = tmp_path / "pkg" / "__pycache__"
    cache.mkdir()
    (cache / "a.cpython-311.py").write_text("x = 1\n")
    modules = load_paths([tmp_path / "pkg"])
    assert [m.name for m in modules] == ["a"]
