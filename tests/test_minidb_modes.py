"""The same engine battery run in both storage modes.

Every test here executes twice — once against an in-memory database
(dict-backed row heaps) and once against a file-backed database (slotted
pages behind the buffer pool, deliberately undersized so scans evict).
The paged heap is a drop-in replacement for the dict heap; these tests
are the contract that says so.
"""

import pytest

from repro.errors import IntegrityError, TransactionError
from repro.minidb import connect
from repro.minidb.pager import PAGE_SIZE


@pytest.fixture(params=["memory", "file"])
def db(request, tmp_path):
    if request.param == "memory":
        handle = connect()
    else:
        handle = connect(tmp_path / "modes.db", pool_pages=8)
    yield handle
    handle.close()


@pytest.fixture
def people(db):
    db.execute("CREATE TABLE people (name TEXT, dept TEXT, age INT)")
    db.executemany(
        "INSERT INTO people VALUES (?, ?, ?)",
        [("ada", "eng", 36), ("grace", "eng", 45), ("alan", "math", 41),
         ("kurt", "math", 29), ("emmy", "math", 53), ("rosa", "bio", 33)],
    )
    return db


class TestCrudBothModes:
    def test_insert_select_where(self, people):
        rows = people.execute(
            "SELECT name FROM people WHERE age > 40 ORDER BY name").scalars()
        assert rows == ["alan", "emmy", "grace"]

    def test_update_and_delete(self, people):
        assert people.execute(
            "UPDATE people SET age = age + 1 WHERE dept = 'eng'").rowcount == 2
        assert people.execute(
            "SELECT SUM(age) FROM people WHERE dept = 'eng'").scalar() == 83
        assert people.execute(
            "DELETE FROM people WHERE dept = 'bio'").rowcount == 1
        assert people.execute("SELECT COUNT(*) FROM people").scalar() == 5

    def test_group_by_order_by_limit(self, people):
        rows = people.execute(
            "SELECT dept, COUNT(*) AS n FROM people GROUP BY dept "
            "ORDER BY n DESC, dept LIMIT 2").rows
        assert rows == [("math", 3), ("eng", 2)]

    def test_join(self, people):
        people.execute("CREATE TABLE heads (dept TEXT, head TEXT)")
        people.executemany("INSERT INTO heads VALUES (?, ?)",
                           [("eng", "ada"), ("math", "emmy")])
        rows = people.execute(
            "SELECT p.name, h.head FROM people p JOIN heads h "
            "ON p.dept = h.dept WHERE p.age > 44 ORDER BY p.name").rows
        assert rows == [("emmy", "emmy"), ("grace", "ada")]

    def test_null_round_trip(self, db):
        db.execute("CREATE TABLE n (a INT, b TEXT)")
        db.execute("INSERT INTO n (a) VALUES (1)")
        db.execute("INSERT INTO n VALUES (NULL, 'only-b')")
        assert db.execute("SELECT b FROM n WHERE a = 1").scalar() is None
        assert db.execute(
            "SELECT COUNT(*) FROM n WHERE a IS NULL").scalar() == 1

    def test_value_types_round_trip(self, db):
        db.execute("CREATE TABLE v (i INT, f REAL, s TEXT)")
        db.execute("INSERT INTO v VALUES (?, ?, ?)",
                   (2 ** 70, -0.125, "naïve ünïcode"))
        assert db.execute("SELECT i, f, s FROM v").rows == [
            (2 ** 70, -0.125, "naïve ünïcode")]

    def test_oversized_rows(self, db):
        """In file mode this forces overflow chains (> one 4KB page)."""
        db.execute("CREATE TABLE blobs (k INT, body TEXT)")
        bodies = {k: f"body-{k}-" + "z" * (2 * PAGE_SIZE + k) for k in range(5)}
        db.executemany("INSERT INTO blobs VALUES (?, ?)",
                       list(bodies.items()))
        for k, body in bodies.items():
            assert db.execute(
                "SELECT body FROM blobs WHERE k = ?", (k,)).scalar() == body
        db.execute("UPDATE blobs SET body = 'tiny' WHERE k = 2")
        assert db.execute(
            "SELECT body FROM blobs WHERE k = 2").scalar() == "tiny"


class TestIndexesBothModes:
    def test_index_probe_matches_scan(self, people):
        people.execute("CREATE INDEX idx_age ON people(age)")
        probe = people.execute(
            "SELECT name FROM people WHERE age = 41").scalars()
        assert probe == ["alan"]
        rng = people.execute(
            "SELECT name FROM people WHERE age BETWEEN 30 AND 40 "
            "ORDER BY name").scalars()
        assert rng == ["ada", "rosa"]

    def test_unique_enforced(self, people):
        people.execute("CREATE UNIQUE INDEX u_name ON people(name)")
        conn = people.connect()
        conn.execute("BEGIN")
        with pytest.raises(IntegrityError, match="UNIQUE"):
            conn.execute("INSERT INTO people VALUES ('ada', 'dup', 1)")
        conn.rollback()
        conn.close()
        assert people.execute(
            "SELECT COUNT(*) FROM people").scalar() == 6

    def test_index_survives_update_churn(self, people):
        people.execute("CREATE INDEX idx_dept ON people(dept)")
        people.execute("UPDATE people SET dept = 'cs' WHERE dept = 'math'")
        assert people.execute(
            "SELECT COUNT(*) FROM people WHERE dept = 'cs'").scalar() == 3
        assert people.execute(
            "SELECT COUNT(*) FROM people WHERE dept = 'math'").scalar() == 0


class TestDdlBothModes:
    def test_alter_add_column(self, people):
        people.execute("ALTER TABLE people ADD COLUMN office TEXT")
        assert people.execute(
            "SELECT office FROM people WHERE name = 'ada'").scalar() is None
        people.execute("UPDATE people SET office = 'A1' WHERE dept = 'eng'")
        assert people.execute(
            "SELECT COUNT(*) FROM people WHERE office = 'A1'").scalar() == 2

    def test_drop_table(self, people):
        people.execute("DROP TABLE people")
        assert not people.has_table("people")
        people.execute("CREATE TABLE people (name TEXT)")
        assert people.execute("SELECT COUNT(*) FROM people").scalar() == 0


class TestTransactionsBothModes:
    def test_commit_and_rollback(self, people):
        conn = people.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO people VALUES ('new', 'eng', 20)")
        conn.rollback()
        assert people.execute("SELECT COUNT(*) FROM people").scalar() == 6

        conn.execute("BEGIN")
        conn.execute("INSERT INTO people VALUES ('new', 'eng', 20)")
        conn.commit()
        assert people.execute("SELECT COUNT(*) FROM people").scalar() == 7
        conn.close()

    def test_snapshot_isolation(self, people):
        reader = people.connect()
        writer = people.connect()
        reader.execute("BEGIN")
        baseline = reader.execute("SELECT COUNT(*) FROM people").scalar()
        writer.execute("BEGIN")
        writer.execute("DELETE FROM people WHERE dept = 'math'")
        writer.commit()
        # the reader's snapshot predates the delete
        assert reader.execute(
            "SELECT COUNT(*) FROM people").scalar() == baseline
        reader.commit()
        assert reader.execute("SELECT COUNT(*) FROM people").scalar() == 3
        reader.close()
        writer.close()

    def test_write_conflict_detected(self, people):
        a = people.connect()
        b = people.connect()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE people SET age = 1 WHERE name = 'ada'")
        with pytest.raises(TransactionError):
            b.execute("UPDATE people SET age = 2 WHERE name = 'ada'")
        a.commit()
        b.rollback()
        a.close()
        b.close()


class TestPreparedBothModes:
    def test_prepared_statement_reuse(self, people):
        stmt = people.prepare("SELECT name FROM people WHERE dept = ?")
        assert sorted(stmt.execute(("eng",)).scalars()) == ["ada", "grace"]
        assert stmt.execute(("bio",)).scalars() == ["rosa"]

    def test_executemany_batches(self, db):
        db.execute("CREATE TABLE seq (i INT)")
        assert db.executemany(
            "INSERT INTO seq VALUES (?)", [(i,) for i in range(250)]) == 250
        assert db.execute("SELECT SUM(i) FROM seq").scalar() == sum(range(250))
