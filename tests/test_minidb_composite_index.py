"""Composite (multi-column) indexes: planning, ordered scans, and
consistency under mutation, rollback (undo), WAL redo, and snapshot
delta replay.

The planner contract under test: ``WHERE cat = ? ORDER BY val [DESC]
LIMIT k`` on a ``(cat, val)`` index is one bounded ``IndexOrderScan``
walk — no TopK, no Sort — and the index answers stay identical to an
unindexed twin database through any sequence of writes.
"""

from __future__ import annotations

import pytest

from repro.backends.sql_backend import SQLBackend
from repro.frame import DataFrame
from repro.minidb import Database
from repro.minidb.wal import WriteAheadLog

ROWS = [
    ("a", 3.0, 1),
    ("a", 1.0, 2),
    ("b", 2.0, 3),
    ("a", None, 4),   # NULL in the order column
    (None, 9.0, 5),   # NULL in the equality column
    ("a", "12k", 6),  # text contamination in a REAL column
    ("b", 2.0, 7),    # duplicate composite key
    ("c", -4.0, 8),
]


def _twin_dbs():
    """An indexed database and an identical unindexed one."""
    indexed, plain = Database(), Database()
    for db in (indexed, plain):
        db.execute("CREATE TABLE t (cat TEXT, val REAL, x INT)")
        db.executemany("INSERT INTO t VALUES (?, ?, ?)", ROWS)
    indexed.execute("CREATE INDEX idx_cv ON t (cat, val)")
    return indexed, plain


# (sql, params, positions of the ORDER BY key columns in the output row);
# key columns must match in sequence, full rows as multisets — rows tied on
# every key may legally come back in any order
PROBES = [
    ("SELECT val, x FROM t WHERE cat = ? ORDER BY val LIMIT 3", ("a",), (0,)),
    ("SELECT val, x FROM t WHERE cat = ? ORDER BY val DESC LIMIT 3", ("a",), (0,)),
    ("SELECT val, x FROM t WHERE cat = ? ORDER BY val DESC", ("b",), (0,)),
    ("SELECT val, x FROM t WHERE cat = ? AND val = ?", ("b", 2), ()),
    ("SELECT val, x FROM t WHERE cat = ?", ("a",), ()),
    ("SELECT cat, val, x FROM t ORDER BY cat, val", (), (0, 1)),
    ("SELECT cat, val, x FROM t ORDER BY cat DESC, val DESC", (), (0, 1)),
]


def _assert_equivalent(indexed: Database, plain: Database) -> None:
    """Every probe answers identically through the index and without it."""
    for sql, params, key_positions in PROBES:
        fast = indexed.execute(sql, params).rows
        slow = plain.execute(sql, params).rows
        keys = lambda rows: [[row[p] for p in key_positions] for row in rows]
        assert keys(fast) == keys(slow), f"{sql} key order diverged"
        if "LIMIT" not in sql:  # ties at a LIMIT cut may differ legally
            assert sorted(map(repr, fast)) == sorted(map(repr, slow)), sql
    # structural: the composite tree still covers every row
    table = indexed.table("t")
    for index in table.btree_indexes():
        assert index.covers(table.n_rows)
        index._tree.check_invariants()


class TestCompositePlans:
    def test_eq_prefix_desc_is_one_index_walk(self):
        indexed, _ = _twin_dbs()
        plan = indexed.explain(
            "SELECT x FROM t WHERE cat = ? ORDER BY val DESC LIMIT 10"
        )
        assert "IndexOrderScan" in plan and "DESC" in plan
        assert "TopK" not in plan and "Sort" not in plan and "SeqScan" not in plan

    def test_eq_prefix_asc(self):
        indexed, _ = _twin_dbs()
        plan = indexed.explain("SELECT x FROM t WHERE cat = ? ORDER BY val LIMIT 5")
        assert "IndexOrderScan" in plan and "eq_prefix=1" in plan
        assert "DESC" not in plan

    def test_full_equality_uses_composite(self):
        indexed, _ = _twin_dbs()
        plan = indexed.explain("SELECT x FROM t WHERE cat = ? AND val = ?")
        assert "IndexEqScan" in plan and "2 cols" in plan

    def test_full_walk_matches_multi_key_order(self):
        indexed, _ = _twin_dbs()
        plan = indexed.explain("SELECT x FROM t ORDER BY cat, val LIMIT 4")
        assert "IndexOrderScan" in plan and "Sort" not in plan and "TopK" not in plan
        plan = indexed.explain("SELECT x FROM t ORDER BY cat DESC, val DESC LIMIT 4")
        assert "IndexOrderScan" in plan and "DESC" in plan

    def test_mixed_directions_fall_back(self):
        indexed, _ = _twin_dbs()
        plan = indexed.explain("SELECT x FROM t ORDER BY cat, val DESC LIMIT 4")
        assert "IndexOrderScan" not in plan and "TopK" in plan

    def test_prefix_without_order_still_bounds_the_scan(self):
        indexed, _ = _twin_dbs()
        plan = indexed.explain("SELECT x FROM t WHERE cat = ?")
        assert "IndexOrderScan" in plan and "SeqScan" not in plan

    def test_order_by_pinned_column_needs_no_sort(self):
        indexed, _ = _twin_dbs()
        plan = indexed.explain("SELECT x FROM t WHERE cat = ? ORDER BY cat")
        assert "Sort" not in plan and "TopK" not in plan

    def test_null_probe_returns_nothing(self):
        indexed, plain = _twin_dbs()
        for db in (indexed, plain):
            assert db.execute(
                "SELECT x FROM t WHERE cat = ? ORDER BY val DESC LIMIT 3", (None,)
            ).rows == []

    def test_results_match_unindexed_twin(self):
        _assert_equivalent(*_twin_dbs())


class TestMaintenanceUnderMutation:
    def test_update_of_suffix_column(self):
        indexed, plain = _twin_dbs()
        for db in (indexed, plain):
            db.execute("UPDATE t SET val = ? WHERE x = ?", (100.0, 2))
            db.execute("UPDATE t SET val = NULL WHERE x = ?", (1,))
        _assert_equivalent(indexed, plain)

    def test_update_of_prefix_column(self):
        indexed, plain = _twin_dbs()
        for db in (indexed, plain):
            db.execute("UPDATE t SET cat = ? WHERE cat = ?", ("z", "a"))
            db.execute("UPDATE t SET cat = NULL WHERE x = ?", (3,))
        _assert_equivalent(indexed, plain)

    def test_update_of_unindexed_column_leaves_keys_alone(self):
        indexed, plain = _twin_dbs()
        for db in (indexed, plain):
            db.execute("UPDATE t SET x = x + 100 WHERE cat = ?", ("b",))
        _assert_equivalent(indexed, plain)

    def test_delete_and_reinsert(self):
        indexed, plain = _twin_dbs()
        for db in (indexed, plain):
            db.execute("DELETE FROM t WHERE cat = ?", ("a",))
            db.execute("INSERT INTO t VALUES ('a', 0.5, 50), ('a', NULL, 51)")
        _assert_equivalent(indexed, plain)

    def test_churn_keeps_null_tracking_consistent(self):
        indexed, plain = _twin_dbs()
        for db in (indexed, plain):
            db.execute("UPDATE t SET val = NULL WHERE cat = ?", ("b",))
            db.execute("UPDATE t SET val = 7 WHERE val IS NULL")
            db.execute("DELETE FROM t WHERE val = 7")
        _assert_equivalent(indexed, plain)
        index = indexed.table("t").indexes["idx_cv"]
        expected_nulls = {
            rowid for rowid, row in indexed.table("t").scan()
            if row[0] is None or row[1] is None
        }
        assert index.null_rowids == expected_nulls


def _probe_fingerprint(db: Database) -> dict:
    """Order-of-ties-insensitive answers to every probe."""
    out = {}
    for sql, params, key_positions in PROBES:
        rows = db.execute(sql, params).rows
        out[sql] = (
            [[row[p] for p in key_positions] for row in rows],
            sorted(map(repr, rows)),
        )
    return out


class TestUndoRedoReplay:
    def test_rollback_restores_index_answers(self):
        indexed, plain = _twin_dbs()
        before = _probe_fingerprint(indexed)
        indexed.execute("BEGIN")
        indexed.execute("UPDATE t SET val = val + 1 WHERE cat = ? AND val < ?",
                        ("a", 100))
        indexed.execute("DELETE FROM t WHERE cat = ?", ("b",))
        indexed.execute("INSERT INTO t VALUES ('q', 1.0, 99)")
        indexed.execute("ROLLBACK")
        assert _probe_fingerprint(indexed) == before
        _assert_equivalent(indexed, plain)

    def test_wal_redo_rebuilds_composite_indexes(self):
        wal = WriteAheadLog()
        source = Database(wal=wal)
        source.execute("CREATE TABLE t (cat TEXT, val REAL, x INT)")
        source.execute("CREATE INDEX idx_cv ON t (cat, val)")
        source.executemany("INSERT INTO t VALUES (?, ?, ?)", ROWS)
        source.execute("UPDATE t SET val = ? WHERE x = ?", (42.0, 3))
        source.execute("DELETE FROM t WHERE x = ?", (8,))

        replica = Database()
        wal.replay_into(replica)
        assert _probe_fingerprint(replica) == _probe_fingerprint(source)
        index = replica.table("t").indexes["idx_cv"]
        assert index.columns == ("cat", "val")
        assert index.covers(replica.table("t").n_rows)

    def test_delta_undo_redo_on_composite_indexed_table(self):
        frame = DataFrame.from_rows(
            [list(r) for r in ROWS], ["cat", "val", "x"]
        )
        backend = SQLBackend.from_frame(frame)
        backend.db.execute("CREATE INDEX idx_cv ON data (cat, val)")
        table = backend.db.table("data")

        def snapshot():
            return backend.db.execute(
                "SELECT cat, val, x FROM data ORDER BY cat, val, x"
            ).rows

        def assert_index_consistent():
            index = table.indexes["idx_cv"]
            assert index.covers(table.n_rows)
            index._tree.check_invariants()
            expected = {
                rowid for rowid, row in table.scan()
                if row[index.positions[0]] is None
                or row[index.positions[1]] is None
            }
            assert index.null_rowids == expected

        initial = snapshot()
        delta_set = backend.set_cells("val", list(table.rows), value=5.5)
        delta_del = backend.delete_rows([1, 3])
        mutated = snapshot()
        assert mutated != initial
        assert_index_consistent()

        # undo newest-first: replay each delta's inverse
        backend.apply_delta(delta_del.inverse())
        backend.apply_delta(delta_set.inverse())
        assert snapshot() == initial
        assert_index_consistent()

        # redo oldest-first: replay the deltas forward again
        backend.apply_delta(delta_set)
        backend.apply_delta(delta_del)
        assert snapshot() == mutated
        assert_index_consistent()


@pytest.mark.parametrize("kind", ["btree", "hash"])
def test_composite_unique_enforced_through_sql(kind):
    db = Database()
    db.execute("CREATE TABLE t (a TEXT, b INT)")
    db.execute(f"CREATE UNIQUE INDEX u ON t (a, b) USING {kind}")
    db.execute("INSERT INTO t VALUES ('x', 1)")
    db.execute("INSERT INTO t VALUES ('x', 2)")  # differs in b: fine
    db.execute("INSERT INTO t VALUES ('x', NULL)")
    db.execute("INSERT INTO t VALUES ('x', NULL)")  # NULLs never collide
    from repro.errors import IntegrityError

    with pytest.raises(IntegrityError):
        db.execute("INSERT INTO t VALUES ('x', 1)")
