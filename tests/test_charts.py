"""Tests for the headless chart layer."""

import pytest

from repro.charts import (
    ChartMatrix,
    HeatmapChart,
    HistogramChart,
    LineChart,
    ScatterChart,
    SelectionModel,
    build_legend,
    render_svg,
    render_text,
    severity_alpha,
)
from repro.config import BuckarooConfig
from repro.core.session import BuckarooSession
from repro.core.types import NO_ANOMALY_COLOR, GroupKey
from repro.errors import BuckarooError
from repro.frame import DataFrame

from tests.test_backends import COLUMNS, ROWS


@pytest.fixture
def session():
    session = BuckarooSession.from_frame(
        DataFrame.from_rows(ROWS, COLUMNS), backend="frame",
        config=BuckarooConfig(min_group_size=2),
    )
    session.generate_groups(cat_cols=["country", "degree"],
                            num_cols=["income", "age"])
    session.detect()
    return session


class TestHeatmap:
    def test_one_mark_per_group(self, session):
        chart = HeatmapChart(session=session, categorical="country",
                             numerical="income")
        assert len(chart.marks) == 3
        assert {m.x for m in chart.marks} == {"Bhutan", "Lesotho", "Nauru"}

    def test_marks_carry_group_identity(self, session):
        chart = HeatmapChart(session=session, categorical="country",
                             numerical="income")
        for mark in chart.marks:
            assert mark.group.categorical == "country"
            assert mark.group.numerical == "income"

    def test_anomalous_marks_colored(self, session):
        chart = HeatmapChart(session=session, categorical="country",
                             numerical="income")
        bhutan = next(m for m in chart.marks if m.x == "Bhutan")
        assert bhutan.is_anomalous
        assert bhutan.color != NO_ANOMALY_COLOR

    def test_refresh_after_repair(self, session):
        chart = HeatmapChart(session=session, categorical="country",
                             numerical="income")
        bhutan_before = next(m for m in chart.marks if m.x == "Bhutan")
        key = GroupKey("country", "Bhutan", "income")
        session.apply(session.suggest(key, limit=1)[0])
        chart.refresh()
        bhutan_after = next(m for m in chart.marks if m.x == "Bhutan")
        assert bhutan_after.anomaly_count < bhutan_before.anomaly_count


class TestOtherCharts:
    def test_histogram_bins(self, session):
        chart = HistogramChart(session=session, numerical="age", bins=5)
        assert len(chart.marks) == 5
        assert sum(m.y for m in chart.marks) == 9

    def test_histogram_anomaly_overlay(self, session):
        chart = HistogramChart(session=session, numerical="income", bins=5)
        assert any(m.is_anomalous for m in chart.marks)

    def test_scatter_includes_every_anomalous_row(self, session):
        chart = ScatterChart(session=session, x_col="age", y_col="income",
                             budget=4)
        anomalous = [m for m in chart.marks if m.is_anomalous]
        assert anomalous  # errors survive even a tiny budget

    def test_line_decimation(self, session):
        chart = LineChart(session=session, x_col="age", y_col="income",
                          max_points=4)
        assert 0 < len(chart.marks) <= 9


class TestMatrix:
    def test_one_chart_per_pair(self, session):
        matrix = ChartMatrix(session)
        assert len(matrix) == 4
        assert set(matrix.pairs()) == set(session.pairs())

    def test_apply_refreshes_affected_charts_only(self, session):
        matrix = ChartMatrix(session)
        key = GroupKey("country", "Bhutan", "income")
        session.apply(session.suggest(key, limit=1)[0])
        assert matrix.refreshes > 0

    def test_most_anomalous_ordering(self, session):
        matrix = ChartMatrix(session)
        worst = matrix.most_anomalous(limit=2)
        scores = [sum(m.anomaly_count for m in c.marks) for c in worst]
        assert scores == sorted(scores, reverse=True)


class TestSelection:
    def test_click_mark_selects_group(self, session):
        chart = HeatmapChart(session=session, categorical="country",
                             numerical="income")
        model = SelectionModel()
        seen = []
        model.on_change(seen.append)
        key = model.select_mark(chart, 0)
        assert model.selected == key
        assert seen == [key]
        model.clear()
        assert model.selected is None
        assert seen[-1] is None

    def test_mark_without_group_rejected(self, session):
        chart = HistogramChart(session=session, numerical="age")
        model = SelectionModel()
        with pytest.raises(BuckarooError):
            model.select_mark(chart, 0)


class TestRenderers:
    def test_text_render_shows_errors(self, session):
        chart = HeatmapChart(session=session, categorical="country",
                             numerical="income")
        text = render_text(chart)
        assert "Bhutan" in text
        assert "errors" in text
        assert "!" in text  # anomaly glyph

    def test_svg_render_well_formed(self, session):
        chart = HeatmapChart(session=session, categorical="country",
                             numerical="income")
        svg = render_svg(chart)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "<rect" in svg

    def test_svg_scatter_uses_circles(self, session):
        chart = ScatterChart(session=session, x_col="age", y_col="income")
        assert "<circle" in render_svg(chart)

    def test_legend(self, session):
        legend = build_legend(session.detectors)
        codes = [entry.code for entry in legend]
        assert "outlier" in codes and "none" in codes

    def test_severity_alpha_bounds(self):
        assert severity_alpha(0, 10) == pytest.approx(0.2)
        assert severity_alpha(10, 10) == pytest.approx(1.0)
        assert 0.2 < severity_alpha(5, 10) < 1.0
