"""Unit tests for the CI guard scripts (bench smoke validation and the
benchmark regression checker) — the pieces the workflow relies on."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load(module_name: str):
    path = REPO_ROOT / "scripts" / f"{module_name}.py"
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


regression = _load("check_bench_regression")
smoke = _load("ci_bench_smoke")


def _write_artifact(directory: Path, name: str, payload: dict) -> Path:
    path = directory / f"{name}.json"
    path.write_text(json.dumps(
        {"name": name, "created_unix": 1.0, "payload": payload}
    ))
    return path


class TestTrackedPaths:
    def test_leaf_seconds_keys(self):
        payload = {
            "queries": {
                "scan": {"streaming_seconds": 0.001, "speedup": 120.0},
            },
            "n_rows": 1000,
        }
        assert regression.tracked_paths(payload) == {
            "queries.scan.streaming_seconds": 0.001
        }

    def test_seconds_container_tracks_children(self):
        payload = {"stage_seconds": {"detect": 0.5, "apply": {"sub": 0.25}}}
        assert regression.tracked_paths(payload) == {
            "stage_seconds.detect": 0.5,
            "stage_seconds.apply.sub": 0.25,
        }

    def test_plain_seconds_key(self):
        payload = {"modes": {"composite": {"seconds": 2.0}}}
        assert regression.tracked_paths(payload) == {
            "modes.composite.seconds": 2.0
        }

    def test_bools_and_counts_ignored(self):
        payload = {"seconds": True, "limit_seconds": "n/a", "n": 7}
        assert regression.tracked_paths(payload) == {}


class TestCompare:
    def test_no_regression(self, tmp_path):
        base, new = tmp_path / "base", tmp_path / "new"
        base.mkdir(), new.mkdir()
        _write_artifact(base, "b", {"run_seconds": 1.0})
        _write_artifact(new, "b", {"run_seconds": 1.5})
        assert regression.compare(base, new, 2.0, 0.0001) == []

    def test_regression_detected(self, tmp_path):
        base, new = tmp_path / "base", tmp_path / "new"
        base.mkdir(), new.mkdir()
        _write_artifact(base, "b", {"run_seconds": 1.0})
        _write_artifact(new, "b", {"run_seconds": 2.5})
        problems = regression.compare(base, new, 2.0, 0.0001)
        assert len(problems) == 1 and "run_seconds" in problems[0]

    def test_absolute_floor_suppresses_jitter(self, tmp_path):
        base, new = tmp_path / "base", tmp_path / "new"
        base.mkdir(), new.mkdir()
        _write_artifact(base, "b", {"run_seconds": 0.00001})
        _write_artifact(new, "b", {"run_seconds": 0.00005})  # 5x but tiny
        assert regression.compare(base, new, 2.0, 0.0001) == []

    def test_missing_artifact_fails(self, tmp_path):
        base, new = tmp_path / "base", tmp_path / "new"
        base.mkdir(), new.mkdir()
        _write_artifact(base, "b", {"run_seconds": 1.0})
        problems = regression.compare(base, new, 2.0, 0.0001)
        assert problems and "no fresh artifact" in problems[0]

    def test_disappeared_path_fails(self, tmp_path):
        base, new = tmp_path / "base", tmp_path / "new"
        base.mkdir(), new.mkdir()
        _write_artifact(base, "b", {"run_seconds": 1.0})
        _write_artifact(new, "b", {"other_seconds": 1.0})
        problems = regression.compare(base, new, 2.0, 0.0001)
        assert problems and "disappeared" in problems[0]

    def test_committed_baselines_track_real_artifacts(self):
        """The shipped baselines expose at least one hot path each."""
        baseline_dir = REPO_ROOT / "benchmarks" / "baselines"
        baselines = sorted(baseline_dir.glob("*.json"))
        assert baselines, "no committed baselines"
        for path in baselines:
            payload = regression.load_payload(path)
            assert regression.tracked_paths(payload), path.name


class TestSmokeValidation:
    def test_valid_artifact(self, tmp_path):
        path = _write_artifact(tmp_path, "good", {"x_seconds": 1.0})
        assert smoke.validate_artifact(path) == []

    def test_name_mismatch(self, tmp_path):
        path = tmp_path / "renamed.json"
        path.write_text(json.dumps(
            {"name": "other", "created_unix": 1.0, "payload": {"a": 1}}
        ))
        errors = smoke.validate_artifact(path)
        assert any("name" in e for e in errors)

    def test_empty_payload_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps(
            {"name": "empty", "created_unix": 1.0, "payload": {}}
        ))
        assert smoke.validate_artifact(path)

    def test_unreadable_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        assert smoke.validate_artifact(path)

    def test_expected_artifacts_cover_known_benches(self):
        bench_dir = REPO_ROOT / "benchmarks"
        for bench_name in smoke.EXPECTED_ARTIFACTS:
            assert (bench_dir / bench_name).exists(), bench_name
