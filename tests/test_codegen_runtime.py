"""Direct tests for the generated-script runtime functions."""

import pytest

from repro.codegen import runtime
from repro.frame import DataFrame


@pytest.fixture
def df():
    return DataFrame.from_dict({
        "country": ["Bhutan", "Bhutan", "Lesotho", "Lesotho", "Nauru"],
        "income": [50000.0, "12k", None, 48000.0, 1000000.0],
    })


class TestDeleteRows:
    def test_delete_missing_in_group(self, df):
        out = runtime.delete_rows(
            df, column="income", condition="missing",
            where={"country": "Lesotho"},
        )
        assert out.n_rows == 4
        assert out["income"].n_missing == 0

    def test_delete_outliers_with_bounds(self, df):
        out = runtime.delete_rows(
            df, column="income", condition="outlier", where=None,
            low=0.0, high=100000.0,
        )
        assert out.n_rows == 4
        assert 1000000.0 not in out["income"].to_list()

    def test_delete_all_in_group(self, df):
        out = runtime.delete_rows(
            df, column="income", condition="all", where={"country": "Nauru"},
        )
        assert "Nauru" not in out["country"].to_list()

    def test_unknown_condition(self, df):
        with pytest.raises(ValueError, match="unknown condition"):
            runtime.delete_rows(df, column="income", condition="bad_vibes")

    def test_missing_group_filter(self, df):
        out = runtime.delete_rows(
            df.set_values("country", [4], None),
            column="income", condition="all", where={"country": None},
        )
        assert out.n_rows == 4


class TestImpute:
    def test_group_mean(self, df):
        out = runtime.impute(
            df, column="income", condition="missing",
            where={"country": "Lesotho"}, strategy="mean", scope="group",
        )
        assert out["income"][2] == 48000.0  # only numeric Lesotho value

    def test_constant(self, df):
        out = runtime.impute(
            df, column="income", condition="missing", where=None,
            strategy="constant", fill=0.0,
        )
        assert out["income"][2] == 0.0

    def test_no_targets_is_noop(self, df):
        out = runtime.impute(
            df, column="income", condition="missing",
            where={"country": "Nauru"},
        )
        assert out.to_rows() == df.to_rows()

    def test_unknown_strategy(self, df):
        with pytest.raises(ValueError, match="strategy"):
            runtime.impute(df, column="income", condition="missing",
                           strategy="vibes")


class TestConvertAndClip:
    def test_convert_types(self, df):
        out = runtime.convert_types(df, column="income")
        assert out["income"][1] == 12000.0

    def test_convert_unparseable_delete(self, df):
        dirty = df.set_values("income", [0], "garbage")
        out = runtime.convert_types(dirty, column="income", on_fail="delete")
        assert out.n_rows == 4

    def test_clip(self, df):
        out = runtime.clip_outliers(df, column="income", low=0.0, high=60000.0)
        assert out["income"][4] == 60000.0
        assert out["income"][0] == 50000.0

    def test_relabel(self, df):
        out = runtime.relabel_category(df, column="country", category="Nauru")
        assert out["country"].to_list().count("Other") == 1

    def test_set_cells(self, df):
        out = runtime.set_cells(df, column="income",
                                where={"country": "Bhutan"}, value=1.0)
        assert out["income"].to_list()[:2] == [1.0, 1.0]
