"""Tests for shared utilities and session configuration."""

import time

import pytest

from repro._util import Stopwatch, chunked, format_table
from repro.config import BuckarooConfig, DEFAULT_CONFIG


class TestChunked:
    def test_even_split(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_remainder(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_empty(self):
        assert list(chunked([], 3)) == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "n"], [["a", 1], ["longer", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or True for line in lines)
        assert "longer" in lines[3]

    def test_float_formatting(self):
        table = format_table(["x"], [[0.123456789]])
        assert "0.1235" in table


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.01


class TestConfig:
    def test_paper_defaults(self):
        config = BuckarooConfig()
        assert config.outlier_sigma == 2.0      # §3.1
        assert config.flush_interval == 3       # §3.2
        assert config.outlier_scope == "global"

    @pytest.mark.parametrize("kwargs", [
        {"outlier_sigma": 0},
        {"outlier_scope": "cosmic"},
        {"min_group_size": 0},
        {"flush_interval": 0},
        {"max_render_points": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BuckarooConfig(**kwargs)

    def test_with_overrides_validates(self):
        override = DEFAULT_CONFIG.with_overrides(outlier_sigma=3.0)
        assert override.outlier_sigma == 3.0
        assert DEFAULT_CONFIG.outlier_sigma == 2.0  # original untouched
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_overrides(flush_interval=-1)
