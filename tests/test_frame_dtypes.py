"""Unit tests for dtype inference and validation."""

import numpy as np
import pytest

from repro.frame import dtypes


class TestInferDtype:
    def test_integers(self):
        assert dtypes.infer_dtype([1, 2, 3]) == dtypes.INT64

    def test_integers_with_missing(self):
        assert dtypes.infer_dtype([1, None, 3]) == dtypes.INT64

    def test_floats(self):
        assert dtypes.infer_dtype([1.5, 2.0]) == dtypes.FLOAT64

    def test_int_float_mix_is_float(self):
        assert dtypes.infer_dtype([1, 2.5]) == dtypes.FLOAT64

    def test_strings(self):
        assert dtypes.infer_dtype(["a", "b"]) == dtypes.STRING

    def test_bools(self):
        assert dtypes.infer_dtype([True, False]) == dtypes.BOOL

    def test_numbers_and_strings_are_mixed(self):
        assert dtypes.infer_dtype([1, "12k"]) == dtypes.MIXED

    def test_bool_and_int_are_mixed(self):
        assert dtypes.infer_dtype([True, 2]) == dtypes.MIXED

    def test_all_missing_defaults_to_float(self):
        assert dtypes.infer_dtype([None, None]) == dtypes.FLOAT64

    def test_nan_counts_as_missing(self):
        assert dtypes.infer_dtype([float("nan"), 1]) == dtypes.INT64

    def test_numpy_scalars(self):
        assert dtypes.infer_dtype([np.int64(5), np.int64(6)]) == dtypes.INT64
        assert dtypes.infer_dtype([np.float64(5.5)]) == dtypes.FLOAT64

    def test_other_objects_are_mixed(self):
        assert dtypes.infer_dtype([object()]) == dtypes.MIXED


class TestValidation:
    def test_validate_accepts_all_known(self):
        for dtype in dtypes.ALL_DTYPES:
            assert dtypes.validate_dtype(dtype) == dtype

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            dtypes.validate_dtype("decimal")

    def test_storage_dtype_rejects_unknown(self):
        with pytest.raises(ValueError):
            dtypes.storage_dtype("decimal")

    def test_is_numeric(self):
        assert dtypes.is_numeric_dtype(dtypes.INT64)
        assert dtypes.is_numeric_dtype(dtypes.FLOAT64)
        assert not dtypes.is_numeric_dtype(dtypes.STRING)
        assert not dtypes.is_numeric_dtype(dtypes.MIXED)
