"""Fixture: registers a snapshot with no finally and no hand-off."""


def leaky_read(manager, table):
    snapshot = manager.read_snapshot()
    # an exception between here and the return leaks the snapshot and
    # pins the GC horizon — must fire snapshot-release
    rows = list(table.snapshot_scan(snapshot))
    manager.release(snapshot)
    return rows


def leaky_cursor(conn):
    # the streaming cursor holds a registered snapshot; nothing returns,
    # stores, hands off, or close()s it on a cleanup path — must fire
    cursor = conn.stream("SELECT * FROM t")
    first = cursor.fetchone()
    cursor.close()  # never reached if fetchone raises
    return first
