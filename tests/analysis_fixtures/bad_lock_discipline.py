"""Fixture: mutates protected MVCC structures with no lock and no marker."""


class Table:
    def __init__(self):
        self.rows = {}
        self.versions = {}
        self.lock = None

    def fast_insert(self, rowid, values):
        # unprotected write to rows — must fire lock-discipline
        self.rows[rowid] = values

    def forget(self, rowid):
        del self.versions[rowid]

    def reset(self):
        self.rows.clear()
