"""Fixture: lock-free reader touches versions before rows."""


def read_visible(table, rowid):
    # versions first, rows second, no lock — must fire publication-order
    chain = table.versions.get(rowid)
    current = table.rows.get(rowid)
    return chain or current
