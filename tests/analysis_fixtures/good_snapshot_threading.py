"""Fixture: the held snapshot is forwarded to every snapshot taker."""


def fetch_rows(table, snapshot):
    return list(table)


def scan(table, snapshot):
    return fetch_rows(table, snapshot)


def scan_kw(table, snapshot):
    return fetch_rows(table, snapshot=snapshot)


def unrelated(table):
    # holds no snapshot: allowed to call without one (callee may default)
    return len(table)
