"""Fixture: holds a snapshot but drops it when calling a snapshot taker."""


def fetch_rows(table, snapshot):
    return list(table)


def scan(table, snapshot):
    # drops the held snapshot — must fire snapshot-threading
    return fetch_rows(table)
