"""Fixture: readers touch rows first, or hold the lock, or are marked."""


def holds_write_lock(fn):
    return fn


def read_visible(table, rowid):
    current = table.rows.get(rowid)
    chain = table.versions.get(rowid)
    return chain or current


def read_locked(table, rowid):
    with table.lock:
        chain = table.versions.get(rowid)
        current = table.rows.get(rowid)
    return chain or current


@holds_write_lock
def read_serialized(table, rowid):
    chain = table.versions.get(rowid)
    return chain or table.rows.get(rowid)
