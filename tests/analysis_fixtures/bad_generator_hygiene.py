"""Fixture: executor operator materializes instead of streaming."""


def _exec_filter(node, params, snapshot, counters):
    # list comprehension drains the child — must fire generator-hygiene
    return [row for row in node.child if row[0] > 0]


def _project(node, params, snapshot, counters):
    return list(node.child)


_NODE_HANDLERS = {
    "Project": _project,
}
