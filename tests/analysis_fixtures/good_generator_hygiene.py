"""Fixture: operators yield, return generators, or defer to lazy helpers."""

from itertools import islice


def _exec_filter(node, params, snapshot, counters):
    for row in node.child:
        if row[0] > 0:
            yield row


def _exec_project(node, params, snapshot, counters):
    return (row[1:] for row in node.child)


def _limit_stream(rows, limit):
    return islice(rows, limit)


def _exec_limit(node, params, snapshot, counters):
    return _limit_stream(node.child, node.limit)


def _exec_sort(node, params, snapshot, counters):
    # blocking operator: materialization is deliberate and reviewed
    return sorted(node.child)  # minicheck: ignore[generator-hygiene]


_NODE_HANDLERS = {
    "Filter": _exec_filter,
    "Project": _exec_project,
    "Limit": _exec_limit,
    "Sort": _exec_sort,
}
