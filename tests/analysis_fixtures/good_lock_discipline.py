"""Fixture: every protected write is under the lock or behind the marker."""


def holds_write_lock(fn):
    return fn


class Table:
    def __init__(self):
        self.rows = {}
        self.versions = {}
        self.lock = None

    def locked_insert(self, rowid, values):
        with self.lock:
            self.rows[rowid] = values

    @holds_write_lock
    def marked_insert(self, rowid, values):
        self.rows[rowid] = values

    def caller(self, rowid, values):
        with self.lock:
            self.marked_insert(rowid, values)
