"""Fixture: durable mutation that never reaches a WAL log call."""


class Table:
    def __init__(self):
        self.rows = {}

    def silent_insert(self, rowid, values):
        # mutates durable state, no logging — must fire wal-coverage
        self.rows[rowid] = values
