"""Fixture: releases in a finally, or hands the obligation off."""


def safe_read(manager, table):
    snapshot = manager.read_snapshot()
    try:
        return list(table.snapshot_scan(snapshot))
    finally:
        manager.release(snapshot)


def read_context(manager, stream):
    # ownership transfer: the caller receives the release callback
    snapshot = manager.read_snapshot()
    return snapshot, lambda: manager.release(snapshot)


def forwards_obligation(rows, release):
    return wrap(rows, release=release)


def wrap(rows, release):
    try:
        return list(rows)
    finally:
        release()


def returns_cursor(conn):
    # ownership transfer: the caller receives the open cursor
    return conn.stream("SELECT * FROM t")


def tracks_cursor(conn, session):
    # hand-off: the session's tracking table owns the teardown
    cursor = conn.stream("SELECT * FROM t")
    return session.track_stream(cursor)


def stores_cursor(conn, registry, key):
    # object state: a cursor table discharged by the owner's close path
    cursor = conn.stream("SELECT * FROM t")
    registry[key] = cursor
    return cursor.fetchone()


def closes_cursor_in_finally(conn):
    cursor = conn.stream("SELECT * FROM t")
    try:
        return list(cursor)
    finally:
        cursor.close()


def consumes_cursor_inline(conn):
    # chained full consumption: exhaustion releases the snapshot
    return conn.stream("SELECT * FROM t").materialize()


def scoped_cursor(conn):
    with conn.stream("SELECT * FROM t") as cursor:
        return cursor.fetchone()
