"""Fixture: releases in a finally, or hands the obligation off."""


def safe_read(manager, table):
    snapshot = manager.read_snapshot()
    try:
        return list(table.snapshot_scan(snapshot))
    finally:
        manager.release(snapshot)


def read_context(manager, stream):
    # ownership transfer: the caller receives the release callback
    snapshot = manager.read_snapshot()
    return snapshot, lambda: manager.release(snapshot)


def forwards_obligation(rows, release):
    return wrap(rows, release=release)


def wrap(rows, release):
    try:
        return list(rows)
    finally:
        release()
