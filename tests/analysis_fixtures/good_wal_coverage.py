"""Fixture: mutations log, reach a logger through a callee, or are exempt."""


def wal_exempt(reason):
    def mark(fn):
        return fn
    return mark


class Table:
    def __init__(self):
        self.rows = {}
        self.wal = None

    def _notify(self, event):
        self.wal.log_event(event)

    def logged_insert(self, rowid, values):
        self.rows[rowid] = values
        self._notify(("insert", rowid, values))

    def chained_insert(self, rowid, values):
        self.rows[rowid] = values
        self.after_change(rowid)

    def after_change(self, rowid):
        self._notify(("touch", rowid))

    @wal_exempt("replay applies records already in the log")
    def replay_insert(self, rowid, values):
        self.rows[rowid] = values
