"""Unit tests for the SQL parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.minidb import ast_nodes as ast
from repro.minidb.parser import parse, parse_expression


class TestSelect:
    def test_minimal(self):
        stmt = parse("SELECT a FROM t")
        assert isinstance(stmt, ast.SelectStmt)
        assert stmt.table.name == "t"
        assert stmt.items[0].expr == ast.ColumnRef(None, "a")

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.items[0].is_star

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].star_table == "t"

    def test_alias_with_and_without_as(self):
        stmt = parse("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_case_insensitive_keywords(self):
        stmt = parse("select a from t where a > 1 order by a desc limit 5")
        assert stmt.limit == ast.Literal(5)
        assert not stmt.order_by[0].ascending

    def test_where_params(self):
        stmt = parse("SELECT a FROM t WHERE a = ? AND b = ?")
        params = [n for n in ast.walk(stmt.where) if isinstance(n, ast.Param)]
        assert [p.index for p in params] == [0, 1]

    def test_group_by_having(self):
        stmt = parse("SELECT c, COUNT(*) FROM t GROUP BY c HAVING COUNT(*) > 2")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_joins(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON a.x = c.z")
        assert [j.kind for j in stmt.joins] == ["INNER", "LEFT"]
        assert stmt.joins[0].table.name == "b"

    def test_limit_offset(self):
        stmt = parse("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == ast.Literal(10)
        assert stmt.offset == ast.Literal(5)

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_no_from(self):
        stmt = parse("SELECT 1 + 1")
        assert stmt.table is None


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == ast.Binary("+", ast.Literal(1),
                                  ast.Binary("*", ast.Literal(2), ast.Literal(3)))

    def test_precedence_logic(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, ast.Binary) and expr.op == "OR"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between) and not expr.negated

    def test_not_between(self):
        assert parse_expression("x NOT BETWEEN 1 AND 10").negated

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, ast.InList) and len(expr.items) == 3

    def test_is_null(self):
        assert parse_expression("x IS NULL") == ast.IsNull(ast.ColumnRef(None, "x"))
        assert parse_expression("x IS NOT NULL").negated

    def test_like(self):
        expr = parse_expression("name LIKE 'bhu%'")
        assert isinstance(expr, ast.Like)

    def test_not_equal_normalized(self):
        assert parse_expression("a != 1").op == "<>"
        assert parse_expression("a == 1").op == "="

    def test_unary_minus(self):
        assert parse_expression("-x") == ast.Unary("-", ast.ColumnRef(None, "x"))

    def test_function_call(self):
        expr = parse_expression("COALESCE(a, 0)")
        assert expr == ast.FuncCall("COALESCE", (ast.ColumnRef(None, "a"), ast.Literal(0)))

    def test_count_star(self):
        assert parse_expression("COUNT(*)").is_star

    def test_count_distinct(self):
        assert parse_expression("COUNT(DISTINCT a)").distinct

    def test_scalar_min_renamed(self):
        assert parse_expression("MIN(a, b)").name == "MIN_OF"
        assert parse_expression("MIN(a)").name == "MIN"

    def test_cast(self):
        expr = parse_expression("CAST(a AS REAL)")
        assert isinstance(expr, ast.Cast) and expr.type_name == "REAL"

    def test_case_searched(self):
        expr = parse_expression("CASE WHEN a > 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, ast.Case) and expr.operand is None

    def test_case_with_operand(self):
        expr = parse_expression("CASE a WHEN 1 THEN 'x' END")
        assert expr.operand == ast.ColumnRef(None, "a")

    def test_null_true_false_literals(self):
        assert parse_expression("NULL") == ast.Literal(None)
        assert parse_expression("TRUE") == ast.Literal(1)
        assert parse_expression("FALSE") == ast.Literal(0)

    def test_string_concat(self):
        assert parse_expression("a || 'x'").op == "||"

    def test_qualified_column(self):
        assert parse_expression("t.a") == ast.ColumnRef("t", "a")


class TestOtherStatements:
    def test_insert(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        assert parse("INSERT INTO t VALUES (1)").columns == ()

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a IS NULL")
        assert stmt.table == "t"

    def test_create_table(self):
        stmt = parse("CREATE TABLE t (a INT, b VARCHAR(20), c DOUBLE PRECISION)")
        assert [c.name for c in stmt.columns] == ["a", "b", "c"]
        assert stmt.columns[2].type_name == "DOUBLE PRECISION"

    def test_create_table_if_not_exists(self):
        assert parse("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists

    def test_create_index(self):
        stmt = parse("CREATE INDEX i ON t (a)")
        assert stmt.kind == "btree" and not stmt.unique

    def test_create_unique_hash_index(self):
        stmt = parse("CREATE UNIQUE INDEX i ON t (a) USING hash")
        assert stmt.kind == "hash" and stmt.unique

    def test_drop(self):
        assert parse("DROP TABLE IF EXISTS t").if_exists
        assert parse("DROP INDEX i").name == "i"

    def test_alter(self):
        stmt = parse("ALTER TABLE t ADD COLUMN z REAL")
        assert stmt.column.name == "z"

    def test_transaction_statements(self):
        assert isinstance(parse("BEGIN"), ast.BeginStmt)
        assert isinstance(parse("BEGIN TRANSACTION"), ast.BeginStmt)
        assert isinstance(parse("COMMIT"), ast.CommitStmt)
        assert isinstance(parse("ROLLBACK"), ast.RollbackStmt)

    def test_explain(self):
        stmt = parse("EXPLAIN SELECT a FROM t")
        assert isinstance(stmt, ast.ExplainStmt)

    def test_trailing_semicolon_ok(self):
        parse("SELECT 1;")


class TestSyntaxErrors:
    @pytest.mark.parametrize("sql", [
        "SELECT",
        "SELECT a FROM",
        "INSERT t VALUES (1)",
        "UPDATE t a = 1",
        "SELECT a FROM t WHERE",
        "CREATE t (a INT)",
        "SELECT a FROM t garbage garbage",
        "CASE WHEN 1 THEN 2",
        "FOO BAR",
    ])
    def test_rejects(self, sql):
        with pytest.raises(SQLSyntaxError):
            parse(sql)

    def test_dangling_not(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("a NOT 5")
