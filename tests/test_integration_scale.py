"""Medium-scale integration: the full workflow on generated datasets.

Exercises the complete pipeline (load, group, detect, suggest, apply,
undo, export, re-execute) on a few hundred generated rows, asserting
cross-backend equivalence and codegen fidelity — the closest thing to the
paper's end-to-end deployment story that runs in CI time.
"""

import pytest

from repro.codegen import generate_script
from repro.core.session import BuckarooSession
from repro.core.types import ERROR_SMALL_GROUP
from repro.datasets import load_dataset
from repro.ui import BuckarooApp, events

CATS = ["country", "ed_level"]
NUMS = ["converted_comp_yearly", "years_code"]


def build_session(backend: str) -> BuckarooSession:
    frame, _truth = load_dataset("stackoverflow", scale=0.01, seed=23)
    session = BuckarooSession.from_frame(frame, backend=backend)
    session.generate_groups(cat_cols=CATS, num_cols=NUMS)
    session.detect()
    return session


class TestCrossBackendAtScale:
    def test_identical_detection(self):
        sql = build_session("sql")
        frame = build_session("frame")
        sql_counts = {e.code: e.count for e in sql.anomaly_summary().error_types}
        frame_counts = {
            e.code: e.count for e in frame.anomaly_summary().error_types
        }
        assert sql_counts == frame_counts
        assert sql_counts  # the injector guarantees anomalies exist

    def test_identical_final_tables_after_pipeline(self):
        outcomes = {}
        for backend in ("sql", "frame"):
            session = build_session(backend)
            applied = 0
            while applied < 4:
                groups = session.anomaly_summary().groups
                if not groups:
                    break
                target = next(
                    (g for g in groups if g.dominant_code != ERROR_SMALL_GROUP),
                    groups[0],
                )
                suggestions = session.suggest(target.key, limit=1,
                                              score_plans=False)
                if not suggestions:
                    break
                session.apply(suggestions[0])
                applied += 1
            outcomes[backend] = (
                session.backend.to_frame().to_rows(),
                session.anomaly_summary().total,
            )
        sql_rows, sql_total = outcomes["sql"]
        frame_rows, frame_total = outcomes["frame"]
        assert sorted(map(repr, sql_rows)) == sorted(map(repr, frame_rows))
        assert sql_total == frame_total


class TestScriptFidelityAtScale:
    @pytest.mark.parametrize("backend", ["sql", "frame"])
    def test_exported_script_reproduces_final_table(self, backend):
        frame, _truth = load_dataset("stackoverflow", scale=0.01, seed=29)
        session = BuckarooSession.from_frame(frame, backend=backend)
        session.generate_groups(cat_cols=CATS, num_cols=NUMS)
        session.detect()
        for _ in range(3):
            groups = session.anomaly_summary().groups
            if not groups:
                break
            target = next(
                (g for g in groups if g.dominant_code != ERROR_SMALL_GROUP),
                groups[0],
            )
            suggestions = session.suggest(target.key, limit=1, score_plans=False)
            if not suggestions:
                break
            session.apply(suggestions[0])
        script = generate_script(session.history.records(), target="python")
        namespace: dict = {"__name__": "generated"}
        exec(compile(script, "<generated>", "exec"), namespace)
        regenerated = namespace["wrangle"](frame)
        assert regenerated.to_rows() == session.backend.to_frame().to_rows()


class TestFailureInjection:
    def test_failing_custom_wrangler_leaves_no_partial_state(self):
        session = build_session("sql")
        worst = session.anomaly_summary().groups[0].key
        state_before = {
            row_id: session.backend.row(row_id)
            for row_id in session.backend.all_row_ids()
        }

        class ExplodingOp:
            """Duck-typed op whose row access fails mid-plan."""

            kind = "delete_rows"
            row_ids = (99999999,)  # nonexistent row -> backend raises later?

        # a two-op plan whose second op raises: first op must be rolled back
        from repro.core.types import OP_DELETE_ROWS, OP_SET_CELLS, PlanOp, RepairPlan
        from repro.errors import ReproError

        group = session.group(worst)
        victim = group.row_ids[0]
        bad_plan = RepairPlan(
            wrangler_code="custom",
            group_key=worst,
            error_code=None,
            ops=[
                PlanOp(OP_DELETE_ROWS, (victim,)),
                PlanOp(OP_SET_CELLS, (victim,), column="nonexistent_column",
                       value=1),
            ],
            description="doomed plan",
        )
        with pytest.raises(Exception):
            session.apply(bad_plan)
        state_after = {
            row_id: session.backend.row(row_id)
            for row_id in session.backend.all_row_ids()
        }
        assert state_after == state_before
        assert not session.history.can_undo  # nothing was committed

    def test_full_ui_session_remains_usable_after_failure(self):
        app = BuckarooApp(build_session("sql"))
        worst = app.session.anomaly_summary().groups[0].key
        suggestions = app.handle(events.RequestSuggestions(worst, limit=2))
        assert suggestions
        result = app.handle(events.ApplyRepair(suggestions[0].rank))
        assert result.rows_affected >= 0
        app.handle(events.Undo())
