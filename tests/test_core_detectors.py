"""Unit tests for built-in and custom detectors."""

import pytest

from repro.backends import make_backend
from repro.config import BuckarooConfig
from repro.core.detectors import (
    DetectionContext,
    DetectorRegistry,
    MissingValueDetector,
    OutlierDetector,
    SmallGroupDetector,
    TypeMismatchDetector,
)
from repro.core.types import (
    ERROR_MISSING,
    ERROR_OUTLIER,
    ERROR_SMALL_GROUP,
    ERROR_TYPE_MISMATCH,
    Group,
    GroupKey,
)
from repro.errors import DetectorError, UnknownErrorCodeError
from repro.frame import DataFrame

from tests.test_backends import COLUMNS, ROWS


@pytest.fixture(params=["sql", "frame"])
def ctx(request):
    backend = make_backend(DataFrame.from_rows(ROWS, COLUMNS), request.param)
    return DetectionContext(backend, BuckarooConfig(min_group_size=2))


def group_of(ctx, cat, category, num) -> Group:
    key = GroupKey(cat, category, num)
    return Group(key, tuple(ctx.backend.group_row_ids(cat, category)))


class TestMissing:
    def test_detects_null_cells(self, ctx):
        group = group_of(ctx, "country", "Lesotho", "income")
        anomalies = MissingValueDetector().detect(ctx, group)
        assert [a.row_id for a in anomalies] == [6]
        assert anomalies[0].error_code == ERROR_MISSING
        assert anomalies[0].column == "income"

    def test_clean_group(self, ctx):
        group = group_of(ctx, "country", "Nauru", "income")
        assert MissingValueDetector().detect(ctx, group) == []


class TestOutlier:
    def test_global_scope(self, ctx):
        group = group_of(ctx, "country", "Bhutan", "income")
        anomalies = OutlierDetector().detect(ctx, group)
        assert [a.row_id for a in anomalies] == [4]
        assert anomalies[0].value == 1000000.0
        assert "global scope" in anomalies[0].detail

    def test_group_scope_changes_result(self, ctx):
        """A value may be an outlier in one scope but not another (§1)."""
        ctx.config = BuckarooConfig(outlier_scope="group", outlier_sigma=2.0,
                                    min_group_size=2)
        group = group_of(ctx, "country", "Lesotho", "income")
        anomalies = OutlierDetector().detect(ctx, group)
        assert anomalies == []  # 72000 is fine among Lesotho incomes

    def test_no_spread_no_outliers(self, ctx):
        group = group_of(ctx, "country", "Nauru", "income")
        ctx.config = BuckarooConfig(outlier_scope="group", min_group_size=2)
        assert OutlierDetector().detect(ctx, group) == []

    def test_stats_cached_globally(self, ctx):
        first = ctx.global_stats("income")
        second = ctx.global_stats("income")
        assert first is second
        ctx.invalidate_stats(["income"])
        assert ctx.global_stats("income") is not first


class TestTypeMismatch:
    def test_detects_text_in_numeric_column(self, ctx):
        group = group_of(ctx, "degree", "BS", "income")
        anomalies = TypeMismatchDetector().detect(ctx, group)
        assert [a.row_id for a in anomalies] == [3]
        assert anomalies[0].value == "12k"
        assert anomalies[0].error_code == ERROR_TYPE_MISMATCH


class TestSmallGroup:
    def test_flags_undersized_groups(self, ctx):
        group = group_of(ctx, "country", "Nauru", "income")
        anomalies = SmallGroupDetector().detect(ctx, group)
        assert len(anomalies) == 1
        assert anomalies[0].error_code == ERROR_SMALL_GROUP
        assert "minimum 2" in anomalies[0].detail

    def test_ok_groups_pass(self, ctx):
        group = group_of(ctx, "country", "Bhutan", "income")
        assert SmallGroupDetector().detect(ctx, group) == []


class TestRegistry:
    def test_builtins_registered(self):
        registry = DetectorRegistry()
        assert set(registry.codes()) >= {
            ERROR_MISSING, ERROR_OUTLIER, ERROR_TYPE_MISMATCH, ERROR_SMALL_GROUP,
        }

    def test_unknown_code(self):
        with pytest.raises(UnknownErrorCodeError):
            DetectorRegistry().get("nope")

    def test_register_function_detector(self, ctx):
        registry = DetectorRegistry()

        def negative_income(df=None, target_column="", error_type_code=""):
            return [
                df["_row_id"][i]
                for i in range(df.n_rows)
                if isinstance(df[target_column][i], (int, float))
                and df[target_column][i] is not None
                and df[target_column][i] < 0
            ]

        registry.register_function("negative_income", negative_income)
        ctx.backend.set_cells("income", [7], -5.0)
        group = group_of(ctx, "country", "Lesotho", "income")
        anomalies = registry.get("negative_income").detect(ctx, group)
        assert [a.row_id for a in anomalies] == [7]
        assert anomalies[0].error_code == "negative_income"

    def test_function_detector_scoped_to_group(self, ctx):
        registry = DetectorRegistry()
        registry.register_function("everything", lambda df=None, target_column="",
                                   error_type_code="": [1, 2, 3, 4, 5, 6, 7, 8, 9])
        group = group_of(ctx, "country", "Nauru", "income")
        anomalies = registry.get("everything").detect(ctx, group)
        assert [a.row_id for a in anomalies] == [9]  # only the group's row

    def test_function_detector_with_sql_hook(self, ctx):
        if ctx.backend.kind != "sql":
            pytest.skip("sql hook only exists on the SQL backend")
        registry = DetectorRegistry()

        def detector(df=None, target_column="", error_type_code="", sql=None):
            # the paper's listing pattern: run a query, return row ids
            # (typeof guard keeps text values out of the numeric comparison)
            return sql(
                f'SELECT rowid FROM data WHERE "{target_column}" > 900000 '
                f'AND typeof("{target_column}") <> \'text\''
            )

        registry.register_function("huge_income", detector)
        group = group_of(ctx, "country", "Bhutan", "income")
        anomalies = registry.get("huge_income").detect(ctx, group)
        assert [a.row_id for a in anomalies] == [4]

    def test_failing_detector_wrapped(self, ctx):
        registry = DetectorRegistry()
        registry.register_function("boom", lambda **kwargs: 1 / 0)
        group = group_of(ctx, "country", "Nauru", "income")
        with pytest.raises(DetectorError, match="boom"):
            registry.get("boom").detect(ctx, group)

    def test_unregister_custom_only(self):
        registry = DetectorRegistry()
        registry.register_function("x", lambda **kwargs: [])
        registry.unregister("x")
        assert "x" not in registry.codes()
        with pytest.raises(DetectorError):
            registry.unregister(ERROR_MISSING)
