"""Shared fixtures: a small dirty dataset in both frame and database form.

The data mirrors the paper's motivating example (Figure 1): income values
grouped by country and degree, contaminated with an outlier, a missing
value, a type mismatch ("12k") and an undersized group.
"""

from __future__ import annotations

import pytest

from repro.frame import DataFrame
from repro.minidb import Database

DIRTY_ROWS = [
    # (country, degree, income, age)
    ("Bhutan", "BS", 50000.0, 34),
    ("Bhutan", "MS", 61000.0, 29),
    ("Bhutan", "BS", "12k", 41),       # type mismatch
    ("Bhutan", "PhD", 1000000.0, 38),  # outlier
    ("Lesotho", "PhD", 72000.0, 35),
    ("Lesotho", "BS", None, 52),       # missing
    ("Lesotho", "MS", 48000.0, 44),
    ("Lesotho", "BS", 55000.0, 31),
    ("Nauru", "BS", 51000.0, 27),      # 'Nauru' is an undersized group
]

DIRTY_COLUMNS = ["country", "degree", "income", "age"]


@pytest.fixture
def dirty_frame() -> DataFrame:
    """The motivating-example dataset as a DataFrame."""
    return DataFrame.from_rows(DIRTY_ROWS, DIRTY_COLUMNS)


@pytest.fixture
def dirty_db() -> Database:
    """The motivating-example dataset loaded into minidb, with indexes."""
    db = Database()
    db.execute(
        "CREATE TABLE salary (country TEXT, degree TEXT, income REAL, age INT)"
    )
    db.executemany("INSERT INTO salary VALUES (?, ?, ?, ?)", DIRTY_ROWS)
    db.execute("CREATE INDEX idx_salary_country ON salary(country) USING hash")
    db.execute("CREATE INDEX idx_salary_degree ON salary(degree) USING hash")
    db.execute("CREATE INDEX idx_salary_income ON salary(income)")
    return db
