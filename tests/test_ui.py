"""Tests for the headless UI: app, repair kit, summary, protocol server."""

import json

import pytest

from repro.config import BuckarooConfig
from repro.core.session import BuckarooSession
from repro.core.types import GroupKey
from repro.errors import BuckarooError
from repro.frame import DataFrame
from repro.ui import BuckarooApp, BuckarooServer, events
from repro.ui.protocol import decode_group_key, decode_request, encode_group_key

from tests.test_backends import COLUMNS, ROWS

BHUTAN = GroupKey("country", "Bhutan", "income")


def make_app(backend="sql", drilldown=None) -> BuckarooApp:
    session = BuckarooSession.from_frame(
        DataFrame.from_rows(ROWS, COLUMNS), backend=backend,
        config=BuckarooConfig(min_group_size=2),
    )
    session.generate_groups(cat_cols=["country", "degree"],
                            num_cols=["income", "age"])
    session.detect()
    return BuckarooApp(session, drilldown_hierarchy=drilldown)


class TestApp:
    def test_auto_setup_when_session_fresh(self):
        session = BuckarooSession.from_frame(
            DataFrame.from_rows(ROWS, COLUMNS), backend="frame",
        )
        app = BuckarooApp(session)
        assert session.groups()
        assert len(app.matrix) > 0

    def test_select_then_suggest_then_apply(self):
        app = make_app()
        app.handle(events.SelectGroup(BHUTAN))
        assert app.selection.selected == BHUTAN
        suggestions = app.handle(events.RequestSuggestions(BHUTAN, limit=3))
        assert suggestions and app.repair_kit.is_open
        preview = app.handle(events.PreviewRepair(1))
        assert preview.before.categories
        result = app.handle(events.ApplyRepair(1))
        assert result.rows_affected > 0
        assert not app.repair_kit.is_open
        assert app.selection.selected is None

    def test_undo_redo_events(self):
        app = make_app()
        app.handle(events.RequestSuggestions(BHUTAN, limit=1))
        app.handle(events.ApplyRepair(1))
        rows_after = app.session.backend.row_count()
        app.handle(events.Undo())
        assert app.session.backend.row_count() >= rows_after
        app.handle(events.Redo())
        assert app.session.backend.row_count() == rows_after

    def test_export_script_event(self):
        app = make_app()
        script = app.handle(events.ExportScript())
        assert "def wrangle" in script

    def test_drilldown_events(self):
        app = make_app(drilldown=["country", "degree"])
        view = app.handle(events.DrillDown("Bhutan"))
        assert view.column == "degree"
        row_id = app.drilldown.visible_row_ids(limit=1)[0]
        refreshed, seconds = app.handle(events.RemoveVisibleRow(row_id))
        assert seconds > 0
        assert sum(n for _, n in refreshed.bars) == 3
        app.handle(events.RollUp())

    def test_drilldown_requires_sql_backend(self):
        with pytest.raises(BuckarooError, match="SQL backend"):
            make_app(backend="frame", drilldown=["country"])

    def test_drilldown_unconfigured(self):
        app = make_app()
        with pytest.raises(BuckarooError, match="drill-down"):
            app.handle(events.DrillDown("Bhutan"))

    def test_unknown_event(self):
        app = make_app()
        with pytest.raises(BuckarooError, match="unknown event"):
            app.handle(object())

    def test_summary_and_chart_text(self):
        app = make_app()
        assert "Anomaly Summary" in app.summary_text()
        assert "Bhutan" in app.chart_text("country", "income")

    def test_event_log_records_everything(self):
        app = make_app()
        app.handle(events.SelectGroup(BHUTAN))
        app.handle(events.ExportScript())
        assert len(app.event_log) == 2


class TestRepairKit:
    def test_rank_resolution(self):
        app = make_app()
        app.repair_kit.open_for(BHUTAN, limit=3)
        first = app.repair_kit.suggestion(1)
        assert first.rank == 1
        with pytest.raises(BuckarooError, match="no suggestion"):
            app.repair_kit.suggestion(99)

    def test_describe_lines(self):
        app = make_app()
        app.repair_kit.open_for(BHUTAN, limit=2)
        lines = app.repair_kit.describe()
        assert len(lines) == 2
        assert lines[0].startswith("1.")


class TestProtocol:
    def test_group_key_roundtrip(self):
        payload = encode_group_key(BHUTAN)
        assert decode_group_key(payload) == BHUTAN

    def test_malformed_key(self):
        with pytest.raises(BuckarooError):
            decode_group_key({"categorical": "x"})

    def test_decode_known_requests(self):
        kind, event = decode_request(json.dumps({
            "type": "select_group", "key": encode_group_key(BHUTAN),
        }))
        assert kind == "select_group"
        assert event.key == BHUTAN

    def test_decode_rejects_unknown(self):
        with pytest.raises(BuckarooError, match="unknown request"):
            decode_request(json.dumps({"type": "rm -rf"}))
        with pytest.raises(BuckarooError, match="not valid JSON"):
            decode_request("{nope")


class TestServer:
    @pytest.fixture
    def server(self):
        return BuckarooServer(make_app(drilldown=["country", "degree"]))

    def _call(self, server, message: dict) -> dict:
        return json.loads(server.handle_request(json.dumps(message)))

    def test_summary_roundtrip(self, server):
        response = self._call(server, {"type": "summary", "limit": 3})
        assert response["ok"]
        assert "Anomaly Summary" in response["payload"][0]

    def test_full_wrangling_round_trip(self, server):
        response = self._call(server, {
            "type": "request_suggestions",
            "key": encode_group_key(BHUTAN), "limit": 2,
        })
        assert response["ok"] and len(response["payload"]) == 2
        applied = self._call(server, {"type": "apply_repair", "rank": 1})
        assert applied["ok"]
        assert applied["payload"]["rows_affected"] > 0
        undone = self._call(server, {"type": "undo"})
        assert undone["ok"]

    def test_drill_down_round_trip(self, server):
        response = self._call(server, {"type": "drill_down", "category": "Bhutan"})
        assert response["ok"]
        assert response["payload"]["bars"]

    def test_errors_reported_not_raised(self, server):
        response = self._call(server, {"type": "apply_repair", "rank": 42})
        assert not response["ok"]
        assert "no suggestion" in response["error"]["message"]

    def test_chart_query(self, server):
        response = self._call(server, {
            "type": "chart", "cat": "country", "num": "income",
        })
        assert response["ok"]
        assert "Bhutan" in response["payload"]

    def test_request_counter(self, server):
        self._call(server, {"type": "summary"})
        self._call(server, {"type": "rubbish"})
        assert server.requests_served == 1  # failures not counted
