"""MVCC snapshot isolation, the connection/session layer, and WAL recovery.

Covers the ISSUE 5 acceptance criteria end to end: repeatable snapshot
reads across concurrent connections (heap scans, index probes, ordered
walks, streaming cursors), first-updater- and first-committer-wins
write-write conflicts, statement-level atomicity, transactional WAL
commit records with committed-only replay, the DDL-in-transaction guard,
and garbage collection back to the quiescent fast path.
"""

import pytest

from repro.errors import (
    DatabaseError,
    IntegrityError,
    SerializationError,
    TransactionError,
)
from repro.minidb import Connection, Database, WriteAheadLog


@pytest.fixture
def db() -> Database:
    db = Database()
    db.execute("CREATE TABLE t (k INT, v REAL, tag TEXT)")
    db.executemany(
        "INSERT INTO t VALUES (?, ?, ?)",
        [(i, float(i * 10), "tag%d" % (i % 3)) for i in range(10)],
    )
    db.execute("CREATE INDEX idx_k ON t(k)")
    db.execute("CREATE INDEX idx_tag ON t(tag) USING hash")
    return db


class TestConnectionAPI:
    def test_connect_returns_isolated_connection(self, db):
        conn = db.connect()
        assert isinstance(conn, Connection)
        assert not conn.in_transaction
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 10
        conn.close()
        assert conn.closed

    def test_cursor_is_pep249_shaped(self, db):
        with db.connect() as conn:
            cur = conn.cursor()
            cur.execute("SELECT k, v FROM t WHERE k < ?", (2,))
            assert [d[0] for d in cur.description] == ["k", "v"]
            assert cur.fetchone() == (0, 0.0)
            assert cur.fetchall() == [(1, 10.0)]

    def test_commit_rollback_methods(self, db):
        conn = db.connect()
        conn.begin()
        conn.execute("DELETE FROM t WHERE k >= 5")
        conn.rollback()
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 10
        conn.begin()
        conn.execute("DELETE FROM t WHERE k >= 5")
        conn.commit()
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 5
        conn.close()

    def test_commit_without_transaction_is_noop(self, db):
        conn = db.connect()
        conn.commit()  # PEP 249: no error
        conn.rollback()
        conn.close()

    def test_sql_level_stray_commit_still_strict(self, db):
        with db.connect() as conn:
            with pytest.raises(TransactionError):
                conn.execute("COMMIT")

    def test_closed_connection_rejects_statements(self, db):
        conn = db.connect()
        conn.close()
        with pytest.raises(DatabaseError, match="closed"):
            conn.execute("SELECT 1")
        conn.close()  # idempotent

    def test_context_manager_commits_on_clean_exit(self, db):
        with db.connect() as conn:
            conn.execute("BEGIN")
            conn.execute("INSERT INTO t VALUES (99, 990.0, 'x')")
        assert db.execute("SELECT COUNT(*) FROM t WHERE k = 99").scalar() == 1

    def test_context_manager_rolls_back_on_error(self, db):
        with pytest.raises(RuntimeError):
            with db.connect() as conn:
                conn.execute("BEGIN")
                conn.execute("INSERT INTO t VALUES (99, 990.0, 'x')")
                raise RuntimeError("boom")
        assert db.execute("SELECT COUNT(*) FROM t WHERE k = 99").scalar() == 0

    def test_close_rolls_back_open_transaction(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("DELETE FROM t")
        conn.close()
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 10

    def test_autocommit_outside_explicit_transaction(self, db):
        a, b = db.connect(), db.connect()
        a.execute("UPDATE t SET v = -1 WHERE k = 0")
        # no COMMIT needed: the other connection sees it immediately
        assert b.execute("SELECT v FROM t WHERE k = 0").scalar() == -1
        a.close()
        b.close()

    def test_prepared_statements_shared_across_connections(self, db):
        a, b = db.connect(), db.connect()
        assert a.prepare("SELECT v FROM t WHERE k = ?") is b.prepare(
            "SELECT v FROM t WHERE k = ?"
        )
        assert a.execute("SELECT v FROM t WHERE k = ?", (3,)).scalar() == 30.0
        assert b.execute("SELECT v FROM t WHERE k = ?", (4,)).scalar() == 40.0
        a.close()
        b.close()


class TestSnapshotIsolation:
    def test_repeatable_reads_across_concurrent_commit(self, db):
        reader, writer = db.connect(), db.connect()
        reader.execute("BEGIN")
        before = reader.execute("SELECT v FROM t WHERE k = 1").scalar()
        writer.execute("UPDATE t SET v = 9999 WHERE k = 1")
        assert reader.execute("SELECT v FROM t WHERE k = 1").scalar() == before
        reader.commit()
        assert reader.execute("SELECT v FROM t WHERE k = 1").scalar() == 9999
        reader.close()
        writer.close()

    def test_no_dirty_reads(self, db):
        reader, writer = db.connect(), db.connect()
        writer.execute("BEGIN")
        writer.execute("UPDATE t SET v = -5 WHERE k = 2")
        writer.execute("INSERT INTO t VALUES (50, 500.0, 'new')")
        assert reader.execute("SELECT v FROM t WHERE k = 2").scalar() == 20.0
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 10
        writer.commit()
        assert reader.execute("SELECT v FROM t WHERE k = 2").scalar() == -5
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 11
        reader.close()
        writer.close()

    def test_snapshot_covers_deletes(self, db):
        reader, writer = db.connect(), db.connect()
        reader.execute("BEGIN")
        writer.execute("DELETE FROM t WHERE k >= 5")
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 10
        assert sorted(
            reader.execute("SELECT k FROM t WHERE k >= 5").scalars()
        ) == [5, 6, 7, 8, 9]
        reader.commit()
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 5
        reader.close()
        writer.close()

    def test_index_probes_read_through_snapshot(self, db):
        """EQ probes, hash probes, ranges and ordered walks all resolve
        version chains — a concurrently moved row is still found under
        its old key, and not duplicated under its new one."""
        reader, writer = db.connect(), db.connect()
        reader.execute("BEGIN")
        eq = reader.execute("SELECT v FROM t WHERE k = 3").scalars()
        tag = sorted(reader.execute("SELECT k FROM t WHERE tag = 'tag0'").scalars())
        rng = sorted(reader.execute(
            "SELECT k FROM t WHERE k >= 2 AND k <= 6").scalars())
        ordered = reader.execute("SELECT k FROM t ORDER BY k DESC LIMIT 4").scalars()
        writer.execute("UPDATE t SET k = k + 100, tag = 'moved' WHERE k = 3")
        writer.execute("DELETE FROM t WHERE k = 6")
        assert reader.execute("SELECT v FROM t WHERE k = 3").scalars() == eq
        assert sorted(
            reader.execute("SELECT k FROM t WHERE tag = 'tag0'").scalars()
        ) == tag
        assert sorted(reader.execute(
            "SELECT k FROM t WHERE k >= 2 AND k <= 6").scalars()) == rng
        assert reader.execute(
            "SELECT k FROM t ORDER BY k DESC LIMIT 4").scalars() == ordered
        # and no phantom under the new key
        assert reader.execute("SELECT COUNT(*) FROM t WHERE k = 103").scalar() == 0
        reader.commit()
        assert reader.execute("SELECT COUNT(*) FROM t WHERE k = 103").scalar() == 1
        reader.close()
        writer.close()

    def test_aggregates_read_through_snapshot(self, db):
        reader, writer = db.connect(), db.connect()
        reader.execute("BEGIN")
        total = reader.execute("SELECT SUM(v) FROM t").scalar()
        writer.execute("UPDATE t SET v = v * 10")
        assert reader.execute("SELECT SUM(v) FROM t").scalar() == total
        reader.commit()
        assert reader.execute("SELECT SUM(v) FROM t").scalar() == total * 10
        reader.close()
        writer.close()

    def test_own_writes_visible_inside_transaction(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("UPDATE t SET v = 1234 WHERE k = 0")
        assert conn.execute("SELECT v FROM t WHERE k = 0").scalar() == 1234
        conn.execute("DELETE FROM t WHERE k = 1")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 9
        conn.rollback()
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 10
        assert conn.execute("SELECT v FROM t WHERE k = 0").scalar() == 0.0
        conn.close()


class TestStreamingCursor:
    def test_open_cursor_survives_same_session_dml(self, db):
        """The retired hazard: a streaming SELECT on the plain Database
        surface keeps yielding its snapshot while the same session
        updates and deletes underneath it."""
        cursor = db.stream("SELECT k, v, tag FROM t ORDER BY k")
        first = cursor.fetchone()
        db.execute("UPDATE t SET v = -1, tag = 'gone' WHERE k < 5")
        db.execute("DELETE FROM t WHERE k >= 5")
        rows = [first] + list(cursor)
        assert [row[0] for row in rows] == list(range(10))
        assert all(row[1] == row[0] * 10.0 for row in rows)
        assert all(row[2].startswith("tag") for row in rows)
        # the mutations themselves did land
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 5

    def test_open_cursor_survives_concurrent_commit(self, db):
        reader, writer = db.connect(), db.connect()
        cursor = reader.stream("SELECT k FROM t ORDER BY k")
        assert cursor.fetchone() == (0,)
        writer.execute("DELETE FROM t")
        assert [row[0] for row in cursor] == list(range(1, 10))
        reader.close()
        writer.close()

    def test_indexed_stream_consistent_under_interleaved_update(self, db):
        cursor = db.stream("SELECT k FROM t WHERE k >= 0 ORDER BY k")
        got = [cursor.fetchone()[0], cursor.fetchone()[0]]
        db.execute("UPDATE t SET k = k + 1000")  # moves every index key
        got.extend(row[0] for row in cursor)
        assert got == list(range(10))

    def test_stream_in_transaction_survives_commit(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        cursor = conn.stream("SELECT k FROM t ORDER BY k")
        assert cursor.fetchone() == (0,)
        conn.commit()
        db.execute("DELETE FROM t")
        assert [row[0] for row in cursor] == list(range(1, 10))
        conn.close()

    def test_closing_cursor_releases_snapshot(self, db):
        cursor = db.stream("SELECT k FROM t")
        assert cursor.fetchone() is not None
        assert db.txn.outstanding_snapshots == 1
        cursor.close()
        assert db.txn.outstanding_snapshots == 0
        db.maybe_gc()
        assert not db.mvcc_engaged()


class TestWriteConflicts:
    def test_first_updater_wins(self, db):
        a, b = db.connect(), db.connect()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE k = 4")
        with pytest.raises(SerializationError):
            b.execute("UPDATE t SET v = 2 WHERE k = 4")
        b.rollback()
        a.commit()
        assert db.execute("SELECT v FROM t WHERE k = 4").scalar() == 1
        a.close()
        b.close()

    def test_first_committer_wins(self, db):
        a, b = db.connect(), db.connect()
        a.execute("BEGIN")
        b.execute("BEGIN")
        b.execute("UPDATE t SET v = 2 WHERE k = 4")
        b.commit()
        with pytest.raises(SerializationError):
            a.execute("UPDATE t SET v = 1 WHERE k = 4")
        a.rollback()
        assert db.execute("SELECT v FROM t WHERE k = 4").scalar() == 2
        a.close()
        b.close()

    def test_update_delete_conflict(self, db):
        a, b = db.connect(), db.connect()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("DELETE FROM t WHERE k = 7")
        with pytest.raises(SerializationError):
            b.execute("UPDATE t SET v = 0 WHERE k = 7")
        b.rollback()
        a.commit()
        assert db.execute("SELECT COUNT(*) FROM t WHERE k = 7").scalar() == 0
        a.close()
        b.close()

    def test_disjoint_rows_do_not_conflict(self, db):
        a, b = db.connect(), db.connect()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE k = 1")
        b.execute("UPDATE t SET v = 2 WHERE k = 2")
        a.commit()
        b.commit()
        assert db.execute("SELECT v FROM t WHERE k = 1").scalar() == 1
        assert db.execute("SELECT v FROM t WHERE k = 2").scalar() == 2
        a.close()
        b.close()

    def test_failed_statement_unwinds_to_savepoint(self, db):
        """A multi-row UPDATE that conflicts midway must not leave the
        earlier rows modified (statement-level atomicity)."""
        a, b = db.connect(), db.connect()
        a.execute("BEGIN")
        a.execute("UPDATE t SET v = -1 WHERE k = 5")
        a.commit()  # leaves k=5 with a fresh committed version
        a.execute("BEGIN")
        b.execute("BEGIN")
        b.execute("UPDATE t SET v = -2 WHERE k = 5")  # b now owns k=5
        with pytest.raises(SerializationError):
            a.execute("UPDATE t SET v = 0")  # sweeps all rows, hits k=5
        # a's sweep must have unwound entirely
        assert sorted(
            a.execute("SELECT v FROM t WHERE k < 3").scalars()
        ) == [0.0, 10.0, 20.0]
        a.rollback()
        b.rollback()
        a.close()
        b.close()


class TestDDLGuard:
    def test_ddl_forbidden_inside_transaction(self, db):
        db.execute("BEGIN")
        for ddl in (
            "CREATE TABLE nope (x INT)",
            "CREATE INDEX idx_nope ON t(v)",
            "DROP TABLE t",
            "DROP INDEX idx_k",
            "ALTER TABLE t ADD COLUMN extra TEXT",
        ):
            with pytest.raises(TransactionError, match="DDL is not allowed"):
                db.execute(ddl)
        db.execute("ROLLBACK")
        # catalog untouched, DDL works again outside the transaction
        assert db.table_names() == ["t"]
        db.execute("CREATE TABLE yep (x INT)")
        assert db.has_table("yep")

    def test_rolled_back_transaction_leaves_no_phantom_ddl_in_wal(self):
        """The regression ISSUE 5 names: a ROLLBACK must not leave the WAL
        claiming a table that never survived."""
        wal = WriteAheadLog()
        db = Database(wal=wal)
        db.execute("CREATE TABLE real_table (a INT)")
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("CREATE TABLE phantom (b INT)")
        db.execute("ROLLBACK")
        fresh = Database()
        wal.replay_into(fresh)
        assert fresh.table_names() == ["real_table"]

    def test_connection_sessions_guard_ddl_independently(self, db):
        a, b = db.connect(), db.connect()
        a.execute("BEGIN")
        with pytest.raises(TransactionError, match="DDL"):
            a.execute("CREATE TABLE nope (x INT)")
        # b has no open transaction: its DDL is fine
        b.execute("CREATE TABLE fine (x INT)")
        a.rollback()
        assert db.has_table("fine")
        a.close()
        b.close()


class TestWalRecovery:
    def test_commit_record_wraps_transaction_events(self):
        wal = WriteAheadLog()
        db = Database(wal=wal)
        db.execute("CREATE TABLE t (a INT)")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (1)")
        conn.execute("INSERT INTO t VALUES (2)")
        conn.execute("UPDATE t SET a = 3 WHERE a = 2")
        conn.commit()
        conn.close()
        ops = [r["op"] for r in wal.records]
        assert ops == ["ddl", "commit"]
        assert [e["op"] for e in wal.records[1]["events"]] == [
            "insert", "insert", "update",
        ]

    def test_replay_reconstructs_only_committed_transactions(self):
        wal = WriteAheadLog()
        db = Database(wal=wal)
        db.execute("CREATE TABLE t (a INT)")
        committed, crashed = db.connect(), db.connect()
        committed.execute("BEGIN")
        committed.execute("INSERT INTO t VALUES (1)")
        committed.commit()
        crashed.execute("BEGIN")
        crashed.execute("INSERT INTO t VALUES (666)")
        # crash: `crashed` never commits, the WAL is replayed as-is
        fresh = Database()
        wal.replay_into(fresh)
        assert fresh.execute("SELECT a FROM t").scalars() == [1]

    def test_rolled_back_transaction_never_reaches_wal(self):
        wal = WriteAheadLog()
        db = Database(wal=wal)
        db.execute("CREATE TABLE t (a INT)")
        conn = db.connect()
        before = len(wal)
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (1)")
        conn.rollback()
        conn.close()
        assert len(wal) == before

    def test_abort_records_are_skipped_on_replay(self):
        wal = WriteAheadLog()
        db = Database(wal=wal)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        wal.log_abort(77)
        fresh = Database()
        wal.replay_into(fresh)
        assert fresh.execute("SELECT a FROM t").scalars() == [1]

    def test_checkpoint_roundtrip_with_commit_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "db.wal")
        db = Database(wal=wal)
        db.execute("CREATE TABLE t (a INT)")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (41)")
        conn.execute("INSERT INTO t VALUES (42)")
        conn.commit()
        conn.close()
        db.checkpoint()
        reloaded = WriteAheadLog.load(tmp_path / "db.wal")
        fresh = Database()
        reloaded.replay_into(fresh)
        assert sorted(fresh.execute("SELECT a FROM t").scalars()) == [41, 42]


class TestGarbageCollection:
    def test_versions_collapse_when_quiescent(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("UPDATE t SET v = v + 1")
        conn.execute("DELETE FROM t WHERE k > 7")
        conn.commit()
        conn.close()
        db.maybe_gc()
        table = db.table("t")
        assert table.versions == {}
        assert not db.mvcc_engaged()

    def test_gc_respects_open_snapshots(self, db):
        reader, writer = db.connect(), db.connect()
        reader.execute("BEGIN")
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 10
        writer.execute("DELETE FROM t WHERE k >= 5")
        writer.close()
        db.vacuum()  # must NOT reclaim: reader still sees the old rows
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 10
        reader.commit()
        reader.close()
        db.vacuum()
        assert db.table("t").versions == {}

    def test_gc_removes_stale_index_entries(self, db):
        conn = db.connect()
        conn.execute("UPDATE t SET k = k + 100 WHERE k = 3")
        conn.close()
        db.maybe_gc()
        index = db.table("t").indexes["idx_k"]
        assert index.lookup(3) == set()
        assert len(index.lookup(103)) == 1
        # fast-path probe agrees (no chain left to re-check against)
        assert db.execute("SELECT COUNT(*) FROM t WHERE k = 3").scalar() == 0
        assert db.execute("SELECT COUNT(*) FROM t WHERE k = 103").scalar() == 1

    def test_background_gc_thread(self, db):
        import time

        db.start_background_gc(interval=0.01)
        try:
            conn = db.connect()
            conn.execute("UPDATE t SET v = v + 1")
            conn.close()
            deadline = time.time() + 5.0
            while db.table("t").versions and time.time() < deadline:
                time.sleep(0.01)
            assert db.table("t").versions == {}
        finally:
            db.stop_background_gc()

    def test_rowids_preserved_across_connection_rollback(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("DELETE FROM t WHERE k < 5")
        conn.rollback()
        conn.close()
        assert db.execute(
            "SELECT COUNT(*) FROM t WHERE rowid = 1").scalar() == 1
        db.maybe_gc()
        assert db.table("t").versions == {}


class TestMixedSurfaces:
    def test_default_session_and_connection_interleave(self, db):
        """The legacy db.execute surface is just another session."""
        conn = db.connect()
        db.execute("BEGIN")
        db.execute("UPDATE t SET v = -1 WHERE k = 0")
        # conn must not see the default session's uncommitted write
        assert conn.execute("SELECT v FROM t WHERE k = 0").scalar() == 0.0
        db.execute("COMMIT")
        assert conn.execute("SELECT v FROM t WHERE k = 0").scalar() == -1
        conn.close()

    def test_insert_rows_joins_default_transaction(self, db):
        db.execute("BEGIN")
        db.insert_rows("t", [(100, 0.0, "bulk")])
        db.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM t WHERE k = 100").scalar() == 0

    def test_reinsert_over_own_delete(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("DELETE FROM t WHERE k = 0")
        conn.execute("INSERT INTO t VALUES (0, 111.0, 'again')")
        assert conn.execute("SELECT v FROM t WHERE k = 0").scalar() == 111.0
        conn.rollback()
        assert conn.execute("SELECT v FROM t WHERE k = 0").scalar() == 0.0
        conn.close()

    def test_delete_missing_row_still_integrity_error(self, db):
        conn = db.connect()
        with pytest.raises(IntegrityError):
            db.table("t").delete(12345)
        conn.close()

    def test_unique_index_ignores_dead_version_entries(self, db):
        """DELETE-then-INSERT (and UPDATE-away-then-INSERT) of the same
        unique key must not trip over the dead version's stale entry."""
        db.execute("CREATE TABLE u (name TEXT)")
        db.execute("CREATE UNIQUE INDEX uk ON u(name)")
        db.execute("INSERT INTO u VALUES ('A')")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("DELETE FROM u WHERE name = 'A'")
        conn.execute("INSERT INTO u VALUES ('A')")  # reclaim own-deleted key
        conn.commit()
        assert db.execute("SELECT COUNT(*) FROM u WHERE name = 'A'").scalar() == 1
        conn.execute("BEGIN")
        conn.execute("UPDATE u SET name = 'B' WHERE name = 'A'")
        conn.execute("INSERT INTO u VALUES ('A')")  # key A was updated away
        conn.commit()
        conn.close()
        assert sorted(db.execute("SELECT name FROM u").scalars()) == ["A", "B"]
        # a *live* duplicate is still refused
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO u VALUES ('B')")

    def test_unique_key_held_by_concurrent_txn_is_a_conflict(self, db):
        db.execute("CREATE TABLE u (name TEXT)")
        db.execute("CREATE UNIQUE INDEX uk ON u(name)")
        db.execute("INSERT INTO u VALUES ('A')")
        a, b = db.connect(), db.connect()
        a.execute("BEGIN")
        a.execute("DELETE FROM u WHERE name = 'A'")  # uncommitted free
        b.execute("BEGIN")
        with pytest.raises(SerializationError):
            b.execute("INSERT INTO u VALUES ('A')")  # a's abort would dup
        b.rollback()
        a.rollback()
        a.close()
        b.close()
        assert db.execute("SELECT COUNT(*) FROM u").scalar() == 1

    def test_planning_error_does_not_leak_snapshot(self, db):
        conn = db.connect()
        stmt = db.prepare("SELECT * FROM doomed")
        db.execute("CREATE TABLE doomed (x INT)")
        db.execute("DROP TABLE doomed")
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            stmt.execute(session=conn._session)
        with pytest.raises(CatalogError):
            stmt.stream(session=conn._session)
        conn.close()
        assert db.txn.outstanding_snapshots == 0
        db.maybe_gc()
        assert not db.mvcc_engaged()

    def test_explain_analyze_under_connection(self, db):
        conn = db.connect()
        text = db.prepare("SELECT COUNT(*) FROM t WHERE k >= 2").explain(
            analyze=True, session=conn._session
        )
        assert "rows=" in text
        conn.close()
