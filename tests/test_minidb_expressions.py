"""Unit tests for expression compilation and SQL value semantics."""

import pytest

from repro.errors import ExecutionError, PlanningError
from repro.minidb.expressions import (
    Resolver,
    compile_expr,
    sql_compare,
    sql_equal,
    sort_key,
    truthy,
)
from repro.minidb.parser import parse_expression


def evaluate(sql: str, row=(), columns=(), params=()):
    """Compile a SQL expression over named columns and evaluate it."""
    mapping = {name: i for i, name in enumerate(columns)}
    resolver = Resolver({"t": mapping})
    fn = compile_expr(parse_expression(sql), resolver)
    return fn(row, params)


class TestValueSemantics:
    def test_equal_null_propagates(self):
        assert sql_equal(None, 1) is None
        assert sql_equal(None, None) is None

    def test_equal_across_storage_classes_is_false(self):
        assert sql_equal(1, "1") is False

    def test_numeric_equality_int_float(self):
        assert sql_equal(1, 1.0) is True

    def test_compare_numbers_before_text(self):
        assert sql_compare(5, "a") == -1
        assert sql_compare("a", 5) == 1

    def test_compare_null(self):
        assert sql_compare(None, 5) is None

    def test_sort_key_total_order(self):
        values = ["b", 3, None, 1.5, "a"]
        ordered = sorted(values, key=sort_key)
        assert ordered == [None, 1.5, 3, "a", "b"]

    def test_truthy(self):
        assert not truthy(None)
        assert not truthy(0)
        assert truthy(1)
        assert truthy("x")
        assert not truthy("")


class TestArithmetic:
    def test_basic(self):
        assert evaluate("1 + 2 * 3") == 7

    def test_null_propagation(self):
        assert evaluate("1 + NULL") is None

    def test_division_by_zero_is_null(self):
        assert evaluate("1 / 0") is None
        assert evaluate("1 % 0") is None

    def test_arithmetic_on_text_raises(self):
        with pytest.raises(ExecutionError):
            evaluate("'a' + 1")

    def test_unary_minus(self):
        assert evaluate("-(2 + 3)") == -5

    def test_negate_text_raises(self):
        with pytest.raises(ExecutionError):
            evaluate("-'x'")

    def test_concat(self):
        assert evaluate("'a' || 'b' || 1") == "ab1"
        assert evaluate("'a' || NULL") is None


class TestLogic:
    def test_kleene_and(self):
        assert evaluate("NULL AND 0") == 0       # false wins
        assert evaluate("NULL AND 1") is None
        assert evaluate("1 AND 1") == 1

    def test_kleene_or(self):
        assert evaluate("NULL OR 1") == 1        # true wins
        assert evaluate("NULL OR 0") is None
        assert evaluate("0 OR 0") == 0

    def test_not_null(self):
        assert evaluate("NOT NULL") is None

    def test_comparisons_with_null(self):
        assert evaluate("1 < NULL") is None

    def test_between(self):
        assert evaluate("5 BETWEEN 1 AND 10") == 1
        assert evaluate("5 NOT BETWEEN 1 AND 10") == 0
        assert evaluate("5 BETWEEN NULL AND 10") is None

    def test_in_list_null_semantics(self):
        assert evaluate("1 IN (1, 2)") == 1
        assert evaluate("3 IN (1, 2)") == 0
        assert evaluate("3 IN (1, NULL)") is None  # unknown
        assert evaluate("NULL IN (1)") is None

    def test_is_null(self):
        assert evaluate("NULL IS NULL") is True
        assert evaluate("1 IS NOT NULL") is True

    def test_like_case_insensitive(self):
        assert evaluate("'Bhutan' LIKE 'bhu%'") == 1
        assert evaluate("'Bhutan' LIKE '_hutan'") == 1
        assert evaluate("'Bhutan' NOT LIKE 'x%'") == 1
        assert evaluate("NULL LIKE 'x'") is None

    def test_like_escapes_regex_metachars(self):
        assert evaluate("'a.c' LIKE 'a.c'") == 1
        assert evaluate("'abc' LIKE 'a.c'") == 0


class TestColumnsAndParams:
    def test_column_resolution(self):
        assert evaluate("a + b", row=(2, 3), columns=("a", "b")) == 5

    def test_qualified_column(self):
        assert evaluate("t.a", row=(7,), columns=("a",)) == 7

    def test_unknown_column(self):
        with pytest.raises(PlanningError, match="unknown column"):
            evaluate("nope", columns=("a",))

    def test_ambiguous_column(self):
        resolver = Resolver({"t": {"a": 0}, "u": {"a": 1}})
        with pytest.raises(PlanningError, match="ambiguous"):
            compile_expr(parse_expression("a"), resolver)

    def test_params(self):
        assert evaluate("? + ?", params=(1, 2)) == 3


class TestFunctionsAndCase:
    def test_scalar_functions(self):
        assert evaluate("ABS(-3)") == 3
        assert evaluate("UPPER('ab')") == "AB"
        assert evaluate("COALESCE(NULL, NULL, 5)") == 5
        assert evaluate("LENGTH('abc')") == 3
        assert evaluate("ROUND(2.567, 2)") == 2.57
        assert evaluate("SUBSTR('hello', 2, 3)") == "ell"
        assert evaluate("REPLACE('aaa', 'a', 'b')") == "bbb"
        assert evaluate("NULLIF(1, 1)") is None
        assert evaluate("TYPEOF('x')") == "text"
        assert evaluate("TYPEOF(1.5)") == "real"
        assert evaluate("TYPEOF(NULL)") == "null"
        assert evaluate("MIN(3, 1, 2)") == 1

    def test_unknown_function(self):
        with pytest.raises(ExecutionError, match="unknown function"):
            evaluate("FROBNICATE(1)")

    def test_cast(self):
        assert evaluate("CAST('12' AS INT)") == 12
        assert evaluate("CAST(1.9 AS INTEGER)") == 1
        assert evaluate("CAST(5 AS TEXT)") == "5"
        assert evaluate("CAST('x' AS REAL)") == 0.0
        assert evaluate("CAST(NULL AS INT)") is None

    def test_case_searched(self):
        sql = "CASE WHEN a > 10 THEN 'big' WHEN a > 5 THEN 'mid' ELSE 'small' END"
        assert evaluate(sql, row=(20,), columns=("a",)) == "big"
        assert evaluate(sql, row=(7,), columns=("a",)) == "mid"
        assert evaluate(sql, row=(1,), columns=("a",)) == "small"

    def test_case_no_else_is_null(self):
        assert evaluate("CASE WHEN 0 THEN 1 END") is None

    def test_case_with_operand(self):
        sql = "CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END"
        assert evaluate(sql, row=(2,), columns=("a",)) == "two"

    def test_aggregate_outside_grouping_rejected(self):
        with pytest.raises(PlanningError, match="aggregation context"):
            evaluate("SUM(a)", columns=("a",))
