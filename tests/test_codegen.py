"""Tests for script generation — including executing the generated Python.

The strongest check: export the session's pipeline, run the generated
script on a fresh copy of the raw data, and verify it produces the same
final table as the interactive session did.
"""

import pytest

from repro.codegen import TARGETS, generate_script
from repro.config import BuckarooConfig
from repro.core.session import BuckarooSession
from repro.core.types import ERROR_MISSING, ERROR_OUTLIER, ERROR_TYPE_MISMATCH, GroupKey
from repro.errors import CodegenError
from repro.frame import DataFrame

from tests.test_backends import COLUMNS, ROWS


def make_session() -> BuckarooSession:
    session = BuckarooSession.from_frame(
        DataFrame.from_rows(ROWS, COLUMNS), backend="sql",
        config=BuckarooConfig(min_group_size=2),
    )
    session.generate_groups(cat_cols=["country", "degree"],
                            num_cols=["income", "age"])
    session.detect()
    return session


def run_generated(script: str, frame: DataFrame) -> DataFrame:
    """Exec a generated python script's wrangle() on ``frame``."""
    namespace: dict = {"__name__": "generated"}
    exec(compile(script, "<generated>", "exec"), namespace)
    return namespace["wrangle"](frame)


def apply_pipeline(session: BuckarooSession, steps) -> None:
    for key, code, wrangler in steps:
        suggestion = next(
            s for s in session.suggest(key, error_code=code, score_plans=False)
            if s.plan.wrangler_code == wrangler
        )
        session.apply(suggestion)


BHUTAN = GroupKey("country", "Bhutan", "income")
LESOTHO = GroupKey("country", "Lesotho", "income")
NAURU = GroupKey("country", "Nauru", "income")


class TestPythonTarget:
    def test_empty_history(self):
        script = make_session().export_script()
        assert "no wrangling operations" in script
        assert "def wrangle" in script

    @pytest.mark.parametrize("steps,expect", [
        # delete the outlier
        ([(BHUTAN, ERROR_OUTLIER, "delete_rows")], "delete_rows"),
        # convert '12k'
        ([(BHUTAN, ERROR_TYPE_MISMATCH, "convert_type")], "convert_types"),
        # impute the missing Lesotho income with the group mean
        ([(LESOTHO, ERROR_MISSING, "impute_mean")], "impute"),
        # clip the outlier
        ([(BHUTAN, ERROR_OUTLIER, "clip_outliers")], "clip_outliers"),
        # merge the undersized group
        ([(NAURU, "small_group", "merge_small_group")], "relabel_category"),
    ])
    def test_generated_script_matches_session(self, steps, expect):
        session = make_session()
        apply_pipeline(session, steps)
        script = session.export_script("python")
        assert expect in script
        raw = DataFrame.from_rows(ROWS, COLUMNS)
        regenerated = run_generated(script, raw)
        assert regenerated.to_rows() == session.backend.to_frame().to_rows()

    def test_multi_step_pipeline_matches(self):
        session = make_session()
        apply_pipeline(session, [
            (BHUTAN, ERROR_TYPE_MISMATCH, "convert_type"),
            (LESOTHO, ERROR_MISSING, "impute_median"),
            (NAURU, "small_group", "merge_small_group"),
        ])
        script = session.export_script("python")
        regenerated = run_generated(script, DataFrame.from_rows(ROWS, COLUMNS))
        assert regenerated.to_rows() == session.backend.to_frame().to_rows()

    def test_undone_actions_excluded(self):
        session = make_session()
        apply_pipeline(session, [(BHUTAN, ERROR_OUTLIER, "delete_rows")])
        session.undo()
        script = session.export_script("python")
        assert "no wrangling operations" in script

    def test_script_has_provenance_comments(self):
        session = make_session()
        apply_pipeline(session, [(BHUTAN, ERROR_OUTLIER, "delete_rows")])
        script = session.export_script("python")
        assert "# step 1:" in script


class TestOtherTargets:
    def _session_with_history(self):
        session = make_session()
        apply_pipeline(session, [
            (BHUTAN, ERROR_OUTLIER, "delete_rows"),
            (LESOTHO, ERROR_MISSING, "impute_mean"),
            (BHUTAN, ERROR_TYPE_MISMATCH, "convert_type"),
        ])
        return session

    def test_pandas_flavour(self):
        script = self._session_with_history().export_script("pandas")
        assert "import pandas as pd" in script
        assert "pd.to_numeric" in script
        assert "df.loc[" in script

    def test_r_flavour(self):
        script = self._session_with_history().export_script("r")
        assert "library(dplyr)" in script
        assert "%>%" in script
        assert "mutate(" in script

    def test_all_targets_enumerate(self):
        session = self._session_with_history()
        for target in TARGETS:
            assert session.export_script(target)

    def test_unknown_target(self):
        with pytest.raises(CodegenError, match="unknown codegen target"):
            make_session().export_script("cobol")
