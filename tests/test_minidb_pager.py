"""Unit tests for the paged storage layer: binary records, slotted
pages, the buffer pool, chunk chains, and the dict-protocol PagedHeap."""

import pytest

from repro.errors import DatabaseError
from repro.minidb.pager import (
    CHUNK_CAPACITY,
    PAGE_DATA,
    PAGE_OVERFLOW,
    PAGE_SIZE,
    Page,
    PagedHeap,
    Pager,
)
from repro.minidb.record import decode_values, encode_values


@pytest.fixture
def pager(tmp_path):
    p = Pager(tmp_path / "unit.db", pool_pages=8)
    yield p
    p.close()


class TestRecordCodec:
    @pytest.mark.parametrize("values", [
        [],
        [None],
        [1, 2, 3],
        [-(2 ** 63), 2 ** 63 - 1],
        [2 ** 80, -(2 ** 90)],           # beyond i64: decimal-text tag
        [0.5, -1.25, 1e300],
        ["", "hello", "naïve café ünïcode", "x" * 10_000],
        [None, 7, 2.5, "mixed", 10 ** 30],
        [[1, 2, {"k": "v"}]],            # exotic cell: JSON tag
    ])
    def test_round_trip(self, values):
        assert decode_values(encode_values(values)) == values

    def test_round_trip_at_offset(self):
        blob = b"prefix" + encode_values([1, "two"])
        assert decode_values(blob, 6) == [1, "two"]

    def test_unknown_tag_raises(self):
        bad = bytearray(encode_values([1]))
        bad[2] = 250  # clobber the value tag
        with pytest.raises(DatabaseError, match="unknown value tag"):
            decode_values(bytes(bad))

    def test_unserializable_value_raises(self):
        with pytest.raises(DatabaseError, match="cannot store"):
            encode_values([object()])


class TestSlottedPage:
    def test_insert_read_delete(self):
        page = Page(1)
        page.init(PAGE_DATA)
        s0 = page.insert(b"alpha")
        s1 = page.insert(b"beta")
        assert bytes(page.read(s0)) == b"alpha"
        assert bytes(page.read(s1)) == b"beta"
        page.delete(s0)
        with pytest.raises(DatabaseError):
            page.read(s0)
        assert bytes(page.read(s1)) == b"beta"

    def test_dead_slot_is_reused(self):
        page = Page(1)
        page.init(PAGE_DATA)
        s0 = page.insert(b"aaaa")
        page.insert(b"bbbb")
        page.delete(s0)
        assert page.insert(b"cccc") == s0  # tombstoned slot recycled

    def test_fills_up_and_rejects(self):
        page = Page(1)
        page.init(PAGE_DATA)
        payload = b"x" * 100
        count = 0
        while page.insert(payload) is not None:
            count += 1
        # 12B header + per-record 100B cell + 4B slot
        assert count == (PAGE_SIZE - 12) // 104
        assert page.insert(payload) is None

    def test_compaction_reclaims_garbage(self):
        page = Page(1)
        page.init(PAGE_DATA)
        slots = [page.insert(b"y" * 400) for _ in range(10)]
        assert page.insert(b"z" * 400) is None  # full
        for slot in slots[::2]:
            page.delete(slot)
        # contiguous hole is still small, but garbage makes room: the
        # insert below must trigger in-page compaction and succeed
        slot = page.insert(b"z" * 400)
        assert slot is not None
        assert bytes(page.read(slot)) == b"z" * 400
        for slot in slots[1::2]:
            assert bytes(page.read(slot)) == b"y" * 400  # survivors intact

    def test_emptied_page_resets(self):
        page = Page(1)
        page.init(PAGE_DATA)
        slots = [page.insert(b"data") for _ in range(3)]
        for slot in slots:
            page.delete(slot)
        assert page.slot_count == 0
        assert page.garbage == 0
        assert page.free_total() == PAGE_SIZE - 12

    def test_records_iterates_live_slots_in_order(self):
        page = Page(1)
        page.init(PAGE_DATA)
        page.insert(b"a")
        s1 = page.insert(b"b")
        page.insert(b"c")
        page.delete(s1)
        assert [(i, bytes(p)) for i, p in page.records()] == [
            (0, b"a"), (2, b"c"),
        ]


class TestPager:
    def test_pages_survive_reopen(self, tmp_path):
        path = tmp_path / "p.db"
        pager = Pager(path)
        page = pager.allocate(PAGE_DATA)
        slot = page.insert(b"durable payload")
        pager.mark_dirty(page)
        pager.flush()
        pager.write_header()  # the header write is the durability commit point
        pid = page.pid
        pager.close()

        reopened = Pager(path)
        assert bytes(reopened.get(pid).read(slot)) == b"durable payload"
        reopened.close()

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"not a database file" * 300)
        with pytest.raises(DatabaseError, match="not a minidb database"):
            Pager(path)

    def test_eviction_is_clean_only_and_bounded(self, tmp_path):
        pager = Pager(tmp_path / "evict.db", pool_pages=4)
        dirty = [pager.allocate(PAGE_DATA) for _ in range(6)]
        # every page is dirty: nothing can be evicted, the pool overruns
        assert pager.resident_pages == 6
        pager.flush()
        # flush made them clean; the pool trims back to its budget
        assert pager.resident_pages <= 4
        # clean pages reload from disk on demand
        for page in dirty:
            assert pager.get(page.pid).page_type == PAGE_DATA
        assert pager.resident_pages <= 4
        assert pager.stats["evictions"] > 0
        pager.close()

    def test_chain_round_trip_and_free(self, tmp_path):
        pager = Pager(tmp_path / "chain.db", pool_pages=8)
        blob = bytes(range(256)) * 64  # 16KB: spans several chunk pages
        first = pager.write_chain(blob, PAGE_OVERFLOW)
        assert pager.read_chain(first) == blob
        pids = pager.chain_pids(first)
        assert len(pids) == -(-len(blob) // CHUNK_CAPACITY)
        pager.free_chain(first)
        # two-phase free: reusable only after the checkpoint completes
        before = pager.page_count
        fresh = pager.allocate(PAGE_DATA)
        assert fresh.pid == before  # freed pages not yet reusable
        pager.promote_pending_free()
        assert pager.allocate(PAGE_DATA).pid in set(pids)
        pager.close()

    def test_out_of_range_page_raises(self, pager):
        with pytest.raises(DatabaseError, match="out of range"):
            pager.get(999)


class TestPagedHeap:
    def test_dict_protocol(self, pager):
        heap = PagedHeap(pager)
        heap[1] = [1, "one"]
        heap[2] = [2, "two"]
        heap[5] = [5, "five"]
        assert len(heap) == 3
        assert 2 in heap and 3 not in heap
        assert heap[1] == [1, "one"]
        assert heap.get(5) == [5, "five"]
        assert heap.get(99) is None
        with pytest.raises(KeyError):
            heap[99]
        assert list(heap) == [1, 2, 5]
        assert list(heap.keys()) == [1, 2, 5]
        assert list(heap.values()) == [[1, "one"], [2, "two"], [5, "five"]]
        assert dict(heap.items())[2] == [2, "two"]
        del heap[2]
        assert heap.pop(5) == [5, "five"]
        assert heap.pop(5, "gone") == "gone"
        with pytest.raises(KeyError):
            del heap[2]
        with pytest.raises(KeyError):
            heap.pop(17)
        assert list(heap.items()) == [(1, [1, "one"])]

    def test_update_preserves_insertion_order(self, pager):
        heap = PagedHeap(pager)
        for i in range(5):
            heap[i] = [i]
        heap[2] = [200]  # overwrite must not move the key to the end
        assert list(heap) == [0, 1, 2, 3, 4]
        assert heap[2] == [200]

    def test_load_rebuilds_directory(self, tmp_path):
        path = tmp_path / "heap.db"
        pager = Pager(path, pool_pages=8)
        heap = PagedHeap(pager)
        for i in range(1, 400):
            heap[i] = [i, f"row-{i}", i * 0.5]
        del heap[7]
        heap[3] = [3, "updated", None]
        first = heap.first_page
        pager.flush()
        pager.write_header()
        pager.close()

        pager = Pager(path, pool_pages=8)
        reloaded = PagedHeap(pager, first)
        reachable = reloaded.load()
        assert len(reloaded) == 398
        assert 7 not in reloaded
        assert reloaded[3] == [3, "updated", None]
        assert reloaded[399] == [399, "row-399", 199.5]
        assert reloaded.max_rowid() == 399
        assert reachable  # the data chain is reported for free-page math
        pager.close()

    def test_overflow_rows_round_trip(self, tmp_path):
        path = tmp_path / "big.db"
        pager = Pager(path, pool_pages=8)
        heap = PagedHeap(pager)
        big = "v" * (3 * PAGE_SIZE)  # far larger than one page
        heap[1] = [big, 7]
        heap[2] = ["small", 8]
        assert heap[1] == [big, 7]
        heap[1] = ["replaced", 9]  # old overflow chain is freed
        assert heap[1] == ["replaced", 9]
        heap[3] = [big + "!", 10]
        first = heap.first_page
        pager.flush()
        pager.write_header()
        pager.close()

        pager = Pager(path, pool_pages=8)
        reloaded = PagedHeap(pager, first)
        reloaded.load()
        assert reloaded[3] == [big + "!", 10]
        assert reloaded[1] == ["replaced", 9]
        pager.close()

    def test_release_frees_every_page(self, pager):
        heap = PagedHeap(pager)
        big = "o" * (2 * PAGE_SIZE)
        for i in range(50):
            heap[i] = [i, big if i % 10 == 0 else "s"]
        allocated = pager.page_count
        heap.release()
        pager.promote_pending_free()
        assert len(heap) == 0
        # every owned page is reusable: fresh allocations don't grow the file
        for _ in range(allocated - 2):
            pager.allocate(PAGE_DATA)
        assert pager.page_count == allocated
