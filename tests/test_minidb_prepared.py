"""The prepared-statement surface: Connection/Cursor/PreparedStatement,
parameterized plan caching, and the (schema_epoch, stats_version)
invalidation matrix — DDL, ANALYZE, and mutation-driven stats rebuilds
must all force a re-plan, and cached plans must rebind cleanly
(including NULL parameters through range scans)."""

import pytest

from repro.errors import DatabaseError
from repro.minidb import Cursor, Database, PreparedStatement
from repro.minidb import executor
from repro.minidb.stats import REBUILD_FLOOR


@pytest.fixture
def db() -> Database:
    db = Database()
    db.execute("CREATE TABLE t (cat TEXT, val REAL)")
    db.insert_rows("t", [(f"c{i % 5}", float(i)) for i in range(100)])
    return db


def _cache_line(plan: str) -> str:
    return plan.splitlines()[0]


# ---------------------------------------------------------------------------
# PreparedStatement basics
# ---------------------------------------------------------------------------


class TestPreparedStatement:
    def test_prepare_returns_cached_statement(self, db):
        sql = "SELECT val FROM t WHERE cat = ?"
        stmt = db.prepare(sql)
        assert isinstance(stmt, PreparedStatement)
        assert db.prepare(sql) is stmt
        assert stmt.is_select and stmt.n_params == 1

    def test_execute_rebinds_parameters(self, db):
        stmt = db.prepare("SELECT COUNT(*) FROM t WHERE cat = ?")
        assert stmt.execute(("c0",)).scalar() == 20
        assert stmt.execute(("c1",)).scalar() == 20
        assert stmt.execute(("nope",)).scalar() == 0

    def test_underbinding_raises_clear_error(self, db):
        stmt = db.prepare("SELECT val FROM t WHERE cat = ? AND val > ?")
        with pytest.raises(DatabaseError, match="expects 2 parameter"):
            stmt.execute(("c0",))

    def test_stream_through_prepared(self, db):
        stmt = db.prepare("SELECT val FROM t WHERE cat = ?")
        cursor = stmt.stream(("c0",))
        first = next(iter(cursor))
        assert first == (0.0,)

    def test_stream_rejects_non_select(self, db):
        stmt = db.prepare("INSERT INTO t VALUES (?, ?)")
        with pytest.raises(DatabaseError, match="SELECT"):
            stmt.stream(("x", 1.0))

    def test_prepared_ddl_and_transactions_dispatch(self, db):
        db.prepare("CREATE INDEX idx_val ON t (val)").execute()
        assert "idx_val" in db.index_names()
        db.prepare("BEGIN").execute()
        db.prepare("ROLLBACK").execute()

    def test_constant_select(self, db):
        assert db.prepare("SELECT 1 + 1").execute().scalar() == 2

    def test_explain_on_prepared(self, db):
        stmt = db.prepare("SELECT val FROM t WHERE cat = ?")
        text = stmt.explain()
        assert text.startswith("cache: ")
        assert "SeqScan(t)" in text


# ---------------------------------------------------------------------------
# plan cache: hits, misses, LRU
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_explain_reports_miss_then_hit(self, db):
        sql = "SELECT val FROM t WHERE cat = ?"
        assert _cache_line(db.explain(sql)) == "cache: miss"
        assert _cache_line(db.explain(sql)) == "cache: hit"

    def test_execution_seeds_the_explain_cache(self, db):
        sql = "SELECT val FROM t WHERE cat = ?"
        db.execute(sql, ("c0",))
        assert _cache_line(db.explain(sql)) == "cache: hit"

    def test_prepared_and_text_paths_share_one_cache(self, db):
        stmt = db.prepare("SELECT val FROM t WHERE cat = ?")
        stmt.execute(("c0",))
        assert _cache_line(db.explain("SELECT val FROM t WHERE cat = ?")) == "cache: hit"

    def test_disabled_cache_always_misses(self, db):
        db.plan_cache.enabled = False
        sql = "SELECT val FROM t WHERE cat = ?"
        db.execute(sql, ("c0",))
        assert _cache_line(db.explain(sql)) == "cache: miss"
        assert _cache_line(db.explain(sql)) == "cache: miss"

    def test_zero_limit_disables_and_reenables(self, db):
        sql = "SELECT val FROM t WHERE cat = ?"
        db.plan_cache.limit = 0
        assert not db.plan_cache.enabled
        db.execute(sql, ("c0",))
        assert _cache_line(db.explain(sql)) == "cache: miss"
        db.plan_cache.limit = 16
        assert db.plan_cache.enabled
        db.execute(sql, ("c0",))
        assert _cache_line(db.explain(sql)) == "cache: hit"

    def test_constant_select_explains_with_cache_line(self, db):
        lines = db.explain("SELECT 1 + 1").splitlines()
        assert lines == ["cache: miss", "ConstantScan"]

    def test_lru_evicts_oldest_plan(self, db):
        db.plan_cache.limit = 2
        queries = [f"SELECT val FROM t WHERE val > {i}" for i in range(3)]
        for sql in queries:
            db.execute(sql)
        assert len(db.plan_cache) == 2
        # the first query was evicted; the last two still hit
        assert _cache_line(db.explain(queries[2])) == "cache: hit"
        assert _cache_line(db.explain(queries[1])) == "cache: hit"
        assert _cache_line(db.explain(queries[0])) == "cache: miss"

    def test_lookup_moves_entry_to_tail(self, db):
        db.plan_cache.limit = 2
        first = "SELECT val FROM t WHERE val > 1"
        second = "SELECT val FROM t WHERE val > 2"
        third = "SELECT val FROM t WHERE val > 3"
        db.explain(first)
        db.explain(second)
        db.explain(first)   # lookup refresh: second is now the LRU entry
        db.explain(third)   # evicts second, not first
        assert _cache_line(db.explain(first)) == "cache: hit"
        assert _cache_line(db.explain(second)) == "cache: miss"

    def test_statement_cache_lru(self, db, monkeypatch):
        monkeypatch.setattr("repro.minidb.database._STMT_CACHE_LIMIT", 2)
        a = db.prepare("SELECT val FROM t WHERE val > 1")
        db.prepare("SELECT val FROM t WHERE val > 2")
        assert db.prepare("SELECT val FROM t WHERE val > 1") is a  # refreshed
        db.prepare("SELECT val FROM t WHERE val > 3")  # evicts query 2
        assert db.prepare("SELECT val FROM t WHERE val > 1") is a
        assert len(db._stmt_cache) <= 2

    def test_counters(self, db):
        sql = "SELECT val FROM t WHERE cat = ?"
        db.execute(sql, ("c0",))
        db.execute(sql, ("c1",))
        info = db.plan_cache.info()
        assert info["size"] >= 1
        assert info["misses"] >= 1

    def test_int_and_float_literals_never_share_a_plan(self, db):
        """Literal equality is type-aware: 1 and 1.0 are different keys.

        Plain Python equality would collide them (1 == 1.0) and hand the
        float query the int query's compiled closures, changing result
        types."""
        one_int = db.execute("SELECT 1 FROM t LIMIT 1").scalar()
        one_float = db.execute("SELECT 1.0 FROM t LIMIT 1").scalar()
        assert type(one_int) is int and type(one_float) is float

    def test_insert_literal_types_survive_caching(self, db):
        """1 vs 1.0 through cached INSERT plans keep their storage class.

        TEXT affinity renders the stored value ("1" vs "1.0"), so a
        compiled-closure collision between the numerically-equal literals
        would be visible — same-statement-shape (plan cache) and
        same-expression (compile_value memo) collisions both."""
        db.execute("CREATE TABLE a (x TEXT)")
        db.execute("CREATE TABLE b (x TEXT)")
        db.execute("INSERT INTO a VALUES (1)")
        db.execute("INSERT INTO a VALUES (1.0)")  # same table: plan-cache key
        db.execute("INSERT INTO b VALUES (1.0)")  # cross-table: value memo
        assert sorted(db.execute("SELECT x FROM a").scalars()) == ["1", "1.0"]
        assert db.execute("SELECT x FROM b").scalar() == "1.0"


# ---------------------------------------------------------------------------
# invalidation: DDL, ANALYZE, mutation-driven stats rebuilds
# ---------------------------------------------------------------------------


class TestInvalidation:
    SQL = "SELECT val FROM t WHERE cat = ?"

    def test_create_index_forces_different_plan(self, db):
        stmt = db.prepare(self.SQL)
        before = stmt.explain()
        assert "SeqScan" in before
        baseline = stmt.execute(("c0",)).rows
        db.execute("CREATE INDEX idx_cat ON t (cat) USING hash")
        after = stmt.explain()
        assert "IndexEqScan(t.cat via idx_cat)" in after
        assert "SeqScan" not in after
        assert sorted(stmt.execute(("c0",)).rows) == sorted(baseline)

    def test_drop_index_reverts_the_plan(self, db):
        db.execute("CREATE INDEX idx_cat ON t (cat) USING hash")
        stmt = db.prepare(self.SQL)
        assert "IndexEqScan" in stmt.explain()
        db.execute("DROP INDEX idx_cat")
        assert "SeqScan" in stmt.explain()
        assert stmt.execute(("c0",)).rows  # still executable

    def test_alter_add_column_replans_star(self, db):
        star = db.prepare("SELECT * FROM t WHERE cat = ?")
        assert len(star.execute(("c0",)).columns) == 2
        db.execute("ALTER TABLE t ADD COLUMN extra INT")
        result = star.execute(("c0",))
        assert result.columns == ["cat", "val", "extra"]
        assert all(row[2] is None for row in result.rows)

    def test_drop_and_recreate_table(self, db):
        stmt = db.prepare("SELECT COUNT(*) FROM t")
        assert stmt.execute().scalar() == 100
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (cat TEXT, val REAL)")
        db.insert_rows("t", [("x", 1.0)])
        assert stmt.execute().scalar() == 1

    def test_analyze_bumps_stats_version(self, db):
        db.execute(self.SQL, ("c0",))
        assert _cache_line(db.explain(self.SQL)) == "cache: hit"
        version = db.stats.version
        db.analyze()
        assert db.stats.version > version
        assert _cache_line(db.explain(self.SQL)) == "cache: miss"
        assert _cache_line(db.explain(self.SQL)) == "cache: hit"

    def test_mutation_driven_rebuild_replans(self, db):
        db.execute(self.SQL, ("c0",))  # builds stats + caches the plan
        assert _cache_line(db.explain(self.SQL)) == "cache: hit"
        db.executemany(
            "INSERT INTO t VALUES (?, ?)",
            [(f"c{i % 5}", float(i)) for i in range(3 * REBUILD_FLOOR)],
        )
        # the drift crosses the rebuild threshold: next use re-plans
        assert _cache_line(db.explain(self.SQL)) == "cache: miss"

    def test_small_mutations_keep_the_plan(self, db):
        db.execute(self.SQL, ("c0",))
        db.execute("INSERT INTO t VALUES (?, ?)", ("c0", 1.5))
        assert _cache_line(db.explain(self.SQL)) == "cache: hit"

    def test_scan_to_index_scan_after_create_index(self, db):
        """The acceptance shape: cached plan differs after CREATE INDEX."""
        stmt = db.prepare("SELECT val FROM t WHERE val > ?")
        assert "SeqScan" in stmt.explain()
        db.execute("CREATE INDEX idx_val ON t (val)")
        assert "IndexRangeScan(t.val via idx_val" in stmt.explain()


# ---------------------------------------------------------------------------
# NULL-parameter rebinding through cached plans (PR-3 runtime semantics)
# ---------------------------------------------------------------------------


class TestNullRebinding:
    @pytest.fixture
    def indexed(self, db) -> Database:
        db.execute("CREATE INDEX idx_val ON t (val)")
        return db

    def test_null_range_bound_matches_nothing(self, indexed):
        stmt = indexed.prepare("SELECT val FROM t WHERE val > ?")
        assert len(stmt.execute((90.0,)).rows) == 9
        assert stmt.execute((None,)).rows == []
        assert len(stmt.execute((90.0,)).rows) == 9  # cached plan, rebound

    def test_null_eq_bound_matches_nothing(self, indexed):
        stmt = indexed.prepare("SELECT val FROM t WHERE val = ?")
        assert stmt.execute((42.0,)).rows == [(42.0,)]
        assert stmt.execute((None,)).rows == []
        assert stmt.execute((42.0,)).rows == [(42.0,)]

    def test_null_between_bounds(self, indexed):
        stmt = indexed.prepare("SELECT val FROM t WHERE val BETWEEN ? AND ?")
        assert len(stmt.execute((0.0, 4.0)).rows) == 5
        assert stmt.execute((None, 4.0)).rows == []
        assert stmt.execute((0.0, None)).rows == []
        assert len(stmt.execute((0.0, 4.0)).rows) == 5


# ---------------------------------------------------------------------------
# executemany: one compiled plan for the whole batch
# ---------------------------------------------------------------------------


class TestExecutemany:
    def test_insert_compiles_once(self, db, monkeypatch):
        calls = []
        original = executor.compile_dml

        def counting(inner_db, stmt):
            calls.append(type(stmt).__name__)
            return original(inner_db, stmt)

        monkeypatch.setattr(executor, "compile_dml", counting)
        total = db.executemany(
            "INSERT INTO t VALUES (?, ?)", [("z", float(i)) for i in range(50)]
        )
        assert total == 50
        assert calls.count("InsertStmt") == 1

    def test_update_compiles_once_and_applies(self, db, monkeypatch):
        calls = []
        original = executor.compile_dml

        def counting(inner_db, stmt):
            calls.append(type(stmt).__name__)
            return original(inner_db, stmt)

        monkeypatch.setattr(executor, "compile_dml", counting)
        total = db.executemany(
            "UPDATE t SET val = ? WHERE cat = ?",
            [(-1.0, "c0"), (-2.0, "c1")],
        )
        assert total == 40
        assert calls.count("UpdateStmt") == 1
        assert db.execute("SELECT COUNT(*) FROM t WHERE val < 0").scalar() == 40

    def test_delete_through_prepared(self, db):
        stmt = db.prepare("DELETE FROM t WHERE cat = ?")
        assert stmt.executemany([("c0",), ("c1",)]) == 40
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 60


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE: per-node wall clock
# ---------------------------------------------------------------------------


class TestAnalyzeTiming:
    def test_every_operator_reports_time(self, db):
        plan = db.explain("SELECT val FROM t WHERE cat = ?", ("c0",),
                          analyze=True)
        lines = plan.splitlines()
        assert lines[0].startswith("cache: ")
        for line in lines[1:]:
            assert "rows=" in line and "time=" in line, line

    def test_times_render_as_milliseconds(self, db):
        plan = db.explain("SELECT COUNT(*) FROM t GROUP BY cat", analyze=True)
        assert "ms]" in plan

    def test_plain_explain_has_no_times(self, db):
        plan = db.explain("SELECT val FROM t WHERE cat = ?")
        assert "time=" not in plan


# ---------------------------------------------------------------------------
# Cursor (PEP 249 shape)
# ---------------------------------------------------------------------------


class TestCursor:
    def test_execute_and_description(self, db):
        cursor = db.cursor()
        assert isinstance(cursor, Cursor)
        cursor.execute("SELECT cat, val FROM t WHERE cat = ? ORDER BY val", ("c0",))
        assert [d[0] for d in cursor.description] == ["cat", "val"]
        assert cursor.fetchone() == ("c0", 0.0)
        assert len(cursor.fetchmany(5)) == 5
        rest = cursor.fetchall()
        assert len(rest) == 14
        assert cursor.fetchone() is None

    def test_iteration(self, db):
        cursor = db.cursor().execute("SELECT val FROM t WHERE cat = ?", ("c1",))
        assert len(list(cursor)) == 20

    def test_dml_rowcount_and_lastrowid(self, db):
        cursor = db.cursor()
        cursor.execute("INSERT INTO t VALUES (?, ?)", ("new", 1.0))
        assert cursor.rowcount == 1
        assert cursor.lastrowid is not None
        assert cursor.description is None

    def test_executemany(self, db):
        cursor = db.cursor()
        cursor.executemany("INSERT INTO t VALUES (?, ?)",
                           [("a", 1.0), ("b", 2.0)])
        assert cursor.rowcount == 2

    def test_accepts_prepared_statement(self, db):
        stmt = db.prepare("SELECT COUNT(*) FROM t WHERE cat = ?")
        cursor = db.cursor().execute(stmt, ("c0",))
        assert cursor.fetchone() == (20,)

    def test_closed_cursor_raises(self, db):
        cursor = db.cursor()
        cursor.close()
        with pytest.raises(DatabaseError, match="closed"):
            cursor.execute("SELECT 1")

    def test_context_manager_closes(self, db):
        with db.cursor() as cursor:
            cursor.execute("SELECT 1")
        with pytest.raises(DatabaseError, match="closed"):
            cursor.fetchall()
