"""Unit and property tests for sampling and aggregation (§4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import make_backend
from repro.config import BuckarooConfig
from repro.core.engine import DetectionEngine
from repro.core.groups import GroupManager
from repro.frame import DataFrame
from repro.sampling import (
    DistanceBasedSampler,
    ErrorFirstSampler,
    ReservoirSampler,
    StratifiedSampler,
    heatmap,
    histogram,
    minmax_decimate,
)

from tests.test_backends import COLUMNS, ROWS


@pytest.fixture
def detected():
    backend = make_backend(DataFrame.from_rows(ROWS, COLUMNS), "frame")
    manager = GroupManager(backend, BuckarooConfig(min_group_size=2))
    manager.generate(cat_cols=["country"], num_cols=["income"])
    engine = DetectionEngine(backend, BuckarooConfig(min_group_size=2))
    engine.detect_all(manager.groups.values())
    return backend, manager, engine


class TestErrorFirst:
    def test_all_anomalies_included(self, detected):
        """The §4.1 guarantee: no error is left unvisualized."""
        backend, manager, engine = detected
        sampler = ErrorFirstSampler(budget=4, context_per_group=1)
        groups = list(manager.groups.values())
        sample = sampler.sample_groups(groups, engine.index)
        assert engine.index.rows_with_errors() <= set(sample.row_ids)

    def test_context_rows_are_clean(self, detected):
        backend, manager, engine = detected
        sampler = ErrorFirstSampler(budget=100, context_per_group=2)
        groups = list(manager.groups.values())
        sample = sampler.sample_groups(groups, engine.index)
        assert not (sample.context & sample.anomalous)

    def test_single_group_sample(self, detected):
        backend, manager, engine = detected
        sampler = ErrorFirstSampler(context_per_group=1)
        group = next(iter(manager.groups.values()))
        sample = sampler.sample_group(group, engine.index)
        assert set(sample.row_ids) <= set(group.row_ids)

    def test_error_recall_metric(self):
        from repro.sampling import Sample

        sample = Sample(row_ids=[1, 2, 3])
        assert sample.error_recall({1, 2}) == 1.0
        assert sample.error_recall({1, 9}) == 0.5
        assert sample.error_recall(set()) == 1.0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            ErrorFirstSampler(budget=0)


class TestDistance:
    def test_nearest_clean_rows_selected(self, detected):
        backend, _manager, _engine = detected
        sampler = DistanceBasedSampler(budget=3)
        # row 4 is the 1M outlier; nearest by income should be high earners
        sample = sampler.sample(backend, ["income", "age"], [4])
        assert 4 in sample.row_ids
        assert len(sample.row_ids) == 3
        # the closest clean point in feature space (the 72k earner, row 5)
        # must be part of the context
        assert 5 in sample.context

    def test_no_anomalies_degenerates_gracefully(self, detected):
        backend, _m, _e = detected
        sample = DistanceBasedSampler(budget=2).sample(backend, ["income"], [])
        assert len(sample.row_ids) <= 2


class TestReservoir:
    def test_capacity_respected(self):
        sampler = ReservoirSampler(capacity=10, seed=1)
        sampler.extend(range(1000))
        assert len(sampler.sample()) == 10
        assert sampler.seen == 1000

    def test_small_stream_kept_whole(self):
        sampler = ReservoirSampler(capacity=10)
        sampler.extend(range(5))
        assert sorted(sampler.sample()) == [0, 1, 2, 3, 4]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**16))
    def test_property_uniformity_bounds(self, seed):
        """Every offered item has roughly equal inclusion probability."""
        sampler = ReservoirSampler(capacity=50, seed=seed)
        sampler.extend(range(500))
        sample = sampler.sample()
        assert len(sample) == 50
        assert all(0 <= x < 500 for x in sample)
        assert len(set(sample)) == 50  # no duplicates


class TestStratified:
    def test_per_group_quota(self):
        strata = {"a": list(range(100)), "b": list(range(100, 103))}
        sample = StratifiedSampler(per_group=5, seed=1).sample(strata)
        in_a = [r for r in sample.row_ids if r < 100]
        in_b = [r for r in sample.row_ids if r >= 100]
        assert len(in_a) == 5
        assert len(in_b) == 3  # small stratum kept whole

    def test_every_stratum_visible(self):
        strata = {i: list(range(i * 10, i * 10 + 10)) for i in range(20)}
        sample = StratifiedSampler(per_group=1, seed=1).sample(strata)
        covered = {row // 10 for row in sample.row_ids}
        assert covered == set(range(20))


class TestHistogram:
    def test_counts_sum_to_numeric_values(self):
        # lenient coercion: '12k' parses to 12000; None is skipped
        binned = histogram([1, 2, 3, "12k", None, 4.5], bins=4)
        assert sum(binned.counts) == 5

    def test_anomaly_overlay(self):
        values = [1, 2, 3, 100]
        binned = histogram(values, bins=4, anomalous_mask=[False, False, False, True])
        assert sum(binned.anomaly_counts) == 1
        assert binned.anomaly_counts[-1] == 1

    def test_empty_input(self):
        binned = histogram([])
        assert binned.counts == [0]


class TestHeatmap:
    def test_grid_shape(self):
        grid = heatmap(["a", "b", "a"], [1.0, 2.0, 3.0], bins=2)
        assert grid.categories == ["a", "b"]
        assert len(grid.counts) == 2
        assert sum(sum(row) for row in grid.counts) == 3

    def test_anomaly_counts(self):
        grid = heatmap(["a", "a"], [1.0, 2.0], bins=2,
                       anomalous_mask=[True, False])
        assert sum(sum(row) for row in grid.anomaly_counts) == 1


class TestDecimation:
    def test_short_series_untouched(self):
        xs, ys = minmax_decimate([1, 2, 3], [4, 5, 6], max_points=10)
        assert xs == [1, 2, 3]

    def test_extremes_preserved(self):
        rng = np.random.default_rng(7)
        xs = list(range(10_000))
        ys = list(rng.normal(0, 1, 10_000))
        ys[5000] = 100.0  # a spike decimation must keep
        dx, dy = minmax_decimate(xs, ys, max_points=100)
        assert len(dx) <= 120
        assert max(dy) == 100.0
        assert min(dy) == min(ys)

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            minmax_decimate([1, 2], [1])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=300),
       st.integers(1, 30))
def test_property_histogram_conserves_count(values, bins):
    binned = histogram(values, bins=bins)
    assert sum(binned.counts) == len(values)
