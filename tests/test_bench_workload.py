"""Tests for the benchmark harness (workload generation and reporting)."""

import pytest

from repro.bench import (
    IMPUTE,
    REMOVAL,
    TimingSummary,
    candidate_rows,
    print_generic,
    print_hopara,
    print_table1,
    run_workload,
)
from repro.config import BuckarooConfig
from repro.core.session import BuckarooSession
from repro.datasets import make_stackoverflow


@pytest.fixture(params=["sql", "frame"])
def session(request):
    frame, _ = make_stackoverflow(scale=0.005, seed=3)
    session = BuckarooSession.from_frame(frame, backend=request.param)
    session.generate_groups(
        cat_cols=["country", "ed_level"],
        num_cols=["converted_comp_yearly", "years_code"],
    )
    session.detect()
    return session


class TestWorkload:
    def test_candidate_rows_prefer_anomalous(self, session):
        rows = candidate_rows(session, n_ops=5, seed=1)
        anomalous = session.engine.index.rows_with_errors()
        assert len(rows) == 5
        assert set(rows) <= anomalous | set(session.backend.all_row_ids())
        assert set(rows[: min(5, len(anomalous))]) <= anomalous

    def test_removal_workload(self, session):
        before = session.backend.row_count()
        result = run_workload(session, REMOVAL, n_ops=5, seed=1)
        assert result.n_ops == 5
        assert session.backend.row_count() == before - 5
        assert result.mean_backend > 0
        assert result.mean_replot > 0
        assert result.mean_total == pytest.approx(
            result.mean_backend + result.mean_replot
        )

    def test_impute_workload(self, session):
        before = session.backend.row_count()
        result = run_workload(session, IMPUTE, n_ops=5, seed=1)
        assert result.n_ops == 5
        assert session.backend.row_count() == before  # impute never deletes
        assert result.total_seconds > 0

    def test_workload_is_undoable(self, session):
        state = {
            row_id: session.backend.row(row_id)
            for row_id in session.backend.all_row_ids()
        }
        run_workload(session, REMOVAL, n_ops=3, seed=1)
        for _ in range(3):
            session.undo()
        restored = {
            row_id: session.backend.row(row_id)
            for row_id in session.backend.all_row_ids()
        }
        assert restored == state

    def test_unknown_kind(self, session):
        with pytest.raises(ValueError):
            run_workload(session, "explode")


class TestTiming:
    def test_summary_stats(self):
        summary = TimingSummary.of([0.1, 0.2, 0.3, 0.4])
        assert summary.n == 4
        assert summary.mean == pytest.approx(0.25)
        assert summary.median == pytest.approx(0.25)
        assert summary.total == pytest.approx(1.0)
        assert summary.p95 >= summary.median

    def test_empty(self):
        assert TimingSummary.of([]).n == 0

    def test_as_ms(self):
        assert TimingSummary.of([0.5]).as_ms()["mean_ms"] == pytest.approx(500)


class TestReport:
    def test_table1_format(self, capsys):
        table = print_table1([{
            "dataset": "StackOverflow", "sql_removal": 0.18, "sql_impute": 0.16,
            "frame_removal": 1.69, "frame_impute": 1.27,
        }])
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "0.18 sec" in table
        assert "StackOverflow" in table

    def test_hopara_format(self, capsys):
        table = print_hopara([{
            "dataset": "Adult Income", "n": 20, "mean_ms": 173.0, "p95_ms": 210.0,
        }])
        assert "173.00 ms" in table
        assert "Hopara" in capsys.readouterr().out

    def test_generic_format(self, capsys):
        print_generic("Ablation", ["a", "b"], [[1, 2]])
        out = capsys.readouterr().out
        assert "Ablation" in out
