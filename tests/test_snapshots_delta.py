"""Unit and property tests for differential snapshots."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SnapshotError
from repro.snapshots import DeltaSnapshot


def make_delta():
    return DeltaSnapshot(
        deleted={1: {"a": 10, "b": "x"}},
        inserted={5: {"a": 50, "b": "y"}},
        updated={2: {"a": (20, 21)}},
        label="test",
    )


class TestBasics:
    def test_empty(self):
        assert DeltaSnapshot().is_empty
        assert not make_delta().is_empty

    def test_row_ids(self):
        assert make_delta().row_ids() == {1, 2, 5}

    def test_size_bytes_positive(self):
        assert make_delta().size_bytes() > 0

    def test_inverse_swaps(self):
        inverse = make_delta().inverse()
        assert inverse.deleted == {5: {"a": 50, "b": "y"}}
        assert inverse.inserted == {1: {"a": 10, "b": "x"}}
        assert inverse.updated == {2: {"a": (21, 20)}}

    def test_double_inverse_is_identity(self):
        delta = make_delta()
        again = delta.inverse().inverse()
        assert again.deleted == delta.deleted
        assert again.inserted == delta.inserted
        assert again.updated == delta.updated

    def test_serialization_roundtrip(self):
        delta = make_delta()
        again = DeltaSnapshot.from_dict(delta.to_dict())
        assert again.deleted == delta.deleted
        assert again.inserted == delta.inserted
        assert again.updated == delta.updated

    def test_malformed_payload(self):
        with pytest.raises(SnapshotError):
            DeltaSnapshot.from_dict({"updated": {"not_an_int": {}}})

    def test_merge_disjoint(self):
        first = DeltaSnapshot(updated={1: {"a": (1, 2)}})
        second = DeltaSnapshot(updated={1: {"b": (5, 6)}, 2: {"a": (0, 9)}})
        merged = first.merge_disjoint(second)
        assert merged.updated == {1: {"a": (1, 2), "b": (5, 6)}, 2: {"a": (0, 9)}}


class TestCompose:
    def test_update_then_update(self):
        first = DeltaSnapshot(updated={1: {"a": (0, 1)}})
        second = DeltaSnapshot(updated={1: {"a": (1, 2)}})
        combined = first.compose(second)
        assert combined.updated == {1: {"a": (0, 2)}}

    def test_update_then_delete_records_original(self):
        first = DeltaSnapshot(updated={1: {"a": (0, 1)}})
        second = DeltaSnapshot(deleted={1: {"a": 1, "b": "x"}})
        combined = first.compose(second)
        assert combined.updated == {}
        assert combined.deleted == {1: {"a": 0, "b": "x"}}  # pre-update value

    def test_insert_then_delete_cancels(self):
        first = DeltaSnapshot(inserted={9: {"a": 1}})
        second = DeltaSnapshot(deleted={9: {"a": 1}})
        combined = first.compose(second)
        assert combined.is_empty

    def test_insert_then_update_folds(self):
        first = DeltaSnapshot(inserted={9: {"a": 1}})
        second = DeltaSnapshot(updated={9: {"a": (1, 7)}})
        combined = first.compose(second)
        assert combined.inserted == {9: {"a": 7}}

    def test_delete_then_reinsert_becomes_update(self):
        first = DeltaSnapshot(deleted={3: {"a": 1, "b": "x"}})
        second = DeltaSnapshot(inserted={3: {"a": 2, "b": "x"}})
        combined = first.compose(second)
        assert combined.deleted == {}
        assert combined.updated == {3: {"a": (1, 2)}}

    def test_delete_then_identical_reinsert_cancels(self):
        first = DeltaSnapshot(deleted={3: {"a": 1}})
        second = DeltaSnapshot(inserted={3: {"a": 1}})
        assert first.compose(second).is_empty


def _apply(state: dict, delta: DeltaSnapshot) -> dict:
    """Reference model: apply a delta to {row_id: {col: value}}."""
    state = {rid: dict(vals) for rid, vals in state.items()}
    for rid in delta.deleted:
        del state[rid]
    for rid, vals in delta.inserted.items():
        state[rid] = dict(vals)
    for rid, cells in delta.updated.items():
        for col, (_old, new) in cells.items():
            state[rid][col] = new
    return state


@st.composite
def _state_and_ops(draw):
    n = draw(st.integers(2, 8))
    state = {rid: {"a": draw(st.integers(0, 9))} for rid in range(1, n + 1)}
    ops = draw(st.lists(
        st.tuples(st.sampled_from(["delete", "update", "insert"]),
                  st.integers(1, n + 4), st.integers(0, 9)),
        max_size=12,
    ))
    return state, ops


@settings(max_examples=200, deadline=None)
@given(_state_and_ops())
def test_property_compose_equals_sequential_apply(case):
    """Composing deltas must equal applying them one by one."""
    state, ops = case
    current = {rid: dict(v) for rid, v in state.items()}
    deltas = []
    next_id = max(state) + 1
    for kind, rid, value in ops:
        if kind == "delete" and rid in current:
            delta = DeltaSnapshot(deleted={rid: dict(current[rid])})
        elif kind == "update" and rid in current:
            delta = DeltaSnapshot(updated={rid: {"a": (current[rid]["a"], value)}})
        elif kind == "insert" and rid not in current:
            delta = DeltaSnapshot(inserted={rid: {"a": value}})
        else:
            continue
        deltas.append(delta)
        current = _apply(current, delta)
    combined = DeltaSnapshot()
    for delta in deltas:
        combined = combined.compose(delta)
    assert _apply(state, combined) == current


@settings(max_examples=200, deadline=None)
@given(_state_and_ops())
def test_property_inverse_undoes(case):
    """state -> apply(delta) -> apply(inverse) round-trips."""
    state, ops = case
    current = {rid: dict(v) for rid, v in state.items()}
    for kind, rid, value in ops:
        if kind == "delete" and rid in current:
            delta = DeltaSnapshot(deleted={rid: dict(current[rid])})
        elif kind == "update" and rid in current:
            delta = DeltaSnapshot(updated={rid: {"a": (current[rid]["a"], value)}})
        elif kind == "insert" and rid not in current:
            delta = DeltaSnapshot(inserted={rid: {"a": value}})
        else:
            continue
        after = _apply(current, delta)
        assert _apply(after, delta.inverse()) == current
        current = after
