"""Contract tests: both backends must behave identically.

Every test is parametrized over the SQL and frame backends — Table 1's
comparison is only meaningful if they compute the same answers.
"""

import pytest

from repro.backends import FrameBackend, SQLBackend, make_backend
from repro.frame import DataFrame

ROWS = [
    ("Bhutan", "BS", 50000.0, 34),
    ("Bhutan", "MS", 61000.0, 29),
    ("Bhutan", "BS", "12k", 41),
    ("Bhutan", "PhD", 1000000.0, 38),
    ("Lesotho", "PhD", 72000.0, 35),
    ("Lesotho", "BS", None, 52),
    ("Lesotho", "MS", 48000.0, 44),
    ("Lesotho", "BS", 55000.0, 31),
    ("Nauru", "BS", 51000.0, 27),
]
COLUMNS = ["country", "degree", "income", "age"]


@pytest.fixture(params=["sql", "frame"])
def backend(request):
    frame = DataFrame.from_rows(ROWS, COLUMNS)
    return make_backend(frame, request.param)


class TestSchema:
    def test_kind_factory(self):
        frame = DataFrame.from_rows(ROWS, COLUMNS)
        assert isinstance(make_backend(frame, "sql"), SQLBackend)
        assert isinstance(make_backend(frame, "frame"), FrameBackend)
        with pytest.raises(ValueError):
            make_backend(frame, "duckdb")

    def test_columns_and_counts(self, backend):
        assert backend.column_names() == COLUMNS
        assert backend.row_count() == 9

    def test_categorical_columns(self, backend):
        cats = backend.categorical_columns()
        assert "country" in cats and "degree" in cats

    def test_numerical_columns(self, backend):
        nums = backend.numerical_columns()
        assert "income" in nums and "age" in nums


class TestReads:
    def test_row_ids_start_at_one(self, backend):
        assert backend.all_row_ids() == list(range(1, 10))

    def test_row(self, backend):
        row = backend.row(1)
        assert row["country"] == "Bhutan"
        assert row["age"] == 34

    def test_values_aligned(self, backend):
        assert backend.values("country", [9, 1]) == ["Nauru", "Bhutan"]

    def test_distinct_values(self, backend):
        assert set(backend.distinct_values("country")) == {"Bhutan", "Lesotho", "Nauru"}

    def test_group_row_ids(self, backend):
        assert sorted(backend.group_row_ids("country", "Nauru")) == [9]
        assert sorted(backend.group_row_ids("country", "Bhutan")) == [1, 2, 3, 4]

    def test_group_sizes(self, backend):
        assert backend.group_sizes("country") == {
            "Bhutan": 4, "Lesotho": 4, "Nauru": 1,
        }

    def test_group_sizes_with_missing_key(self, backend):
        delta = backend.set_cells("country", [9], None)
        sizes = backend.group_sizes("country")
        assert sizes.get(None) == 1
        backend.revert_delta(delta)

    def test_numeric_stats_global(self, backend):
        stats = backend.numeric_stats("income")
        # '12k' (text) and None excluded: 7 numeric values
        assert stats.count == 7
        assert stats.min == 48000.0
        assert stats.max == 1000000.0

    def test_numeric_stats_scoped(self, backend):
        stats = backend.numeric_stats("income", "country", "Lesotho")
        assert stats.count == 3
        assert stats.mean == pytest.approx((72000 + 48000 + 55000) / 3)


class TestDetectorCapabilities:
    def test_missing(self, backend):
        assert backend.missing_row_ids("income") == [6]
        assert backend.missing_row_ids("income", "country", "Lesotho") == [6]
        assert backend.missing_row_ids("income", "country", "Bhutan") == []

    def test_mismatch(self, backend):
        assert backend.mismatch_row_ids("income") == [3]
        assert backend.mismatch_row_ids("income", "degree", "BS") == [3]

    def test_out_of_range(self, backend):
        rows = backend.out_of_range_row_ids("income", 0, 100000)
        assert rows == [4]
        scoped = backend.out_of_range_row_ids("income", 0, 100000, "country", "Lesotho")
        assert scoped == []


class TestWrites:
    def test_delete_and_revert(self, backend):
        delta = backend.delete_rows([1, 3])
        assert backend.row_count() == 7
        assert set(delta.deleted) == {1, 3}
        assert delta.deleted[3]["income"] == "12k"
        backend.revert_delta(delta)
        assert backend.row_count() == 9
        assert backend.row(3)["income"] == "12k"

    def test_set_cells_broadcast_and_revert(self, backend):
        delta = backend.set_cells("income", [1, 2], 99.0)
        assert backend.values("income", [1, 2]) == [99.0, 99.0]
        backend.revert_delta(delta)
        assert backend.values("income", [1, 2]) == [50000.0, 61000.0]

    def test_set_cells_per_row_values(self, backend):
        delta = backend.set_cells("age", [1, 2], values=[100, 200])
        assert backend.values("age", [1, 2]) == [100, 200]
        assert delta.updated[1]["age"] == (34, 100)
        backend.revert_delta(delta)

    def test_set_cells_skips_noop_writes(self, backend):
        delta = backend.set_cells("age", [1], 34)
        assert delta.is_empty

    def test_set_cells_to_null(self, backend):
        delta = backend.set_cells("income", [1], None)
        assert backend.values("income", [1]) == [None]
        assert backend.missing_row_ids("income") == [1, 6]
        backend.revert_delta(delta)

    def test_group_membership_updates_after_delete(self, backend):
        delta = backend.delete_rows([9])
        assert backend.group_row_ids("country", "Nauru") == []
        backend.revert_delta(delta)
        assert backend.group_row_ids("country", "Nauru") == [9]

    def test_group_membership_updates_after_relabel(self, backend):
        delta = backend.set_cells("country", [9], "Other")
        assert backend.group_row_ids("country", "Other") == [9]
        assert backend.group_row_ids("country", "Nauru") == []
        backend.revert_delta(delta)

    def test_delete_everything_and_restore(self, backend):
        delta = backend.delete_rows(backend.all_row_ids())
        assert backend.row_count() == 0
        backend.revert_delta(delta)
        assert backend.row_count() == 9


class TestInfrastructure:
    def test_to_frame_roundtrip(self, backend):
        frame = backend.to_frame()
        assert frame.n_rows == 9
        assert frame.column_names == COLUMNS

    def test_to_frame_with_row_ids(self, backend):
        frame = backend.to_frame(include_row_ids=True)
        assert frame.column_names[0] == "_row_id"
        assert frame["_row_id"].to_list() == list(range(1, 10))

    def test_ensure_index_idempotent(self, backend):
        backend.ensure_index("country")
        backend.ensure_index("country")
        # still answers correctly
        assert sorted(backend.group_row_ids("country", "Nauru")) == [9]

    def test_flush(self, backend):
        backend.set_cells("age", [1], 99)
        flushed = backend.flush()
        assert flushed >= 0  # sql counts wal records, frame is a no-op


class TestSQLSpecific:
    def test_detectors_run_as_sql(self):
        frame = DataFrame.from_rows(ROWS, COLUMNS)
        backend = SQLBackend.from_frame(frame)
        plan = backend.db.explain(
            'SELECT rowid FROM data WHERE "income" IS NULL AND "country" = ?'
        )
        assert "Scan" in plan  # the capability is a real SQL query

    def test_index_created_per_chart_attribute(self):
        frame = DataFrame.from_rows(ROWS, COLUMNS)
        backend = SQLBackend.from_frame(frame)
        backend.ensure_index("country")
        backend.ensure_index("income")
        names = backend.db.index_names()
        assert "idx_data_country" in names and "idx_data_income" in names
        # text -> hash, numeric -> btree
        assert backend.db.index_catalog["idx_data_country"].kind == "hash"
        assert backend.db.index_catalog["idx_data_income"].kind == "btree"

    def test_group_lookup_uses_index(self):
        frame = DataFrame.from_rows(ROWS, COLUMNS)
        backend = SQLBackend.from_frame(frame)
        backend.ensure_index("country")
        plan = backend.db.explain('SELECT rowid FROM data WHERE "country" = ?')
        assert "IndexEqScan" in plan

    def test_set_cells_replay_matches_stored_state(self):
        """Regression: the snapshot must record exactly what SQL stored.

        On a MIXED-affinity column a digit string coerces to a number; the
        delta, the stored cell, and an undo/redo replay must all agree in
        value *and* type, or replays drift away from the table state.
        """
        frame = DataFrame.from_rows(
            [("a", 1.5), ("b", "x"), ("c", 3.0)], ["k", "m"]
        )
        assert {c.name: c.dtype for c in frame.columns}["m"] == "mixed"
        backend = SQLBackend.from_frame(frame)

        delta = backend.set_cells("m", [2], "7")
        stored = backend.values("m", [2])[0]
        _old, recorded = delta.updated[2]["m"]
        assert recorded == stored and type(recorded) is type(stored)

        backend.revert_delta(delta)
        assert backend.values("m", [2])[0] == "x"
        backend.apply_delta(delta)
        replayed = backend.values("m", [2])[0]
        assert replayed == stored and type(replayed) is type(stored)
