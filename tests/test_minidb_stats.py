"""The statistics layer feeding cost-based planning: lazily rebuilt
per-column estimates, staleness tracking against Table.version, index
shortcuts, and the selectivity model."""

import pytest

from repro.minidb import Database
from repro.minidb import ast_nodes as ast
from repro.minidb.stats import (
    REBUILD_FLOOR,
    TableStats,
    conjunct_selectivity,
    estimate_filtered_rows,
    estimate_join_rows,
)


@pytest.fixture
def db() -> Database:
    db = Database()
    db.execute("CREATE TABLE t (cat TEXT, val REAL, note TEXT)")
    db.insert_rows(
        "t",
        [(f"c{i % 10}", float(i), None if i % 4 == 0 else f"n{i}")
         for i in range(400)],
    )
    return db


def _stats(db: Database, name: str = "t") -> TableStats:
    return db.stats.for_table(db.table(name))


class TestTableStats:
    def test_row_count_is_live(self, db):
        stats = _stats(db)
        assert stats.n_rows == 400
        db.execute("DELETE FROM t WHERE val < 100")
        assert stats.n_rows == 300  # exact, no rebuild needed

    def test_distinct_and_null_fraction_from_scan(self, db):
        stats = _stats(db)
        assert stats.distinct("cat") == pytest.approx(10, abs=1)
        assert stats.null_fraction("note") == pytest.approx(0.25, abs=0.01)
        assert stats.null_fraction("cat") == 0.0

    def test_distinct_unique_column(self, db):
        assert _stats(db).distinct("val") == pytest.approx(400, rel=0.2)

    def test_hash_index_gives_exact_distinct(self, db):
        db.execute("CREATE INDEX ic ON t (cat) USING hash")
        db.stats.analyze()
        assert _stats(db).distinct("cat") == 10

    def test_btree_index_gives_exact_distinct_and_nulls(self, db):
        db.execute("CREATE INDEX inote ON t (note)")
        db.stats.analyze()
        stats = _stats(db)
        # 300 distinct non-null notes + the NULL group excluded
        assert stats.distinct("note") == 300
        assert stats.null_fraction("note") == pytest.approx(0.25)

    def test_rowid_is_treated_as_unique(self, db):
        assert _stats(db).distinct("rowid") == 400

    def test_small_drift_does_not_rebuild(self, db):
        stats = _stats(db)
        stats.refresh()
        built = stats._built_version
        db.execute("INSERT INTO t VALUES ('zz', 1.0, 'x')")
        stats.refresh()
        assert stats._built_version == built

    def test_large_drift_rebuilds_on_demand(self, db):
        stats = _stats(db)
        stats.refresh()
        assert stats.distinct("cat") <= 11
        db.insert_rows(
            "t", [(f"new{i}", 1.0, "x") for i in range(2 * REBUILD_FLOOR + 400)]
        )
        assert stats.stale()
        assert stats.distinct("cat") > 100  # rebuilt with the new categories

    def test_analyze_forces_rebuild(self, db):
        stats = _stats(db)
        stats.refresh()
        db.execute("INSERT INTO t VALUES ('only', 1.0, 'x')")
        db.analyze()
        assert not stats.stale()
        assert stats._built_rows == 401

    def test_drop_table_forgets_stats(self, db):
        db.stats.for_table(db.table("t"))
        db.execute("DROP TABLE t")
        assert "t" not in db.stats._tables

    def test_recreated_table_gets_fresh_stats(self, db):
        old = db.stats.for_table(db.table("t"))
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (x INT)")
        new = db.stats.for_table(db.table("t"))
        assert new is not old and new.n_rows == 0


class TestSelectivityModel:
    def test_equality_uses_distinct(self, db):
        stats = _stats(db)
        conjunct = ast.Binary("=", ast.ColumnRef(None, "cat"), ast.Literal("c3"))
        assert conjunct_selectivity(stats, conjunct) == pytest.approx(0.1, abs=0.02)

    def test_in_list_scales_with_items(self, db):
        stats = _stats(db)
        conjunct = ast.InList(
            ast.ColumnRef(None, "cat"), (ast.Literal("c1"), ast.Literal("c2"))
        )
        assert conjunct_selectivity(stats, conjunct) == pytest.approx(0.2, abs=0.04)

    def test_is_null_uses_null_fraction(self, db):
        stats = _stats(db)
        conjunct = ast.IsNull(ast.ColumnRef(None, "note"))
        assert conjunct_selectivity(stats, conjunct) == pytest.approx(0.25, abs=0.02)
        negated = ast.IsNull(ast.ColumnRef(None, "note"), negated=True)
        assert conjunct_selectivity(stats, negated) == pytest.approx(0.75, abs=0.02)

    def test_or_combines_disjunctively(self, db):
        stats = _stats(db)
        eq = ast.Binary("=", ast.ColumnRef(None, "cat"), ast.Literal("c3"))
        both = ast.Binary("OR", eq, eq)
        single = conjunct_selectivity(stats, eq)
        assert single < conjunct_selectivity(stats, both) <= 2 * single

    def test_filtered_rows_estimate(self, db):
        stats = _stats(db)
        eq = ast.Binary("=", ast.ColumnRef(None, "cat"), ast.Literal("c3"))
        assert estimate_filtered_rows(stats, [eq]) == pytest.approx(40, rel=0.3)

    def test_join_estimate(self):
        assert estimate_join_rows(1000.0, 500.0, [(100.0, 50.0)]) == pytest.approx(5000)
        assert estimate_join_rows(10.0, 10.0, []) == 100.0  # cross product


class TestBTreeDistinctCounter:
    def test_n_keys_is_maintained_incrementally(self):
        db = Database()
        db.execute("CREATE TABLE t (v REAL)")
        db.execute("CREATE INDEX iv ON t (v)")
        db.insert_rows("t", [(float(i % 5),) for i in range(50)])
        index = db.table("t").indexes["iv"]
        assert index.n_keys == 5
        db.execute("DELETE FROM t WHERE v = 0")
        assert index.n_keys == 4
        db.execute("UPDATE t SET v = 9 WHERE v = 1")
        assert index.n_keys == 4  # key 1 removed, key 9 added
        index._tree.check_invariants()


class TestMostCommonValues:
    """MCV lists: skewed equality keys priced at their true fraction."""

    @pytest.fixture
    def skewed(self) -> Database:
        db = Database()
        db.execute("CREATE TABLE s (id INTEGER, tag TEXT)")
        # 90% of rows carry 'hot'; the rest are singletons
        db.insert_rows(
            "s",
            [(i, "hot" if i % 10 else f"rare{i}") for i in range(2000)],
        )
        db.execute("CREATE INDEX idx_tag ON s (tag)")
        db.analyze()
        return db

    def test_mcv_list_captures_heavy_hitter(self, skewed):
        col = _stats(skewed, "s").column("tag")
        assert col.mcv is not None
        assert col.mcv["hot"] == pytest.approx(0.9, abs=0.02)

    def test_uniform_column_keeps_no_mcv(self, db):
        # every cat value sits at the average frequency: nothing qualifies
        db.analyze()
        assert _stats(db).column("cat").mcv is None

    def test_equality_selectivity_uses_mcv(self, skewed):
        stats = _stats(skewed, "s")
        hot = ast.Binary("=", ast.ColumnRef(None, "tag"), ast.Literal("hot"))
        rare = ast.Binary("=", ast.ColumnRef(None, "tag"), ast.Literal("rare70"))
        assert conjunct_selectivity(stats, hot) == pytest.approx(0.9, abs=0.02)
        # miss: residual mass spread over the remaining distincts
        assert conjunct_selectivity(stats, rare) < 0.01

    def test_inequality_complements_mcv(self, skewed):
        stats = _stats(skewed, "s")
        ne = ast.Binary("<>", ast.ColumnRef(None, "tag"), ast.Literal("hot"))
        assert conjunct_selectivity(stats, ne) == pytest.approx(0.1, abs=0.02)

    def test_parameter_comparand_keeps_uniform_model(self, skewed):
        # a param slot could bind the hitter or a rare value: cached plans
        # must not bake one binding's selectivity in
        stats = _stats(skewed, "s")
        param = ast.Binary("=", ast.ColumnRef(None, "tag"), ast.Param(0))
        assert conjunct_selectivity(stats, param) == pytest.approx(
            1.0 / stats.distinct("tag"), rel=0.01
        )

    def test_plan_flips_between_index_and_seq_scan(self, skewed):
        hot_plan = "\n".join(
            r[0] for r in skewed.execute(
                "EXPLAIN SELECT COUNT(*) FROM s WHERE tag = 'hot'"
            ).rows
        )
        rare_plan = "\n".join(
            r[0] for r in skewed.execute(
                "EXPLAIN SELECT COUNT(*) FROM s WHERE tag = 'rare70'"
            ).rows
        )
        assert "SeqScan" in hot_plan and "IndexEqScan" not in hot_plan
        assert "IndexEqScan" in rare_plan
        # and both plans still return correct results
        assert skewed.execute(
            "SELECT COUNT(*) FROM s WHERE tag = 'hot'"
        ).rows == [(1800,)]
        assert skewed.execute(
            "SELECT COUNT(*) FROM s WHERE tag = 'rare70'"
        ).rows == [(1,)]
