"""The statistics layer feeding cost-based planning: lazily rebuilt
per-column estimates, staleness tracking against Table.version, index
shortcuts, and the selectivity model."""

import pytest

from repro.minidb import Database
from repro.minidb import ast_nodes as ast
from repro.minidb.stats import (
    REBUILD_FLOOR,
    TableStats,
    conjunct_selectivity,
    estimate_filtered_rows,
    estimate_join_rows,
)


@pytest.fixture
def db() -> Database:
    db = Database()
    db.execute("CREATE TABLE t (cat TEXT, val REAL, note TEXT)")
    db.insert_rows(
        "t",
        [(f"c{i % 10}", float(i), None if i % 4 == 0 else f"n{i}")
         for i in range(400)],
    )
    return db


def _stats(db: Database, name: str = "t") -> TableStats:
    return db.stats.for_table(db.table(name))


class TestTableStats:
    def test_row_count_is_live(self, db):
        stats = _stats(db)
        assert stats.n_rows == 400
        db.execute("DELETE FROM t WHERE val < 100")
        assert stats.n_rows == 300  # exact, no rebuild needed

    def test_distinct_and_null_fraction_from_scan(self, db):
        stats = _stats(db)
        assert stats.distinct("cat") == pytest.approx(10, abs=1)
        assert stats.null_fraction("note") == pytest.approx(0.25, abs=0.01)
        assert stats.null_fraction("cat") == 0.0

    def test_distinct_unique_column(self, db):
        assert _stats(db).distinct("val") == pytest.approx(400, rel=0.2)

    def test_hash_index_gives_exact_distinct(self, db):
        db.execute("CREATE INDEX ic ON t (cat) USING hash")
        db.stats.analyze()
        assert _stats(db).distinct("cat") == 10

    def test_btree_index_gives_exact_distinct_and_nulls(self, db):
        db.execute("CREATE INDEX inote ON t (note)")
        db.stats.analyze()
        stats = _stats(db)
        # 300 distinct non-null notes + the NULL group excluded
        assert stats.distinct("note") == 300
        assert stats.null_fraction("note") == pytest.approx(0.25)

    def test_rowid_is_treated_as_unique(self, db):
        assert _stats(db).distinct("rowid") == 400

    def test_small_drift_does_not_rebuild(self, db):
        stats = _stats(db)
        stats.refresh()
        built = stats._built_version
        db.execute("INSERT INTO t VALUES ('zz', 1.0, 'x')")
        stats.refresh()
        assert stats._built_version == built

    def test_large_drift_rebuilds_on_demand(self, db):
        stats = _stats(db)
        stats.refresh()
        assert stats.distinct("cat") <= 11
        db.insert_rows(
            "t", [(f"new{i}", 1.0, "x") for i in range(2 * REBUILD_FLOOR + 400)]
        )
        assert stats.stale()
        assert stats.distinct("cat") > 100  # rebuilt with the new categories

    def test_analyze_forces_rebuild(self, db):
        stats = _stats(db)
        stats.refresh()
        db.execute("INSERT INTO t VALUES ('only', 1.0, 'x')")
        db.analyze()
        assert not stats.stale()
        assert stats._built_rows == 401

    def test_drop_table_forgets_stats(self, db):
        db.stats.for_table(db.table("t"))
        db.execute("DROP TABLE t")
        assert "t" not in db.stats._tables

    def test_recreated_table_gets_fresh_stats(self, db):
        old = db.stats.for_table(db.table("t"))
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (x INT)")
        new = db.stats.for_table(db.table("t"))
        assert new is not old and new.n_rows == 0


class TestSelectivityModel:
    def test_equality_uses_distinct(self, db):
        stats = _stats(db)
        conjunct = ast.Binary("=", ast.ColumnRef(None, "cat"), ast.Literal("c3"))
        assert conjunct_selectivity(stats, conjunct) == pytest.approx(0.1, abs=0.02)

    def test_in_list_scales_with_items(self, db):
        stats = _stats(db)
        conjunct = ast.InList(
            ast.ColumnRef(None, "cat"), (ast.Literal("c1"), ast.Literal("c2"))
        )
        assert conjunct_selectivity(stats, conjunct) == pytest.approx(0.2, abs=0.04)

    def test_is_null_uses_null_fraction(self, db):
        stats = _stats(db)
        conjunct = ast.IsNull(ast.ColumnRef(None, "note"))
        assert conjunct_selectivity(stats, conjunct) == pytest.approx(0.25, abs=0.02)
        negated = ast.IsNull(ast.ColumnRef(None, "note"), negated=True)
        assert conjunct_selectivity(stats, negated) == pytest.approx(0.75, abs=0.02)

    def test_or_combines_disjunctively(self, db):
        stats = _stats(db)
        eq = ast.Binary("=", ast.ColumnRef(None, "cat"), ast.Literal("c3"))
        both = ast.Binary("OR", eq, eq)
        single = conjunct_selectivity(stats, eq)
        assert single < conjunct_selectivity(stats, both) <= 2 * single

    def test_filtered_rows_estimate(self, db):
        stats = _stats(db)
        eq = ast.Binary("=", ast.ColumnRef(None, "cat"), ast.Literal("c3"))
        assert estimate_filtered_rows(stats, [eq]) == pytest.approx(40, rel=0.3)

    def test_join_estimate(self):
        assert estimate_join_rows(1000.0, 500.0, [(100.0, 50.0)]) == pytest.approx(5000)
        assert estimate_join_rows(10.0, 10.0, []) == 100.0  # cross product


class TestBTreeDistinctCounter:
    def test_n_keys_is_maintained_incrementally(self):
        db = Database()
        db.execute("CREATE TABLE t (v REAL)")
        db.execute("CREATE INDEX iv ON t (v)")
        db.insert_rows("t", [(float(i % 5),) for i in range(50)])
        index = db.table("t").indexes["iv"]
        assert index.n_keys == 5
        db.execute("DELETE FROM t WHERE v = 0")
        assert index.n_keys == 4
        db.execute("UPDATE t SET v = 9 WHERE v = 1")
        assert index.n_keys == 4  # key 1 removed, key 9 added
        index._tree.check_invariants()
