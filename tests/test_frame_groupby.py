"""Unit tests for GroupBy."""

import pytest

from repro.errors import MissingColumnError
from repro.frame import DataFrame


@pytest.fixture
def df():
    return DataFrame.from_dict({
        "country": ["Bhutan", "Bhutan", "Lesotho", None, "Lesotho"],
        "income": [50000.0, None, 61000.0, 45000.0, 48000.0],
    })


class TestGroups:
    def test_groups_partition_all_rows(self, df):
        groups = df.groupby("country").groups()
        total = sum(len(positions) for positions in groups.values())
        assert total == df.n_rows

    def test_missing_key_forms_own_group(self, df):
        groups = df.groupby("country").groups()
        assert None in groups
        assert list(groups[None]) == [3]

    def test_size(self, df):
        assert df.groupby("country").size() == {"Bhutan": 2, "Lesotho": 2, None: 1}

    def test_keys_first_seen_order(self, df):
        assert df.groupby("country").keys() == ["Bhutan", "Lesotho", None]

    def test_unknown_key_column(self, df):
        with pytest.raises(MissingColumnError):
            df.groupby("nope")


class TestAgg:
    def test_count_skips_missing(self, df):
        out = df.groupby("country").agg("income", ["count"])
        lookup = dict(zip(out["country"], out["income_count"]))
        assert lookup["Bhutan"] == 1.0
        assert lookup["Lesotho"] == 2.0

    def test_mean(self, df):
        out = df.groupby("country").agg("income", ["mean"])
        lookup = dict(zip(out["country"], out["income_mean"]))
        assert lookup["Lesotho"] == 54500.0

    def test_multiple_functions(self, df):
        out = df.groupby("country").agg("income", ["min", "max", "sum"])
        assert set(out.column_names) == {"country", "income_min", "income_max", "income_sum"}

    def test_unsupported_function(self, df):
        with pytest.raises(ValueError, match="unsupported aggregate"):
            df.groupby("country").agg("income", ["p99"])

    def test_missing_counts(self, df):
        counts = df.groupby("country").missing_counts("income")
        assert counts["Bhutan"] == 1
        assert counts["Lesotho"] == 0
