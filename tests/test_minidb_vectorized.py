"""Property: row and batch pipelines return bit-identical results.

The planner's ``_vectorize`` pass may lower any analytic plan onto
columnar batch operators, but the answer — values, storage classes,
row order — must never change.  The suite drives a query corpus through
``pragma("vectorize", ...)`` in all three modes over adversarial data
(NULLs, bools, floats, huge ints past 2^53, numeric-looking text) and
compares ``repr`` for exactness, plus the mode-specific contracts: the
plan-cache key covers the knob, EXPLAIN labels batch operators, ANALYZE
counts logical rows, and MVCC snapshots fall back to row scans.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatabaseError
from repro.minidb import Database

MODES = ("off", "on", "auto")

CATEGORIES = ["a", "b", "c", "d", None]

# global aggregates, grouped aggregates, filters, and a join: every
# shape the _vectorize pass may lower, each with an ORDER BY (or a
# single output row) so comparisons are order-exact, not just set-equal
QUERIES = [
    ("SELECT COUNT(*), COUNT(val), SUM(val), AVG(val) FROM t", ()),
    ("SELECT MIN(val), MAX(val), MIN(cat), MAX(cat) FROM t", ()),
    ("SELECT COUNT(*), SUM(val) FROM t WHERE val > ?", (0,)),
    ("SELECT COUNT(*) FROM t WHERE val BETWEEN ? AND ?", (-10, 10)),
    ("SELECT COUNT(*) FROM t WHERE val NOT BETWEEN ? AND ?", (-10, 10)),
    ("SELECT COUNT(*) FROM t WHERE cat <> 'c' AND val <= 25", ()),
    ("SELECT COUNT(*) FROM t WHERE cat IN ('a', 'c')", ()),
    ("SELECT COUNT(*) FROM t WHERE val IS NULL", ()),
    ("SELECT COUNT(*) FROM t WHERE val IS NOT NULL AND cat = ?", ("b",)),
    ("SELECT cat, COUNT(*), SUM(val), AVG(val), MIN(val), MAX(val) "
     "FROM t GROUP BY cat ORDER BY cat", ()),
    ("SELECT cat, COUNT(*) FROM t WHERE val >= ? GROUP BY cat "
     "HAVING COUNT(*) > 1 ORDER BY cat", (-20,)),
    ("SELECT rowid, cat, val FROM t WHERE val < ? ORDER BY rowid", (30,)),
    ("SELECT t.cat, COUNT(*) FROM t JOIN dims ON t.cat = dims.cat "
     "GROUP BY t.cat ORDER BY t.cat", ()),
    ("SELECT COUNT(*) FROM t JOIN dims ON t.cat = dims.cat "
     "AND dims.weight > ?", (1.0,)),
]


def _make_db(rows):
    db = Database()
    db.execute("CREATE TABLE t (cat TEXT, val REAL)")
    db.executemany("INSERT INTO t VALUES (?, ?)", rows)
    db.execute("CREATE TABLE dims (cat TEXT, weight REAL)")
    db.executemany("INSERT INTO dims VALUES (?, ?)",
                   [("a", 0.5), ("b", 2.0), ("c", 3.0), ("c", 4.0)])
    return db


def _answers(db, sql, params):
    out = {}
    for mode in MODES:
        db.pragma("vectorize", mode)
        out[mode] = list(map(repr, db.execute(sql, params).rows))
    db.pragma("vectorize", "auto")
    return out


@st.composite
def _dataset(draw):
    n = draw(st.integers(5, 60))
    rows = []
    for _ in range(n):
        cat = draw(st.sampled_from(CATEGORIES))
        val = draw(st.one_of(
            st.none(),
            st.booleans(),
            st.integers(-50, 50),
            st.integers(2 ** 53, 2 ** 60),  # beyond exact float range
            st.floats(-1e3, 1e3),
            st.sampled_from(["12k", "oops"]),  # text contamination
        ))
        rows.append((cat, val))
    return rows


@settings(max_examples=60, deadline=None)
@given(_dataset())
def test_property_modes_agree(rows):
    db = _make_db(rows)
    for sql, params in QUERIES:
        answers = _answers(db, sql, params)
        assert answers["off"] == answers["on"], (sql, rows)
        assert answers["off"] == answers["auto"], (sql, rows)


class TestParityCorners:
    def test_empty_table_global_aggregate(self):
        db = _make_db([])
        for sql in ("SELECT COUNT(*), SUM(val), AVG(val), MIN(val) FROM t",
                    "SELECT COUNT(*) FROM t WHERE val > 5"):
            answers = _answers(db, sql, ())
            assert answers["off"] == answers["on"] == answers["auto"], sql
        db.pragma("vectorize", "on")
        assert db.execute("SELECT COUNT(*), SUM(val) FROM t").rows == [(0, None)]
        # grouped aggregate over no input yields no groups
        assert db.execute("SELECT cat, COUNT(*) FROM t GROUP BY cat").rows == []

    def test_sum_result_class_tracks_inputs(self):
        """SUM stays int over ints, goes float once a float contributes."""
        db = Database()
        db.execute("CREATE TABLE t (v INT)")  # INT affinity keeps int class
        db.executemany("INSERT INTO t VALUES (?)", [(1,), (2,), (3,)])
        db.pragma("vectorize", "on")
        total = db.execute("SELECT SUM(v) FROM t").scalar()
        assert total == 6 and type(total) is int
        db.execute("INSERT INTO t VALUES (?)", (0.5,))
        total = db.execute("SELECT SUM(v) FROM t").scalar()
        assert total == 6.5 and type(total) is float

    def test_min_max_exact_past_float_precision(self):
        """2^53 + 1 and 2^53 + 2 compare equal as floats; MIN/MAX must
        break the tie exactly like the row engine's first-seen scan."""
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.executemany("INSERT INTO t VALUES (?)",
                       [(2 ** 53 + 2,), (2 ** 53 + 1,), (2 ** 53 + 2,)])
        answers = _answers(db, "SELECT MIN(v), MAX(v) FROM t", ())
        assert answers["off"] == answers["on"]

    def test_mixed_numeric_classes_sum_exactly(self):
        """Int/float mixtures past 2^53: the batch accumulator must add
        in the same order with the same class promotions as the row one."""
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.executemany("INSERT INTO t VALUES (?)",
                       [(2 ** 53 + 1,), (0.5,), (1,), (None,), (-2 ** 53,)])
        answers = _answers(
            db, "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v) FROM t", ())
        assert answers["off"] == answers["on"]

    def test_pragma_rejects_unknown_mode(self):
        db = Database()
        assert db.pragma("vectorize") == "auto"
        db.pragma("vectorize", "on")
        assert db.pragma("vectorize") == "on"
        with pytest.raises(DatabaseError):
            db.pragma("vectorize", "sometimes")


class TestPlanChoice:
    def _analytic_db(self, n=600):
        db = Database()
        db.execute("CREATE TABLE t (cat TEXT, val REAL)")
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [(f"c{i % 4}", float(i)) for i in range(n)])
        db.analyze()
        return db

    def test_auto_batches_large_analytic_queries(self):
        db = self._analytic_db()
        plan = db.explain("SELECT COUNT(*), SUM(val) FROM t WHERE val > 10")
        assert "[batch]" in plan
        assert "SeqScan" in plan

    def test_auto_keeps_rows_for_point_shapes(self):
        db = self._analytic_db()
        # LIMIT-bounded streaming shapes keep the early-exit row pipeline
        assert "[batch]" not in db.explain(
            "SELECT rowid FROM t ORDER BY val LIMIT 5")

    def test_auto_keeps_rows_below_min_rows(self):
        db = self._analytic_db(n=50)
        assert "[batch]" not in db.explain("SELECT COUNT(*) FROM t")

    def test_off_never_batches(self):
        db = self._analytic_db()
        db.pragma("vectorize", "off")
        assert "[batch]" not in db.explain("SELECT COUNT(*), SUM(val) FROM t")

    def test_plan_cache_invalidates_on_pragma_flip(self):
        """Flipping the knob must re-plan, not serve the cached tree."""
        db = self._analytic_db()
        sql = "SELECT COUNT(*), SUM(val) FROM t"
        assert "[batch]" in db.explain(sql)
        assert db.explain(sql).splitlines()[0] == "cache: hit"
        db.pragma("vectorize", "off")
        plan = db.explain(sql)
        assert "[batch]" not in plan  # a stale hit would still carry labels
        db.pragma("vectorize", "auto")
        assert "[batch]" in db.explain(sql)

    def test_explain_analyze_reports_logical_rows(self):
        """Batch operators report selected logical rows, not batch counts."""
        db = self._analytic_db()
        plan = db.explain("SELECT COUNT(*), SUM(val) FROM t WHERE val < 100",
                          analyze=True)
        assert "[batch]" in plan
        scan_rows = [line for line in plan.splitlines() if "SeqScan" in line]
        assert scan_rows and "rows=600" in scan_rows[0], plan
        filter_rows = [line for line in plan.splitlines() if "Filter" in line]
        assert filter_rows and "rows=100" in filter_rows[0], plan


class TestSnapshotFallback:
    def test_batch_plan_inside_snapshot_transaction(self):
        """A cached batch plan stays correct under MVCC: the scan resolves
        version chains row-at-a-time and re-batches."""
        db = Database()
        db.execute("CREATE TABLE t (v REAL)")
        db.executemany("INSERT INTO t VALUES (?)",
                       [(float(i),) for i in range(700)])
        db.analyze()
        db.pragma("vectorize", "on")
        sql = "SELECT COUNT(*), SUM(v) FROM t"
        before = db.execute(sql).rows
        reader = db.connect()
        writer = db.connect()
        reader.execute("BEGIN")
        assert list(reader.execute(sql)) == before  # snapshot established
        writer.execute("INSERT INTO t VALUES (?)", (10_000.0,))
        # the reader's snapshot must not see the concurrent insert
        assert list(reader.execute(sql)) == before
        reader.commit()
        assert list(reader.execute(sql)) != before
        reader.close()
        writer.close()
