"""Tests for the network layer: framing, auth, admission, lifecycle.

The happy path (the full engine battery over the socket transport) lives
in ``test_net_battery.py``; this module covers everything that can go
wrong on the wire — malformed and oversized frames, bad credentials,
unauthenticated requests, half-open connections against the idle clock,
the connection/statement/cursor admission caps, serialization conflicts
surfaced as retryable wire errors, and the teardown paths that must
release snapshots (clean bye, abrupt drop, graceful drain,
``Database.close`` with leaked connections).
"""

import json
import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    AdmissionError,
    AuthenticationError,
    DatabaseError,
    NetworkError,
    ProtocolError,
    SerializationError,
    SQLSyntaxError,
)
from repro.minidb import connect
from repro.minidb.net import CredentialStore, MiniDBServer
from repro.minidb.net import client as net_client
from repro.minidb.net.framing import encode_frame, recv_frame, send_frame
from repro.minidb.net import wire


# -- plumbing -----------------------------------------------------------------


@pytest.fixture
def db():
    handle = connect()
    handle.execute("CREATE TABLE t (id INTEGER, v TEXT)")
    handle.executemany("INSERT INTO t VALUES (?, ?)",
                       [(i, f"v{i}") for i in range(10)])
    yield handle
    handle.close()


def serve(db, **kwargs):
    """A started MiniDBServer; callers use it as a context manager."""
    server = MiniDBServer(db, port=0, **kwargs)
    server.start()
    return server


def dial(server, **kwargs):
    host, port = server.address
    return net_client.connect(host, port, **kwargs)


def raw_dial(server):
    """A plain socket to the server, no handshake."""
    sock = socket.create_connection(server.address, timeout=5.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def hello(sock, user=None, password=None):
    send_frame(sock, {"op": "hello", "protocol": wire.PROTOCOL_VERSION,
                      "user": user, "password": password})
    return recv_frame(sock)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


# -- framing ------------------------------------------------------------------


class TestFraming:
    def test_round_trip(self, db):
        with serve(db) as server, dial(server) as conn:
            assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 10
            assert conn.server_info["user"] == "anonymous"

    def test_non_json_body_rejected(self, db):
        with serve(db) as server:
            sock = raw_dial(server)
            try:
                body = b"\x00\xffnot json"
                sock.sendall(struct.pack(">I", len(body)) + body)
                reply = recv_frame(sock)
                assert reply["ok"] is False
                assert reply["error"]["code"] == "protocol"
                # after a framing error the server hangs up
                assert recv_frame(sock) is None
            finally:
                sock.close()

    def test_non_object_body_rejected(self, db):
        with serve(db) as server:
            sock = raw_dial(server)
            try:
                body = json.dumps([1, 2, 3]).encode()
                sock.sendall(struct.pack(">I", len(body)) + body)
                reply = recv_frame(sock)
                assert reply["ok"] is False
                assert reply["error"]["code"] == "protocol"
            finally:
                sock.close()

    def test_oversized_frame_rejected_before_buffering(self, db):
        with serve(db, max_frame=1024) as server:
            sock = raw_dial(server)
            try:
                # announce a 1GB frame; the server must refuse on the
                # prefix alone, without waiting for (or buffering) a body
                sock.sendall(struct.pack(">I", 1 << 30))
                reply = recv_frame(sock)
                assert reply["ok"] is False
                assert reply["error"]["code"] == "protocol"
                assert "1024" in reply["error"]["message"]
            finally:
                sock.close()

    def test_mid_frame_eof_tears_down_session(self, db):
        with serve(db) as server:
            sock = raw_dial(server)
            try:
                assert hello(sock)["ok"] is True
                wait_until(lambda: server.client_count == 1)
                # half a frame, then vanish
                sock.sendall(struct.pack(">I", 100) + b"partial")
            finally:
                sock.close()
            wait_until(lambda: server.client_count == 0)

    def test_unknown_op_keeps_session_alive(self, db):
        with serve(db) as server, dial(server) as conn:
            with pytest.raises(ProtocolError, match="unknown op"):
                conn._exchange({"op": "no-such-op"})


# -- auth ---------------------------------------------------------------------


class TestAuth:
    @pytest.fixture
    def auth(self, tmp_path):
        return CredentialStore.from_passwords(
            {"ada": "s3cret", "grace": "hopper"},
            path=tmp_path / "users.json", iterations=1000)

    def test_good_credentials(self, db, auth):
        with serve(db, auth=auth) as server:
            with dial(server, user="ada", password="s3cret") as conn:
                assert conn.server_info["user"] == "ada"
                assert conn.execute("SELECT 1").scalar() == 1

    def test_wrong_password_rejected_generically(self, db, auth):
        with serve(db, auth=auth) as server:
            with pytest.raises(AuthenticationError,
                               match="invalid user name or password"):
                dial(server, user="ada", password="wrong")
            assert server.stats["auth_failures"] == 1

    def test_unknown_user_same_message(self, db, auth):
        """Unknown user and wrong password are indistinguishable."""
        with serve(db, auth=auth) as server:
            with pytest.raises(AuthenticationError,
                               match="invalid user name or password"):
                dial(server, user="nobody", password="s3cret")

    def test_request_before_hello_rejected(self, db, auth):
        with serve(db, auth=auth) as server:
            sock = raw_dial(server)
            try:
                send_frame(sock, {"op": "execute", "sql": "SELECT 1"})
                reply = recv_frame(sock)
                assert reply["ok"] is False
                assert reply["error"]["code"] == "auth"
                assert recv_frame(sock) is None  # and the server hangs up
            finally:
                sock.close()

    def test_wrong_protocol_version_rejected(self, db):
        with serve(db) as server:
            sock = raw_dial(server)
            try:
                send_frame(sock, {"op": "hello", "protocol": 999})
                reply = recv_frame(sock)
                assert reply["ok"] is False
                assert reply["error"]["code"] == "protocol"
            finally:
                sock.close()

    def test_store_round_trip_and_constant_time_surface(self, tmp_path):
        store = CredentialStore.from_passwords(
            {"ada": "pw"}, path=tmp_path / "u.json", iterations=1000)
        again = CredentialStore(tmp_path / "u.json")
        assert again.verify("ada", "pw")
        assert not again.verify("ada", "nope")
        assert not again.verify("ghost", "pw")
        again.remove_user("ada")
        assert not again.verify("ada", "pw")


# -- admission control --------------------------------------------------------


class TestAdmission:
    def test_connection_limit(self, db):
        with serve(db, max_connections=1) as server:
            with dial(server) as conn:
                assert conn.ping()
                with pytest.raises(AdmissionError, match="1-connection"):
                    dial(server)
                assert server.stats["connections_rejected"] == 1
            # the slot frees up once the first client leaves
            wait_until(lambda: server.client_count == 0)
            with dial(server) as conn:
                assert conn.ping()

    def test_idle_timeout_reaps_half_open_connection(self, db):
        with serve(db, idle_timeout=0.4) as server:
            sock = raw_dial(server)
            try:
                assert hello(sock)["ok"] is True
                wait_until(lambda: server.client_count == 1)
                # say nothing; the server must reap us, not wait forever
                reply = recv_frame(sock)
                assert reply["ok"] is False
                assert reply["error"]["code"] == "admission"
                assert "idle" in reply["error"]["message"]
            finally:
                sock.close()
            wait_until(lambda: server.client_count == 0)

    def test_cursor_cap(self, db):
        with serve(db, max_cursors=1, fetch_rows=2) as server:
            with dial(server) as conn:
                first = conn.stream("SELECT * FROM t")
                with pytest.raises(AdmissionError, match="1-cursor"):
                    conn.stream("SELECT * FROM t")
                first.close()  # frees the slot
                second = conn.stream("SELECT * FROM t")
                assert len(second.materialize().rows) == 10

    def test_graceful_drain_releases_snapshots(self, db):
        server = serve(db, fetch_rows=2)
        conn = dial(server)
        stream = conn.stream("SELECT * FROM t")
        assert stream.fetchone() is not None
        assert db.txn.outstanding_snapshots >= 1
        server.stop(drain_timeout=2.0)
        assert db.txn.outstanding_snapshots == 0
        assert server.client_count == 0


# -- prepared statements and their LRU table ----------------------------------


class TestPreparedOverWire:
    def test_prepare_execute_close(self, db):
        with serve(db) as server, dial(server) as conn:
            stmt = conn.prepare("SELECT v FROM t WHERE id = ?")
            assert stmt.n_params == 1
            assert stmt.is_select
            assert stmt.execute((3,)).scalar() == "v3"
            assert stmt.execute((7,)).scalar() == "v7"
            stmt.close()
            with pytest.raises(DatabaseError, match="unknown statement id"):
                stmt.execute((3,))
            stmt.close()  # idempotent

    def test_lru_cap_evicts_oldest(self, db):
        with serve(db, max_statements=2) as server, dial(server) as conn:
            s1 = conn.prepare("SELECT 1")
            s2 = conn.prepare("SELECT 2")
            s1.execute()  # LRU touch: s2 is now the oldest
            s3 = conn.prepare("SELECT 3")  # evicts s2
            assert server.stats["statements_evicted"] == 1
            assert s1.execute().scalar() == 1
            assert s3.execute().scalar() == 3
            with pytest.raises(DatabaseError, match="evicted"):
                s2.execute()

    def test_disconnect_frees_all_statement_ids(self, db):
        with serve(db) as server:
            conn = dial(server)
            stmt = conn.prepare("SELECT COUNT(*) FROM t")
            assert stmt.execute().scalar() == 10
            conn.close()
            wait_until(lambda: server.client_count == 0)
            # a fresh connection starts with an empty statement table:
            # the old id is meaningless, and id numbering restarts
            conn2 = dial(server)
            with pytest.raises(DatabaseError, match="unknown statement id"):
                conn2._exchange(
                    {"op": "execute_stmt", "stmt": stmt.statement_id,
                     "params": []})
            assert conn2.prepare("SELECT 1").statement_id == 1
            conn2.close()

    def test_executemany_over_wire(self, db):
        with serve(db) as server, dial(server) as conn:
            stmt = conn.prepare("INSERT INTO t VALUES (?, ?)")
            assert stmt.executemany(
                [(100 + i, "bulk") for i in range(20)]) == 20
            assert conn.execute(
                "SELECT COUNT(*) FROM t WHERE v = 'bulk'").scalar() == 20


# -- streaming cursors --------------------------------------------------------


class TestStreamingOverWire:
    def test_paged_fetch_matches_execute(self, db):
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [(i, f"v{i}") for i in range(10, 500)])
        with serve(db, fetch_rows=64) as server, dial(server) as conn:
            streamed = conn.stream(
                "SELECT id, v FROM t ORDER BY id").materialize().rows
            executed = conn.execute("SELECT id, v FROM t ORDER BY id").rows
            assert streamed == executed
            assert len(streamed) == 500

    def test_cursor_reads_its_open_time_snapshot(self, db):
        with serve(db, fetch_rows=2) as server, dial(server) as conn:
            stream = conn.stream("SELECT id FROM t ORDER BY id")
            assert stream.fetchone() == (0,)
            # concurrent committed DML must not leak into the open cursor
            conn2 = dial(server)
            conn2.execute("DELETE FROM t")
            conn2.close()
            rest = stream.materialize().scalars()
            assert rest == list(range(1, 10))
            assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_abrupt_disconnect_releases_cursor_snapshot(self, db):
        """The satellite bugfix, server side: a client that vanishes
        mid-stream must not pin the GC horizon."""
        with serve(db, fetch_rows=2) as server:
            conn = dial(server)
            stream = conn.stream("SELECT * FROM t")
            assert stream.fetchone() is not None
            assert db.txn.outstanding_snapshots >= 1
            conn._sock.close()  # no bye, no close_cursor: just gone
            wait_until(lambda: server.client_count == 0)
            assert db.txn.outstanding_snapshots == 0

    def test_unknown_cursor_id(self, db):
        with serve(db) as server, dial(server) as conn:
            with pytest.raises(DatabaseError, match="unknown cursor id"):
                conn._exchange({"op": "fetch", "cursor": 99})

    def test_bad_max_rows_rejected(self, db):
        with serve(db) as server, dial(server) as conn:
            with pytest.raises(ProtocolError, match="max_rows"):
                conn._exchange({"op": "open_cursor", "sql": "SELECT 1",
                                "max_rows": -5})


# -- errors over the wire -----------------------------------------------------


class TestWireErrors:
    def test_error_class_round_trips(self, db):
        with serve(db) as server, dial(server) as conn:
            with pytest.raises(SQLSyntaxError):
                conn.execute("SELEKT nope")
            with pytest.raises(DatabaseError, match="no table 'missing'"):
                conn.execute("SELECT * FROM missing")
            # the session survives dispatch errors
            assert conn.execute("SELECT 1").scalar() == 1

    def test_serialization_error_is_retryable_code(self):
        err = wire.encode_error(SerializationError("write-write conflict"))
        assert err["code"] == "serialization"
        assert err["retryable"] is True
        decoded = wire.decode_error(err)
        assert isinstance(decoded, SerializationError)

    def test_concurrent_writers_conflict_and_retry(self, db):
        """Two socket clients race write-write; the loser sees a
        retryable SerializationError and run_transaction wins on retry."""
        db.execute("CREATE TABLE acct (id INTEGER, balance INTEGER)")
        db.executemany("INSERT INTO acct VALUES (?, ?)", [(1, 100), (2, 100)])
        with serve(db) as server:
            a, b = dial(server), dial(server)
            try:
                a.begin()
                b.begin()
                a.execute("UPDATE acct SET balance = balance - 10 WHERE id = 1")
                with pytest.raises(SerializationError):
                    b.execute(
                        "UPDATE acct SET balance = balance - 20 WHERE id = 1")
                a.commit()
                b.rollback()

                # the same conflict inside run_transaction self-heals
                barrier = threading.Barrier(2)
                def transfer(amount):
                    conn = dial(server)
                    first_attempt = [True]
                    try:
                        def txn(c):
                            if first_attempt[0]:  # provoke the first
                                first_attempt[0] = False  # race only once
                                barrier.wait(timeout=5.0)
                            bal = c.execute(
                                "SELECT balance FROM acct WHERE id = 1"
                            ).scalar()
                            c.execute(
                                "UPDATE acct SET balance = ? WHERE id = 1",
                                (bal - amount,))
                        conn.run_transaction(txn)
                    finally:
                        conn.close()
                threads = [threading.Thread(target=transfer, args=(5,))
                           for _ in range(2)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=10.0)
                assert a.execute(
                    "SELECT balance FROM acct WHERE id = 1").scalar() == 80
            finally:
                a.close()
                b.close()


# -- teardown: Database.close must release leaked resources -------------------


class TestTeardownRegression:
    """The satellite bugfix, in-process side: connection teardown and
    ``Database.close`` release still-open streaming cursors and their
    registered snapshots."""

    def test_connection_close_releases_open_streams(self):
        db = connect()
        db.execute("CREATE TABLE t (i INTEGER)")
        db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(50)])
        conn = db.connect()
        stream = conn.stream("SELECT * FROM t")
        assert stream.fetchone() is not None
        assert db.txn.outstanding_snapshots == 1
        conn.close()
        assert db.txn.outstanding_snapshots == 0
        db.close()

    def test_database_close_reaps_leaked_connections(self):
        db = connect()
        db.execute("CREATE TABLE t (i INTEGER)")
        db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(50)])
        leaked = db.connect()
        stream = leaked.stream("SELECT * FROM t")
        assert stream.fetchone() is not None
        leaked.execute("BEGIN")  # an open transaction, too
        leaked.execute("INSERT INTO t VALUES (999)")
        assert db.txn.outstanding_snapshots >= 1
        db.close()  # never explicitly closed the connection or the cursor
        assert db.txn.outstanding_snapshots == 0
        assert leaked.closed

    def test_database_stream_tracked_on_default_session(self):
        db = connect()
        db.execute("CREATE TABLE t (i INTEGER)")
        db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(50)])
        other = db.connect()  # engage MVCC so streams register snapshots
        stream = db.stream("SELECT * FROM t")
        assert stream.fetchone() is not None
        assert db.txn.outstanding_snapshots == 1
        db.close()
        assert db.txn.outstanding_snapshots == 0
        other.close()

    def test_exhausted_stream_is_not_double_closed(self):
        db = connect()
        db.execute("CREATE TABLE t (i INTEGER)")
        db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(10)])
        conn = db.connect()
        rows = conn.stream("SELECT * FROM t").materialize().rows
        assert len(rows) == 10
        conn.close()  # closing already-exhausted cursors is a no-op
        db.close()


# -- review regressions: torn exchanges, failed fetches, credential file -----


class _ExplodingStream:
    """Stand-in for a server-side cursor whose scan fails mid-fetch."""

    def __init__(self):
        self.columns = ["i"]
        self.closed = False

    def fetchmany(self, n):
        raise DatabaseError("scan failed mid-stream")

    def close(self):
        self.closed = True


class TestReviewRegressions:
    def test_connect_timeout_does_not_become_operation_timeout(self, db):
        """The dial timeout must govern establishment only — left on the
        socket it would turn any slow reply into a torn, desynchronized
        exchange."""
        with serve(db) as server:
            conn = dial(server, timeout=0.5)
            try:
                assert conn._sock.gettimeout() is None
                assert conn.execute("SELECT 1").scalar() == 1
            finally:
                conn.close()

    def test_torn_exchange_abandons_connection(self, db):
        """A transport failure mid-exchange leaves the stream position
        undefined; the connection must refuse reuse rather than risk
        pairing the next request with a stale reply."""
        with serve(db) as server:
            conn = dial(server)
            conn._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises((NetworkError, ProtocolError)):
                conn.execute("SELECT 1")
            assert conn.closed
            with pytest.raises(DatabaseError, match="closed"):
                conn.execute("SELECT 1")

    def test_failed_fetch_unregisters_cursor(self, db):
        """A fetch that raises mid-scan must drop the cursor and release
        its snapshot instead of pinning both until teardown."""
        with serve(db, max_cursors=1, fetch_rows=2) as server:
            with dial(server) as conn:
                stream = conn.stream("SELECT * FROM t")
                assert stream.fetchone() is not None
                wait_until(lambda: server.client_count == 1)
                state = next(iter(server._clients)).state
                (cursor_id,) = state.cursors
                broken = _ExplodingStream()
                state.cursors[cursor_id] = broken
                with pytest.raises(DatabaseError, match="mid-stream"):
                    conn._exchange({"op": "fetch", "cursor": cursor_id})
                assert broken.closed
                assert not state.cursors
                # the cap slot is free again: a new cursor fits
                replacement = conn.stream("SELECT * FROM t")
                assert replacement.fetchone() is not None
                replacement.close()

    def test_credential_file_never_world_readable(self, tmp_path):
        """The store (and its tmp file) must be owner-only from the
        first byte — no post-replace chmod window."""
        path = tmp_path / "users.json"
        store = CredentialStore(path, iterations=1000)
        store.add_user("ada", "pw")
        assert path.stat().st_mode & 0o777 == 0o600
        assert not (tmp_path / "users.json.tmp").exists()
        # a leftover tmp with loose permissions gets tightened, not kept
        loose = tmp_path / "users.json.tmp"
        loose.write_text("{}")
        loose.chmod(0o644)
        store.add_user("grace", "pw2")
        assert path.stat().st_mode & 0o777 == 0o600
        assert CredentialStore(path, iterations=1000).verify("grace", "pw2")

    def test_malformed_users_section_is_database_error(self, tmp_path):
        """A credential file whose 'users' is not an object must surface
        as DatabaseError, not a raw AttributeError."""
        path = tmp_path / "users.json"
        path.write_text(json.dumps({"users": ["not", "a", "mapping"]}))
        with pytest.raises(DatabaseError, match="unreadable"):
            CredentialStore(path)


# -- the UI protocol over the real transport ----------------------------------


class TestBuckarooNet:
    @pytest.fixture
    def ui_server(self):
        from repro.ui import BuckarooApp, BuckarooServer
        from repro.ui.netserver import BuckarooNetServer
        from tests.test_ui import make_app

        server = BuckarooServer(make_app())
        net = BuckarooNetServer(server, port=0)
        net.start()
        yield net
        net.stop()

    def test_summary_over_socket(self, ui_server):
        from repro.ui import netserver

        host, port = ui_server.address
        with netserver.connect(host, port) as ui:
            response = json.loads(
                ui.request(json.dumps({"type": "summary", "limit": 5})))
            assert response["ok"] is True
            assert response["type"] == "summary"
            assert any("Anomaly" in line for line in response["payload"])

    def test_application_errors_stay_in_band(self, ui_server):
        from repro.ui import netserver

        host, port = ui_server.address
        with netserver.connect(host, port) as ui:
            response = json.loads(
                ui.request(json.dumps({"type": "not-a-request"})))
            assert response["ok"] is False  # app-level error, not a frame error
            # and the connection still works
            again = json.loads(
                ui.request(json.dumps({"type": "summary", "limit": 1})))
            assert again["ok"] is True

    def test_wrong_op_is_a_protocol_error(self, ui_server):
        from repro.ui import netserver

        host, port = ui_server.address
        with netserver.connect(host, port) as ui:
            with pytest.raises(ProtocolError, match="speaks 'ui'"):
                ui._connection._exchange({"op": "execute", "sql": "SELECT 1"})
