"""Tests for dataset generators and error injection."""

import pytest

from repro.backends import make_backend
from repro.core.types import ERROR_MISSING, ERROR_OUTLIER, ERROR_TYPE_MISMATCH
from repro.datasets import (
    FULL_SHAPES,
    ErrorInjector,
    load_dataset,
    make_adult_income,
    make_chicago_crime,
    make_stackoverflow,
)
from repro.frame import DataFrame


class TestGenerators:
    @pytest.mark.parametrize("name", ["stackoverflow", "adult_income", "chicago_crime"])
    def test_shapes_match_paper(self, name):
        frame, _truth = load_dataset(name, scale=0.005, dirty=False)
        _, n_cols = FULL_SHAPES[name]
        assert frame.n_cols == n_cols
        expected_rows = max(50, round(FULL_SHAPES[name][0] * 0.005))
        assert frame.n_rows == expected_rows

    def test_deterministic_given_seed(self):
        first, _ = make_stackoverflow(scale=0.002, seed=42)
        second, _ = make_stackoverflow(scale=0.002, seed=42)
        assert first.equals(second)
        third, _ = make_stackoverflow(scale=0.002, seed=43)
        assert not first.equals(third)

    def test_stackoverflow_has_figure1_countries(self):
        frame, _ = make_stackoverflow(scale=0.05, dirty=False)
        countries = set(frame["country"].unique())
        assert "Bhutan" in countries and "Lesotho" in countries

    def test_income_depends_on_country(self):
        frame, _ = make_stackoverflow(scale=0.05, dirty=False)
        by_country = frame.groupby("country").agg("converted_comp_yearly", ["mean"])
        lookup = dict(zip(by_country["country"],
                          by_country["converted_comp_yearly_mean"]))
        assert lookup["United States"] > lookup["India"]

    def test_adult_education_num_consistent(self):
        frame, _ = make_adult_income(scale=0.005, dirty=False)
        from repro.datasets.adult import EDUCATIONS

        for education, number in zip(frame["education"], frame["education_num"]):
            assert EDUCATIONS[number - 1] == education

    def test_chicago_coordinates_plausible(self):
        frame, _ = make_chicago_crime(scale=0.002, dirty=False)
        lats = [v for v in frame["latitude"] if v is not None]
        assert all(41.0 < v < 42.6 for v in lats)

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("imagenet")


class TestInjection:
    @pytest.fixture
    def clean(self):
        return DataFrame.from_dict({
            "cat": [f"c{i % 5}" for i in range(200)],
            "val": [float(i) for i in range(200)],
        })

    def test_missing_injection_tracked(self, clean):
        injector = ErrorInjector(seed=1)
        dirty, truth = injector.inject_missing(clean, ["val"], fraction=0.1)
        positions = truth.positions(ERROR_MISSING)
        assert len(positions) == 20
        for position in positions:
            assert dirty["val"][position] is None

    def test_outlier_injection_tracked(self, clean):
        injector = ErrorInjector(seed=1)
        dirty, truth = injector.inject_outliers(clean, ["val"], fraction=0.05)
        positions = truth.positions(ERROR_OUTLIER)
        assert len(positions) == 10
        clean_std = clean["val"].std()
        clean_mean = clean["val"].mean()
        for position in positions:
            assert abs(dirty["val"][position] - clean_mean) > 5 * clean_std

    def test_mismatch_injection_tracked(self, clean):
        injector = ErrorInjector(seed=1)
        dirty, truth = injector.inject_type_mismatches(clean, ["val"], fraction=0.05)
        positions = truth.positions(ERROR_TYPE_MISMATCH)
        assert len(positions) == 10
        for position in positions:
            assert isinstance(dirty["val"][position], str)

    def test_profile_merges_ground_truth(self, clean):
        injector = ErrorInjector(seed=1)
        dirty, truth = injector.inject_profile(
            clean, ["val"], missing=0.05, outliers=0.02, mismatches=0.02,
        )
        assert truth.total() >= 18
        assert truth.positions(ERROR_MISSING)
        assert truth.positions(ERROR_OUTLIER)
        assert truth.positions(ERROR_TYPE_MISMATCH)

    def test_row_ids_offset_by_one(self, clean):
        injector = ErrorInjector(seed=1)
        _, truth = injector.inject_missing(clean, ["val"], fraction=0.05)
        assert truth.row_ids() == {p + 1 for p in truth.positions()}

    def test_injected_errors_are_detectable(self):
        """End-to-end: injected ground truth is what detectors find."""
        frame, truth = make_stackoverflow(scale=0.01, seed=5)
        backend = make_backend(frame, "frame")
        missing = set(backend.missing_row_ids("converted_comp_yearly"))
        injected_missing = {
            p + 1 for p, col in truth.cells.get(ERROR_MISSING, set())
            if col == "converted_comp_yearly"
        }
        assert injected_missing <= missing
        mismatches = set(backend.mismatch_row_ids("converted_comp_yearly"))
        injected_mismatch = {
            p + 1 for p, col in truth.cells.get(ERROR_TYPE_MISMATCH, set())
            if col == "converted_comp_yearly"
        }
        # 'words'-style spellings that hit missing tokens are loaded as
        # text all the same; every injected mismatch must surface
        assert injected_mismatch <= mismatches
