"""Integration tests for BuckarooSession: the full §2 workflow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BuckarooConfig
from repro.core.session import BuckarooSession
from repro.core.types import (
    ERROR_MISSING,
    ERROR_OUTLIER,
    ERROR_TYPE_MISMATCH,
    GroupKey,
)
from repro.errors import BuckarooError, HistoryError
from repro.frame import DataFrame

from tests.test_backends import COLUMNS, ROWS


def make_session(backend: str) -> BuckarooSession:
    session = BuckarooSession.from_frame(
        DataFrame.from_rows(ROWS, COLUMNS), backend=backend,
        config=BuckarooConfig(min_group_size=2),
    )
    session.generate_groups(cat_cols=["country", "degree"],
                            num_cols=["income", "age"])
    session.detect()
    return session


@pytest.fixture(params=["sql", "frame"])
def session(request):
    return make_session(request.param)


class TestDetection:
    def test_summary_totals(self, session):
        summary = session.anomaly_summary()
        codes = {e.code: e.count for e in summary.error_types}
        assert codes[ERROR_MISSING] == 2        # row 6 in two charts
        assert codes[ERROR_TYPE_MISMATCH] == 2  # row 3 in two charts
        assert codes[ERROR_OUTLIER] >= 2        # row 4's income in two charts

    def test_worst_group_is_bhutan_income(self, session):
        worst = session.anomaly_summary().groups[0]
        assert worst.key == GroupKey("country", "Bhutan", "income")

    def test_series_built_for_all_pairs(self, session):
        for pair in session.pairs():
            series = session.series(*pair)
            assert series.categories


class TestApply:
    def test_apply_reduces_anomalies(self, session):
        worst = session.anomaly_summary().groups[0].key
        suggestion = session.suggest(worst)[0]
        before = session.anomaly_summary().total
        result = session.apply(suggestion)
        assert result.resolved > 0
        assert session.anomaly_summary().total == before - result.resolved + result.introduced

    def test_apply_refreshes_only_affected_series(self, session):
        seen = []
        session.add_view_listener(lambda pairs: seen.extend(pairs))
        worst = session.anomaly_summary().groups[0].key
        session.apply(session.suggest(worst, limit=1)[0])
        assert seen  # affected charts notified
        assert all(isinstance(pair, tuple) for pair in seen)

    def test_apply_result_timing_populated(self, session):
        worst = session.anomaly_summary().groups[0].key
        result = session.apply(session.suggest(worst, limit=1)[0])
        assert result.backend_seconds > 0
        assert result.replot_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.backend_seconds + result.replot_seconds
        )

    def test_apply_rejects_garbage(self, session):
        with pytest.raises(BuckarooError, match="RepairPlan"):
            session.apply("not a plan")

    def test_snapshot_store_grows(self, session):
        worst = session.anomaly_summary().groups[0].key
        session.apply(session.suggest(worst, limit=1)[0])
        assert len(session.snapshot_store) == 1

    def test_cache_flushes_on_interval(self, session):
        flushes_before = session.write_cache.total_flushes
        for _ in range(3):
            worst = session.anomaly_summary().groups
            if not worst:
                break
            session.apply(session.suggest(worst[0].key, limit=1)[0])
        assert session.write_cache.total_updates >= 1
        assert session.write_cache.total_flushes >= flushes_before


class TestUndoRedo:
    def _state(self, session):
        backend = session.backend
        return {
            row_id: backend.row(row_id) for row_id in backend.all_row_ids()
        }

    def test_undo_restores_data_and_index(self, session):
        state_before = self._state(session)
        total_before = session.anomaly_summary().total
        worst = session.anomaly_summary().groups[0].key
        session.apply(session.suggest(worst, limit=1)[0])
        session.undo()
        assert self._state(session) == state_before
        assert session.anomaly_summary().total == total_before

    def test_redo_reapplies(self, session):
        worst = session.anomaly_summary().groups[0].key
        session.apply(session.suggest(worst, limit=1)[0])
        state_after = self._state(session)
        total_after = session.anomaly_summary().total
        session.undo()
        session.redo()
        assert self._state(session) == state_after
        assert session.anomaly_summary().total == total_after

    def test_undo_without_history(self, session):
        with pytest.raises(HistoryError):
            session.undo()

    def test_figure1_narrative(self, session):
        """Lou's session: remove outliers -> too aggressive -> undo -> impute."""
        bhutan = GroupKey("country", "Bhutan", "income")
        rows_before = session.backend.row_count()
        suggestions = session.suggest(bhutan, error_code=ERROR_OUTLIER)
        deletion = next(
            s for s in suggestions if s.plan.wrangler_code == "delete_rows"
        )
        session.apply(deletion)
        assert session.backend.row_count() < rows_before
        session.undo()  # "removing outliers removes too many points, I'll undo"
        assert session.backend.row_count() == rows_before
        imputation = next(
            s for s in session.suggest(bhutan, error_code=ERROR_OUTLIER)
            if s.plan.wrangler_code.startswith("impute")
        )
        result = session.apply(imputation)
        assert session.backend.row_count() == rows_before  # no points lost
        assert result.resolved > 0


class TestCascadeVisibility:
    def test_error_substitution_reported_as_resolved_plus_introduced(self):
        """§1: "fixing one data anomaly can lead to other anomalies".

        Converting a dirty spelling whose parsed value is itself an outlier
        swaps error classes within the same groups — the counts don't move,
        but the apply result must still report both directions.
        """
        rows = [
            ("Bhutan", "BS", 10.0, 34),
            ("Bhutan", "MS", 12.0, 29),
            ("Bhutan", "BS", "9k", 41),    # parses to 9000 -> huge outlier
            ("Lesotho", "PhD", 11.0, 35),
            ("Lesotho", "BS", 13.0, 52),
            ("Lesotho", "MS", 9.0, 44),
        ]
        session = BuckarooSession.from_frame(
            DataFrame.from_rows(rows, COLUMNS), backend="sql",
            config=BuckarooConfig(min_group_size=2),
        )
        session.generate_groups(cat_cols=["country"], num_cols=["income"])
        session.detect()
        bhutan = GroupKey("country", "Bhutan", "income")
        conversion = next(
            s for s in session.suggest(bhutan, error_code=ERROR_TYPE_MISMATCH,
                                       score_plans=False)
            if s.plan.wrangler_code == "convert_type"
        )
        result = session.apply(conversion)
        assert result.resolved >= 1    # the mismatch disappeared
        assert result.introduced >= 1  # ... and a 9000 outlier appeared
        codes = {a.error_code for a in session.anomalies(bhutan)}
        assert ERROR_OUTLIER in codes
        assert ERROR_TYPE_MISMATCH not in codes


class TestSpeculation:
    def test_speculate_leaves_no_trace(self, session):
        worst = session.anomaly_summary().groups[0].key
        plan = session.suggestion_engine.candidate_plans(worst)[0]
        state_before = {
            row_id: session.backend.row(row_id)
            for row_id in session.backend.all_row_ids()
        }
        total_before = session.anomaly_summary().total
        outcome = session.speculate(plan)
        assert outcome.resolved > 0
        state_after = {
            row_id: session.backend.row(row_id)
            for row_id in session.backend.all_row_ids()
        }
        assert state_after == state_before
        assert session.anomaly_summary().total == total_before

    def test_preview_has_before_and_after(self, session):
        bhutan = GroupKey("country", "Bhutan", "income")
        suggestion = session.suggest(bhutan, limit=1)[0]
        preview = session.preview(suggestion)
        assert preview.before.pair == ("country", "income")
        assert preview.after.pair == ("country", "income")
        assert preview.before.categories  # non-empty series
        # previewing leaves the data untouched
        assert session.backend.row_count() == 9

    def test_suggestions_ranked_by_score(self, session):
        worst = session.anomaly_summary().groups[0].key
        suggestions = session.suggest(worst)
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)
        assert [s.rank for s in suggestions] == list(range(1, len(suggestions) + 1))

    def test_suggestions_without_scoring(self, session):
        worst = session.anomaly_summary().groups[0].key
        suggestions = session.suggest(worst, score_plans=False)
        assert all(s.score == 0 for s in suggestions)


class TestCrossBackendEquivalence:
    def test_same_anomalies_both_backends(self):
        sql = make_session("sql")
        frame = make_session("frame")
        assert sql.anomaly_summary().total == frame.anomaly_summary().total
        sql_counts = {e.code: e.count for e in sql.anomaly_summary().error_types}
        frame_counts = {e.code: e.count for e in frame.anomaly_summary().error_types}
        assert sql_counts == frame_counts

    def test_same_apply_outcome_both_backends(self):
        sql = make_session("sql")
        frame = make_session("frame")
        key = GroupKey("country", "Bhutan", "income")
        sql_result = sql.apply(sql.suggest(key, limit=1)[0])
        frame_result = frame.apply(frame.suggest(key, limit=1)[0])
        assert sql_result.resolved == frame_result.resolved
        assert sql_result.introduced == frame_result.introduced
        assert sql.anomaly_summary().total == frame.anomaly_summary().total


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(0, 4), min_size=1, max_size=4), st.booleans())
def test_property_undo_all_restores_initial_state(choices, use_sql):
    """Any applied sequence followed by full undo is an identity."""
    session = make_session("sql" if use_sql else "frame")
    initial = {
        row_id: session.backend.row(row_id)
        for row_id in session.backend.all_row_ids()
    }
    initial_total = session.anomaly_summary().total
    applied = 0
    for choice in choices:
        groups = session.anomaly_summary().groups
        if not groups:
            break
        key = groups[choice % len(groups)].key
        suggestions = session.suggest(key, limit=3, score_plans=False)
        if not suggestions:
            continue
        session.apply(suggestions[choice % len(suggestions)])
        applied += 1
    for _ in range(applied):
        session.undo()
    final = {
        row_id: session.backend.row(row_id)
        for row_id in session.backend.all_row_ids()
    }
    assert final == initial
    assert session.anomaly_summary().total == initial_total
