"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.minidb.tokens import EOF, IDENT, NUMBER, OP, PARAM, STRING, tokenize


def kinds(sql):
    return [t.kind for t in tokenize(sql)]


def texts(sql):
    return [t.text for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_simple_statement(self):
        assert kinds("SELECT a FROM t") == [IDENT, IDENT, IDENT, IDENT, EOF]

    def test_numbers(self):
        assert texts("1 2.5 .5 1e3 2.5E-2") == ["1", "2.5", ".5", "1e3", "2.5E-2"]
        assert all(k == NUMBER for k in kinds("1 2.5")[:-1])

    def test_strings_with_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == STRING
        assert tokens[0].text == "it's"

    def test_quoted_identifier(self):
        tokens = tokenize('"select"')
        assert tokens[0].kind == IDENT
        assert tokens[0].text == "select"

    def test_params(self):
        assert kinds("? ?") == [PARAM, PARAM, EOF]

    def test_two_char_operators(self):
        assert texts("<= >= <> != == ||") == ["<=", ">=", "<>", "!=", "==", "||"]

    def test_punctuation(self):
        assert texts("(a, b.c);") == ["(", "a", ",", "b", ".", "c", ")", ";"]


class TestComments:
    def test_line_comment(self):
        assert texts("a -- comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(SQLSyntaxError, match="unterminated block"):
            tokenize("a /* x")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError, match="unterminated string"):
            tokenize("'abc")

    def test_unterminated_quoted_ident(self):
        with pytest.raises(SQLSyntaxError, match="unterminated quoted"):
            tokenize('"abc')

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError, match="unexpected character"):
            tokenize("a @ b")

    def test_position_reported(self):
        with pytest.raises(SQLSyntaxError, match="offset"):
            tokenize("abc @")
