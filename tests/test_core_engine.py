"""Unit tests for the error index, detection engine, ranking, history, cache."""

import pytest

from repro.backends import make_backend
from repro.config import BuckarooConfig
from repro.core.cache import WriteCache
from repro.core.detectors import DetectorRegistry
from repro.core.engine import DetectionEngine, ErrorIndex
from repro.core.history import ActionRecord, HistoryLog
from repro.core.ranking import dominant_error_color, rank_error_types, rank_groups
from repro.core.types import (
    ERROR_MISSING,
    ERROR_OUTLIER,
    Anomaly,
    Group,
    GroupKey,
    NO_ANOMALY_COLOR,
    RepairPlan,
)
from repro.errors import HistoryError
from repro.frame import DataFrame
from repro.snapshots import DeltaSnapshot

from tests.test_backends import COLUMNS, ROWS

KEY_A = GroupKey("country", "Bhutan", "income")
KEY_B = GroupKey("degree", "BS", "income")


def anomaly(row_id, code, key):
    return Anomaly(row_id, key.numerical, code, key)


class TestErrorIndex:
    def test_replace_and_query(self):
        index = ErrorIndex()
        index.replace_group(KEY_A, [anomaly(1, ERROR_MISSING, KEY_A)])
        assert len(index.anomalies(KEY_A)) == 1
        assert index.total() == 1
        assert index.rows_with_errors() == {1}
        assert index.row_errors(1) == {(ERROR_MISSING, KEY_A)}

    def test_replace_clears_previous(self):
        index = ErrorIndex()
        index.replace_group(KEY_A, [anomaly(1, ERROR_MISSING, KEY_A)])
        index.replace_group(KEY_A, [anomaly(2, ERROR_OUTLIER, KEY_A)])
        assert index.rows_with_errors() == {2}
        assert index.counts_by_code() == {ERROR_OUTLIER: 1}

    def test_row_in_multiple_groups(self):
        index = ErrorIndex()
        index.replace_group(KEY_A, [anomaly(1, ERROR_MISSING, KEY_A)])
        index.replace_group(KEY_B, [anomaly(1, ERROR_MISSING, KEY_B)])
        assert len(index.row_errors(1)) == 2
        index.drop_group(KEY_A)
        assert index.row_errors(1) == {(ERROR_MISSING, KEY_B)}

    def test_drop_rows(self):
        index = ErrorIndex()
        index.replace_group(KEY_A, [
            anomaly(1, ERROR_MISSING, KEY_A), anomaly(2, ERROR_OUTLIER, KEY_A),
        ])
        index.drop_rows([1])
        assert index.rows_with_errors() == {2}
        assert index.total() == 1

    def test_group_anomalies_by_code(self):
        index = ErrorIndex()
        index.replace_group(KEY_A, [
            anomaly(1, ERROR_MISSING, KEY_A), anomaly(2, ERROR_MISSING, KEY_A),
            anomaly(3, ERROR_OUTLIER, KEY_A),
        ])
        buckets = index.group_anomalies_by_code(KEY_A)
        assert len(buckets[ERROR_MISSING]) == 2
        assert len(buckets[ERROR_OUTLIER]) == 1

    def test_snapshot_restore(self):
        index = ErrorIndex()
        original = [anomaly(1, ERROR_MISSING, KEY_A)]
        index.replace_group(KEY_A, original)
        saved = index.snapshot([KEY_A])
        index.replace_group(KEY_A, [anomaly(9, ERROR_OUTLIER, KEY_A)])
        index.restore(saved)
        assert index.anomalies(KEY_A) == original


@pytest.fixture(params=["sql", "frame"])
def engine(request):
    backend = make_backend(DataFrame.from_rows(ROWS, COLUMNS), request.param)
    return DetectionEngine(backend, BuckarooConfig(min_group_size=2))


class TestDetectionEngine:
    def _groups(self, engine):
        ids_b = tuple(engine.backend.group_row_ids("country", "Bhutan"))
        ids_n = tuple(engine.backend.group_row_ids("country", "Nauru"))
        return [
            Group(GroupKey("country", "Bhutan", "income"), ids_b),
            Group(GroupKey("country", "Nauru", "income"), ids_n),
        ]

    def test_detect_all(self, engine):
        total = engine.detect_all(self._groups(engine))
        assert total == engine.index.total()
        assert total >= 3  # outlier + mismatch + small group at least

    def test_detect_groups_is_incremental(self, engine):
        groups = self._groups(engine)
        engine.detect_all(groups)
        runs_before = engine.detections_run
        engine.detect_groups([groups[1]])
        assert engine.detections_run == runs_before + 1

    def test_counts_instrumented(self, engine):
        engine.detect_all(self._groups(engine))
        assert engine.detections_run == 2


class TestRanking:
    def _populated(self):
        index = ErrorIndex()
        registry = DetectorRegistry()
        index.replace_group(KEY_A, [
            anomaly(1, ERROR_MISSING, KEY_A), anomaly(2, ERROR_MISSING, KEY_A),
        ])
        index.replace_group(KEY_B, [anomaly(3, ERROR_OUTLIER, KEY_B)])
        return index, registry

    def test_rank_error_types_by_frequency(self):
        index, registry = self._populated()
        summary = rank_error_types(index, registry)
        assert summary[0].code == ERROR_MISSING
        assert summary[0].count == 2

    def test_rank_groups_weighted(self):
        index, registry = self._populated()
        ranks = rank_groups(index, registry)
        assert ranks[0].key == KEY_A
        assert ranks[0].dominant_code == ERROR_MISSING
        assert ranks[1].key == KEY_B

    def test_rank_groups_limit(self):
        index, registry = self._populated()
        assert len(rank_groups(index, registry, limit=1)) == 1

    def test_dominant_color(self):
        index, registry = self._populated()
        color = dominant_error_color(index, registry, KEY_A)
        assert color == registry.error_type(ERROR_MISSING).color
        clean = dominant_error_color(index, registry, GroupKey("x", "y", "z"))
        assert clean == NO_ANOMALY_COLOR


class TestHistory:
    def _record(self, seq=1):
        plan = RepairPlan("delete_rows", KEY_A, ERROR_MISSING)
        return ActionRecord(seq, plan, DeltaSnapshot(), [KEY_A])

    def test_undo_redo_cycle(self):
        log = HistoryLog()
        record = self._record(log.next_seq())
        log.record(record)
        assert log.can_undo and not log.can_redo
        popped = log.pop_undo()
        assert popped is record
        assert log.can_redo and not log.can_undo
        assert log.pop_redo() is record
        assert log.can_undo

    def test_new_action_clears_redo(self):
        log = HistoryLog()
        log.record(self._record(log.next_seq()))
        log.pop_undo()
        log.record(self._record(log.next_seq()))
        assert not log.can_redo

    def test_empty_stacks_raise(self):
        log = HistoryLog()
        with pytest.raises(HistoryError):
            log.pop_undo()
        with pytest.raises(HistoryError):
            log.pop_redo()

    def test_records_order(self):
        log = HistoryLog()
        first = self._record(log.next_seq())
        second = self._record(log.next_seq())
        log.record(first)
        log.record(second)
        assert log.records() == [first, second]


class TestWriteCache:
    class _FakeBackend:
        def __init__(self):
            self.flushes = 0

        def flush(self):
            self.flushes += 1
            return 5

    def test_flushes_every_interval(self):
        backend = self._FakeBackend()
        cache = WriteCache(backend, flush_interval=3)
        assert not cache.notify_update()
        assert not cache.notify_update()
        assert cache.notify_update()  # third update flushes (paper default)
        assert backend.flushes == 1
        assert cache.records_flushed == 5
        assert cache.pending == 0

    def test_force_flush_resets_counter(self):
        backend = self._FakeBackend()
        cache = WriteCache(backend, flush_interval=10)
        cache.notify_update()
        cache.force_flush()
        assert cache.pending == 0
        assert backend.flushes == 1

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            WriteCache(self._FakeBackend(), flush_interval=0)
