"""Durability and lifecycle tests: the connect/close API, reopen-recovers
semantics, checkpoint-bounded WAL replay, crash recovery (including
randomized crash points and torn checkpoints), and buffer-pool residency
on larger-than-pool datasets."""

import json
import random

import pytest

from repro.errors import DatabaseError
from repro.minidb import Database, WriteAheadLog, connect
from repro.minidb.pager import PAGE_SIZE


def wal_path(path):
    return path.with_name(path.name + "-wal")


def crash(db):
    """Drop the process handles without checkpoint or close — everything
    not already fsynced by a commit barrier is lost, like a power cut."""
    if db.pager is not None:
        db.pager._fh.close()
    if db.wal is not None and db.wal._handle is not None:
        db.wal._handle.close()
    db._closed = True


class TestLifecycleAPI:
    def test_connect_memory_modes(self):
        for db in (connect(), connect(":memory:")):
            assert db.path is None and db.pager is None
            db.execute("CREATE TABLE t (x INT)")
            db.close()

    def test_connect_file_and_positional_path(self, tmp_path):
        path = tmp_path / "pos.db"
        db = Database(path)  # positional str/PathLike means a file path
        assert db.path == path and db.pager is not None
        db.close()
        connect(path).close()

    def test_context_manager_closes(self, tmp_path):
        with connect(tmp_path / "cm.db") as db:
            db.execute("CREATE TABLE t (x INT)")
            assert not db.closed
        assert db.closed

    def test_close_is_idempotent_and_fences_use(self, tmp_path):
        db = connect(tmp_path / "fence.db")
        db.execute("CREATE TABLE t (x INT)")
        conn = db.connect()
        db.close()
        db.close()  # second close is a no-op
        with pytest.raises(DatabaseError, match="closed"):
            db.execute("SELECT 1")
        with pytest.raises(DatabaseError, match="closed"):
            db.connect()
        with pytest.raises(DatabaseError, match="closed"):
            conn.execute("SELECT 1")

    def test_path_and_wal_are_exclusive(self, tmp_path):
        with pytest.raises(DatabaseError, match="path or a WAL"):
            Database(wal=WriteAheadLog(), path=tmp_path / "x.db")

    def test_unknown_option_rejected(self, tmp_path):
        with pytest.raises(DatabaseError, match="unknown open option"):
            connect(tmp_path / "o.db", page_cache=9)

    def test_pragma_surface(self, tmp_path):
        db = connect(tmp_path / "prag.db", pool_pages=32)
        assert db.pragma("page_size") == PAGE_SIZE
        assert db.pragma("pool_pages") == 32
        db.pragma("pool_pages", 64)
        assert db.pragma("buffer_pool_pages") == 64
        assert db.pragma("fsync") == "commit"
        db.pragma("fsync", "off")
        assert db.pragma("fsync") == "off"
        assert db.pragma("wal_autocheckpoint") == 1000
        db.pragma("wal_autocheckpoint", 10)
        assert db.pragma("wal_autocheckpoint") == 10
        stats = db.pragma("buffer_pool_stats")
        assert set(stats) >= {"hits", "misses", "evictions"}
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.pragma("checkpoint") >= 0
        db.pragma("vacuum")
        with pytest.raises(DatabaseError, match="unknown pragma"):
            db.pragma("nope")
        db.close()

        mem = connect()
        assert mem.pragma("page_size") is None
        mem.close()


class TestReopenRecovers:
    def test_full_round_trip(self, tmp_path):
        path = tmp_path / "rt.db"
        with connect(path) as db:
            db.execute("CREATE TABLE people (name TEXT, age INT)")
            db.execute("CREATE INDEX idx_age ON people(age)")
            db.executemany("INSERT INTO people VALUES (?, ?)",
                           [(f"p{i}", 20 + i % 50) for i in range(200)])
            db.execute("UPDATE people SET age = 99 WHERE name = 'p7'")
            db.execute("DELETE FROM people WHERE name = 'p8'")
        # clean close checkpoints: the WAL tail is empty on disk
        assert wal_path(path).stat().st_size == 0

        with connect(path) as db:
            assert db.execute("SELECT COUNT(*) FROM people").scalar() == 199
            assert db.execute(
                "SELECT age FROM people WHERE name = 'p7'").scalar() == 99
            assert db.execute(
                "SELECT COUNT(*) FROM people WHERE name = 'p8'").scalar() == 0
            # the secondary index was rebuilt and still answers probes
            assert "idx_age" in db.index_catalog
            assert db.execute(
                "SELECT COUNT(*) FROM people WHERE age = 99").scalar() == 1
            # fresh inserts must not collide with recovered rowids
            db.execute("INSERT INTO people VALUES ('new', 1)")
            assert db.execute("SELECT COUNT(*) FROM people").scalar() == 200

    def test_schema_changes_survive(self, tmp_path):
        path = tmp_path / "schema.db"
        with connect(path) as db:
            db.execute("CREATE TABLE a (x INT)")
            db.execute("CREATE TABLE b (y TEXT)")
            db.execute("INSERT INTO a VALUES (1)")
            db.execute("ALTER TABLE a ADD COLUMN note TEXT")
            db.execute("UPDATE a SET note = 'kept'")
            db.execute("DROP TABLE b")
        with connect(path) as db:
            assert db.has_table("a") and not db.has_table("b")
            assert db.execute("SELECT x, note FROM a").rows == [(1, "kept")]

    def test_reopen_replays_only_the_tail(self, tmp_path):
        """After a checkpoint, only post-checkpoint commits live in the WAL
        file; recovery replays that tail over the heap pages."""
        path = tmp_path / "tail.db"
        db = connect(path, wal_autocheckpoint=0)
        db.execute("CREATE TABLE t (i INT)")
        db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(100)])
        db.checkpoint()
        assert wal_path(path).stat().st_size == 0
        db.execute("INSERT INTO t VALUES (100)")
        db.execute("INSERT INTO t VALUES (101)")
        tail = wal_path(path).read_bytes().splitlines()
        assert len(tail) == 2  # just the two post-checkpoint commits
        crash(db)

        with connect(path) as db2:
            assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 102
            assert db2.execute("SELECT MAX(i) FROM t").scalar() == 101

    def test_fsync_off_still_recovers_after_clean_close(self, tmp_path):
        path = tmp_path / "nofsync.db"
        with connect(path, fsync=False) as db:
            db.execute("CREATE TABLE t (x INT)")
            db.execute("INSERT INTO t VALUES (42)")
        with connect(path) as db:
            assert db.execute("SELECT x FROM t").scalar() == 42


class TestCheckpointBoundsReplay:
    """Regression tests for the WAL checkpoint bug: checkpoint() used to
    leave load()-ed logs indistinguishable from never-checkpointed ones,
    so recovery replayed the full history every time."""

    def test_marker_bounds_legacy_replay(self, tmp_path):
        log_file = tmp_path / "legacy.wal"
        db = Database(wal=WriteAheadLog(log_file))
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.checkpoint()
        db.execute("INSERT INTO t VALUES (2)")
        db.checkpoint()

        reloaded = WriteAheadLog.load(log_file)
        assert reloaded.checkpointed_lsn > 0
        # the full history still replays for from-scratch reconstruction
        full = Database()
        assert reloaded.replay_into(full) > 0
        assert full.execute("SELECT COUNT(*) FROM t").scalar() == 2
        # ...but a reader that already holds the checkpointed state skips
        # everything at or below the marker: nothing left to apply
        bounded = Database()
        assert reloaded.replay_into(
            bounded, after_lsn=reloaded.checkpointed_lsn) == 0

    def test_partial_tail_replays_after_marker(self, tmp_path):
        log_file = tmp_path / "tail.wal"
        db = Database(wal=WriteAheadLog(log_file))
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.checkpoint()
        db.execute("INSERT INTO t VALUES (2)")  # post-checkpoint tail
        db.checkpoint()  # flush the tail record to the file
        reloaded = WriteAheadLog.load(log_file)
        markers = reloaded.checkpoint_count
        assert markers == 2
        # replay from the FIRST marker: only the tail insert applies
        first_marker_lsn = min(
            r["lsn"] for r in _marker_lsns(log_file))
        fresh = Database()
        fresh.execute("CREATE TABLE t (x INT)")
        fresh.execute("INSERT INTO t VALUES (1)")
        assert reloaded.replay_into(fresh, after_lsn=first_marker_lsn) == 1
        assert fresh.execute("SELECT COUNT(*) FROM t").scalar() == 2


def _marker_lsns(log_file):
    with open(log_file, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh
                if json.loads(line).get("op") == "checkpoint"]


class TestCrashRecovery:
    def test_committed_survive_uncommitted_do_not(self, tmp_path):
        path = tmp_path / "crash.db"
        db = connect(path, wal_autocheckpoint=0)
        db.execute("CREATE TABLE t (i INT, tag TEXT)")
        db.executemany("INSERT INTO t VALUES (?, 'committed')",
                       [(i,) for i in range(50)])
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (999, 'uncommitted')")
        crash(db)  # the open transaction never reached COMMIT

        with connect(path) as db2:
            assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 50
            assert db2.execute(
                "SELECT COUNT(*) FROM t WHERE tag = 'uncommitted'"
            ).scalar() == 0

    def test_random_crash_points_expose_exactly_committed_prefix(self, tmp_path):
        """Property test: truncate the WAL at random record boundaries and
        check that recovery exposes exactly the commits that survived."""
        rng = random.Random(0xD15C)
        for trial in range(6):
            path = tmp_path / f"prop{trial}.db"
            db = connect(path, wal_autocheckpoint=0, fsync=False)
            db.execute("CREATE TABLE t (i INT)")
            conn = db.connect()
            for i in range(20):
                conn.execute("BEGIN")
                conn.execute("INSERT INTO t VALUES (?)", (i,))
                conn.commit()
            crash(db)

            # the log holds 1 DDL record + 20 commit records, in order;
            # cut it at a random boundary to simulate a mid-write crash
            lines = wal_path(path).read_bytes().splitlines(keepends=True)
            assert len(lines) == 21
            keep = rng.randint(0, len(lines))
            wal_path(path).write_bytes(b"".join(lines[:keep]))

            db2 = connect(path)
            if keep == 0:
                assert not db2.has_table("t")
            else:
                visible = {r[0] for r in db2.execute("SELECT i FROM t").rows}
                assert visible == set(range(keep - 1))
            db2.close()

            # recovery checkpointed: a second reopen sees identical state
            db3 = connect(path)
            if keep > 0:
                assert db3.execute(
                    "SELECT COUNT(*) FROM t").scalar() == keep - 1
            db3.close()

    def test_crash_after_reopen_keeps_new_commits(self, tmp_path):
        """Regression: LSNs must stay monotonic across opens.  A fresh
        WAL restarting at LSN 1 would stamp post-reopen commits below the
        header's durable_lsn, and bounded replay would skip them."""
        path = tmp_path / "lsn.db"
        with connect(path) as db:
            db.execute("CREATE TABLE t (c TEXT)")
            db.execute("INSERT INTO t VALUES ('old')")
        db = connect(path)
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES ('new')")
        conn.commit()
        crash(db)
        with connect(path) as db2:
            assert sorted(
                db2.execute("SELECT c FROM t").scalars()) == ["new", "old"]

    def test_torn_tail_record_is_discarded(self, tmp_path):
        path = tmp_path / "torn.db"
        db = connect(path, wal_autocheckpoint=0)
        db.execute("CREATE TABLE t (i INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
        crash(db)
        # a record half-written at the moment of the crash
        with open(wal_path(path), "ab") as fh:
            fh.write(b'{"op": "commit", "txid": 99, "eve')

        with connect(path) as db2:
            assert {r[0] for r in db2.execute("SELECT i FROM t").rows} == {1, 2}

    def test_torn_checkpoint_replay_is_idempotent(self, tmp_path):
        """Crash after dirty pages hit disk but before the header/WAL
        truncation commit the checkpoint: the tail re-applies over heap
        pages that already contain its effects, and must converge."""
        path = tmp_path / "tornckpt.db"
        db = connect(path, wal_autocheckpoint=0)
        db.execute("CREATE TABLE t (i INT, v TEXT)")
        db.executemany("INSERT INTO t VALUES (?, 'base')",
                       [(i,) for i in range(10)])
        db.checkpoint()
        db.execute("INSERT INTO t VALUES (10, 'tail')")
        db.execute("UPDATE t SET v = 'patched' WHERE i = 3")
        db.execute("DELETE FROM t WHERE i = 4")
        # the torn checkpoint: pages flushed, header and WAL untouched
        db.pager.flush()
        crash(db)

        with connect(path) as db2:
            rows = dict(db2.execute("SELECT i, v FROM t ORDER BY i").rows)
            assert len(rows) == 10  # no duplicated inserts
            assert rows[3] == "patched"
            assert 4 not in rows
            assert rows[10] == "tail"


class TestBufferPoolResidency:
    def test_larger_than_pool_dataset(self, tmp_path):
        path = tmp_path / "bigger.db"
        db = connect(path, pool_pages=16)
        db.execute("CREATE TABLE t (i INT, pad TEXT)")
        db.execute("CREATE INDEX idx_i ON t(i)")
        pad = "p" * 200  # ~18 rows per 4KB page -> ~170 pages for 3000 rows
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [(i, pad) for i in range(3000)])
        db.checkpoint()
        assert db.pager.page_count > 16  # dataset genuinely exceeds the pool

        # scans and index probes stay correct while residency is bounded
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 3000
        assert db.execute("SELECT SUM(i) FROM t").scalar() == sum(range(3000))
        for probe in (0, 1234, 2999):
            assert db.execute(
                "SELECT pad FROM t WHERE i = ?", (probe,)).scalar() == pad
        assert db.pager.resident_pages <= 16
        assert db.pager.stats["evictions"] > 0
        db.close()

        # recovery of a larger-than-pool dataset is also bounded
        with connect(path, pool_pages=16) as db2:
            assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 3000
            assert db2.pager.resident_pages <= 16

    def test_dirty_pages_may_overrun_until_checkpoint(self, tmp_path):
        db = connect(tmp_path / "nosteal.db", pool_pages=4,
                     wal_autocheckpoint=0)
        db.execute("CREATE TABLE t (i INT, pad TEXT)")
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [(i, "x" * 400) for i in range(200)])
        # no-steal: uncheckpointed dirty pages are pinned in memory even
        # past the pool budget (they must never hit disk pre-commit)
        assert db.pager.dirty_pages > 4
        db.checkpoint()
        assert db.pager.dirty_pages == 0
        assert db.pager.resident_pages <= 4
        db.close()

    def test_drop_table_recycles_pages(self, tmp_path):
        path = tmp_path / "recycle.db"
        db = connect(path, wal_autocheckpoint=0)
        db.execute("CREATE TABLE big (i INT, pad TEXT)")
        db.executemany("INSERT INTO big VALUES (?, ?)",
                       [(i, "y" * 500) for i in range(500)])
        db.checkpoint()
        grown = db.pager.page_count
        db.execute("DROP TABLE big")
        db.checkpoint()  # promotes the freed chain for reuse
        db.execute("CREATE TABLE again (i INT, pad TEXT)")
        db.executemany("INSERT INTO again VALUES (?, ?)",
                       [(i, "y" * 500) for i in range(400)])
        db.checkpoint()
        # pages were reused: the file grew at most by the one-page slack
        # of catalog-chain churn (the old chain is pending-free until the
        # following checkpoint), never by another table's worth of data
        assert db.pager.page_count <= grown + 1
        db.close()


class TestGroupCommit:
    def test_pragma_round_trip(self, tmp_path):
        db = connect(tmp_path / "g.db", fsync="group")
        assert db.pragma("fsync") == "group"
        db.pragma("fsync", True)
        assert db.pragma("fsync") == "commit"
        db.pragma("fsync", "group")
        assert db.pragma("fsync") == "group"
        db.pragma("fsync", "off")
        assert db.pragma("fsync") == "off"
        db.close()

    def test_concurrent_commits_all_durable(self, tmp_path):
        """N writers under group commit: every committed row survives a
        clean reopen (the leader's fsync covers follower records)."""
        import threading

        path = tmp_path / "group.db"
        db = connect(path, fsync="group", wal_autocheckpoint=0)
        db.execute("CREATE TABLE t (i INT)")
        writers, per_writer = 4, 25
        gate = threading.Barrier(writers)

        def worker(base):
            conn = db.connect()
            gate.wait()
            for i in range(per_writer):
                conn.execute("BEGIN")
                conn.execute("INSERT INTO t VALUES (?)", (base + i,))
                conn.commit()
            conn.close()

        threads = [threading.Thread(target=worker, args=(k * 1000,))
                   for k in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = sorted(k * 1000 + i
                          for k in range(writers) for i in range(per_writer))
        assert sorted(db.execute("SELECT i FROM t").scalars()) == expected
        db.close()
        with connect(path) as reopened:
            assert sorted(reopened.execute("SELECT i FROM t").scalars()) == expected

    def test_commit_then_crash_preserves_synced_tail(self, tmp_path):
        """A committed transaction under group fsync survives a crash —
        the commit barrier does not return before its records are synced."""
        path = tmp_path / "crashy.db"
        db = connect(path, fsync="group", wal_autocheckpoint=0)
        db.execute("CREATE TABLE t (i INT)")
        conn = db.connect()
        for i in range(10):
            conn.execute("BEGIN")
            conn.execute("INSERT INTO t VALUES (?)", (i,))
            conn.commit()
        crash(db)
        with connect(path) as reopened:
            assert reopened.execute("SELECT COUNT(*) FROM t").scalar() == 10
