"""Unit tests for chart series and incremental replot entries."""

import pytest

from repro.backends import make_backend
from repro.config import BuckarooConfig
from repro.core.groups import GroupManager
from repro.core.preview import ChartSeries, build_series, refresh_entries
from repro.core.types import GroupKey
from repro.frame import DataFrame

from tests.test_backends import COLUMNS, ROWS


class TestChartSeries:
    def test_entry_lookup(self):
        series = ChartSeries("c", "v", ["a", "b"], [2, 3], [1.0, 2.0], [0, 1])
        assert series.entry("b") == {
            "category": "b", "count": 3, "mean": 2.0, "missing": 1,
        }
        assert series.entry("zzz") is None

    def test_update_entry_replaces(self):
        series = ChartSeries("c", "v", ["a"], [2], [1.0], [0])
        series.update_entry("a", 5, 9.0, 1)
        assert series.entry("a")["count"] == 5

    def test_update_entry_appends_new_category(self):
        series = ChartSeries("c", "v")
        series.update_entry("new", 1, 2.0, 0)
        assert series.categories == ["new"]

    def test_remove_entry(self):
        series = ChartSeries("c", "v", ["a", "b"], [1, 2], [0.0, 0.0], [0, 0])
        series.remove_entry("a")
        assert series.categories == ["b"]
        series.remove_entry("phantom")  # no error


@pytest.fixture(params=["sql", "frame"])
def env(request):
    backend = make_backend(DataFrame.from_rows(ROWS, COLUMNS), request.param)
    manager = GroupManager(backend, BuckarooConfig(min_group_size=2))
    manager.generate(cat_cols=["country"], num_cols=["income"])
    return backend, manager


class TestBuildAndRefresh:
    def test_build_series(self, env):
        backend, manager = env
        series = build_series(backend, manager, "country", "income")
        assert set(series.categories) == {"Bhutan", "Lesotho", "Nauru"}
        entry = series.entry("Lesotho")
        assert entry["count"] == 4
        assert entry["missing"] == 1
        assert entry["mean"] == pytest.approx((72000 + 48000 + 55000) / 3)

    def test_incremental_refresh_matches_full_rebuild(self, env):
        backend, manager = env
        series = build_series(backend, manager, "country", "income")
        backend.set_cells("income", [6], 54000.0)  # fill the missing cell
        key = GroupKey("country", "Lesotho", "income")
        manager.refresh([key])
        refresh_entries(series, backend, manager, [key])
        rebuilt = build_series(backend, manager, "country", "income")
        assert series.entry("Lesotho") == rebuilt.entry("Lesotho")
        assert series.entry("Bhutan") == rebuilt.entry("Bhutan")

    def test_refresh_removes_dead_groups(self, env):
        backend, manager = env
        series = build_series(backend, manager, "country", "income")
        backend.delete_rows([9])
        key = GroupKey("country", "Nauru", "income")
        manager.refresh([key])
        refresh_entries(series, backend, manager, [key])
        assert series.entry("Nauru") is None
