"""Unit and property tests for Column."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ColumnTypeError, LengthMismatchError
from repro.frame import Column, dtypes


class TestConstruction:
    def test_infers_dtype(self):
        assert Column("a", [1, 2]).dtype == dtypes.INT64
        assert Column("a", ["x"]).dtype == dtypes.STRING
        assert Column("a", [1, "12k"]).dtype == dtypes.MIXED

    def test_explicit_dtype(self):
        col = Column("a", [1, 2], dtype=dtypes.FLOAT64)
        assert col.dtype == dtypes.FLOAT64
        assert col[0] == 1.0

    def test_missing_values(self):
        col = Column("a", [1, None, 3])
        assert col.n_missing == 1
        assert col[1] is None
        assert list(col.missing_positions()) == [1]

    def test_nan_is_missing(self):
        col = Column("a", [1.0, float("nan")])
        assert col.n_missing == 1

    def test_python_values_out(self):
        col = Column("a", [1, 2])
        assert isinstance(col[0], int) and not isinstance(col[0], np.integer)


class TestAccess:
    def test_iteration_matches_getitem(self):
        col = Column("a", [1, None, 3])
        assert list(col) == [col[i] for i in range(3)]

    def test_to_list(self):
        assert Column("a", ["x", None]).to_list() == ["x", None]

    def test_equals(self):
        assert Column("a", [1, None]).equals(Column("a", [1, None]))
        assert not Column("a", [1, 2]).equals(Column("a", [1, 3]))
        assert not Column("a", [1]).equals(Column("a", [1, 1]))
        assert not Column("a", [1, None]).equals(Column("a", [None, 1]))


class TestTransforms:
    def test_take(self):
        col = Column("a", [10, 20, 30]).take([2, 0])
        assert col.to_list() == [30, 10]

    def test_mask_filter(self):
        col = Column("a", [10, 20, 30]).mask_filter(np.array([True, False, True]))
        assert col.to_list() == [10, 30]

    def test_mask_filter_length_check(self):
        with pytest.raises(LengthMismatchError):
            Column("a", [1, 2]).mask_filter(np.array([True]))

    def test_set_at_scalar(self):
        col = Column("a", [1, 2, 3]).set_at([0, 2], 9)
        assert col.to_list() == [9, 2, 9]

    def test_set_at_is_copy(self):
        original = Column("a", [1, 2, 3])
        original.set_at([0], 9)
        assert original.to_list() == [1, 2, 3]

    def test_set_at_sequence(self):
        col = Column("a", [1, 2, 3]).set_at([0, 1], [7, 8])
        assert col.to_list() == [7, 8, 3]

    def test_set_at_none_marks_missing(self):
        col = Column("a", [1, 2]).set_at([0], None)
        assert col[0] is None and col.n_missing == 1

    def test_set_at_widens_int_to_float(self):
        col = Column("a", [1, 2]).set_at([0], 1.5)
        assert col.dtype == dtypes.FLOAT64
        assert col.to_list() == [1.5, 2.0]

    def test_set_at_widens_to_mixed(self):
        col = Column("a", [1, 2]).set_at([0], "12k")
        assert col.dtype == dtypes.MIXED
        assert col.to_list() == ["12k", 2]

    def test_set_at_length_mismatch(self):
        with pytest.raises(LengthMismatchError):
            Column("a", [1, 2]).set_at([0, 1], [1])

    def test_fill_missing(self):
        col = Column("a", [1, None, None]).fill_missing(0)
        assert col.to_list() == [1, 0, 0]

    def test_astype_numeric_to_string(self):
        col = Column("a", [1, None]).astype(dtypes.STRING)
        assert col.to_list() == ["1", None]

    def test_astype_mixed_to_float_strict(self):
        col = Column("a", [1, "12k", "7"]).astype(dtypes.FLOAT64)
        # "12k" is not a strict literal -> missing; "7" parses
        assert col.to_list() == [1.0, None, 7.0]

    def test_concat(self):
        col = Column("a", [1]).concat(Column("a", [2, None]))
        assert col.to_list() == [1, 2, None]

    def test_rename_shares_data(self):
        col = Column("a", [1, 2])
        renamed = col.rename("b")
        assert renamed.name == "b" and renamed.to_list() == [1, 2]


class TestNumericView:
    def test_numeric_column(self):
        values, ok, mismatch = Column("a", [1, None, 3]).to_numeric()
        assert list(values[ok]) == [1.0, 3.0]
        assert not mismatch.any()

    def test_mixed_column_strict(self):
        values, ok, mismatch = Column("a", [50000, "12k", None]).to_numeric()
        assert list(ok) == [True, False, False]
        assert list(mismatch) == [False, True, False]

    def test_mixed_column_lenient(self):
        values, ok, mismatch = Column("a", [50000, "12k"]).to_numeric(lenient=True)
        assert list(ok) == [True, True]
        assert values[1] == 12000.0
        assert not mismatch.any()

    def test_bool_column(self):
        values, ok, _ = Column("a", [True, False]).to_numeric()
        assert list(values) == [1.0, 0.0]


class TestStatistics:
    def test_basic_stats(self):
        col = Column("a", [2.0, 4.0, None])
        assert col.mean() == 3.0
        assert col.min() == 2.0
        assert col.max() == 4.0
        assert col.median() == 3.0
        assert col.sum() == 6.0
        assert col.std() == pytest.approx(1.0)

    def test_stats_on_all_missing(self):
        assert Column("a", [None, None]).mean() is None

    def test_string_stat_raises(self):
        with pytest.raises(ColumnTypeError):
            Column("a", ["x"]).mean()

    def test_unique_preserves_order(self):
        assert Column("a", ["b", "a", "b", None]).unique() == ["b", "a"]

    def test_value_counts(self):
        assert Column("a", ["x", "x", "y", None]).value_counts() == {"x": 2, "y": 1}

    def test_mode(self):
        assert Column("a", ["x", "y", "x"]).mode() == "x"
        assert Column("a", [None]).mode() is None


@given(st.lists(st.one_of(st.none(), st.integers(-1000, 1000)), max_size=50))
def test_property_roundtrip_values(values):
    """Values in == values out, missing pattern preserved."""
    col = Column("a", values)
    assert col.to_list() == values


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=30), st.data())
def test_property_take_matches_python_indexing(values, data):
    col = Column("a", values)
    indices = data.draw(st.lists(st.integers(0, len(values) - 1), max_size=20))
    assert col.take(indices).to_list() == [values[i] for i in indices]
