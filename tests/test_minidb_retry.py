"""Connection.run_transaction: retry with jittered exponential backoff.

First-updater-wins means hot-row losers see SerializationError; the
retry helper is their recourse.  The hot-row contention test is the
acceptance test: every increment lands exactly once despite conflicts.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import SerializationError, TransactionError
from repro.minidb import session as session_mod
from repro.minidb.database import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE counters (id INT, value INT)")
    database.execute("INSERT INTO counters VALUES (1, 0)")
    return database


def test_hot_row_contention_loses_no_increment(db):
    """N threads x M increments on one row: the final value is exact."""
    threads_n, increments = 4, 25
    errors = []

    def bump(conn):
        value = conn.execute(
            "SELECT value FROM counters WHERE id = 1").scalar()
        conn.execute(
            "UPDATE counters SET value = ? WHERE id = 1", (value + 1,))
        return value + 1

    def worker():
        try:
            with db.connect() as conn:
                for _ in range(increments):
                    conn.run_transaction(bump, retries=200, backoff=0.0005)
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    workers = [threading.Thread(target=worker) for _ in range(threads_n)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()

    assert not errors
    final = db.execute("SELECT value FROM counters WHERE id = 1").scalar()
    assert final == threads_n * increments


def test_retries_until_success(db):
    attempts = []

    def flaky(conn):
        attempts.append(1)
        if len(attempts) < 4:
            raise SerializationError("simulated conflict")
        return conn.execute(
            "SELECT value FROM counters WHERE id = 1").scalar()

    with db.connect() as conn:
        result = conn.run_transaction(flaky, retries=8, backoff=0)
    assert result == 0
    assert len(attempts) == 4


def test_exhausted_retries_raise_and_leave_no_open_transaction(db):
    attempts = []

    def always_loses(conn):
        attempts.append(1)
        raise SerializationError("permanent conflict")

    conn = db.connect()
    try:
        with pytest.raises(SerializationError):
            conn.run_transaction(always_loses, retries=3, backoff=0)
        assert len(attempts) == 4  # initial try + 3 retries
        assert not conn.in_transaction
        # the connection is still usable afterwards
        assert conn.execute("SELECT 1").scalar() == 1
    finally:
        conn.close()


def test_other_exceptions_propagate_without_retry(db):
    attempts = []

    def broken(conn):
        attempts.append(1)
        raise ValueError("not a conflict")

    conn = db.connect()
    try:
        with pytest.raises(ValueError):
            conn.run_transaction(broken, retries=5, backoff=0)
        assert len(attempts) == 1
        assert not conn.in_transaction
    finally:
        conn.close()


def test_rejects_nested_use(db):
    with db.connect() as conn:
        conn.begin()
        with pytest.raises(TransactionError):
            conn.run_transaction(lambda c: None)
        conn.rollback()


def test_backoff_grows_exponentially_and_caps(db, monkeypatch):
    delays = []
    monkeypatch.setattr(session_mod, "_sleep", delays.append)

    def always_loses(conn):
        raise SerializationError("conflict")

    conn = db.connect()
    try:
        with pytest.raises(SerializationError):
            conn.run_transaction(always_loses, retries=6, backoff=0.01,
                                 max_backoff=0.08, jitter=False)
    finally:
        conn.close()
    assert delays == [0.01, 0.02, 0.04, 0.08, 0.08, 0.08]


def test_jitter_stays_within_half_to_full_delay(db, monkeypatch):
    delays = []
    monkeypatch.setattr(session_mod, "_sleep", delays.append)

    def always_loses(conn):
        raise SerializationError("conflict")

    conn = db.connect()
    try:
        with pytest.raises(SerializationError):
            conn.run_transaction(always_loses, retries=5, backoff=0.01,
                                 max_backoff=1.0, jitter=True)
    finally:
        conn.close()
    expected = [0.01, 0.02, 0.04, 0.08, 0.16]
    assert len(delays) == 5
    for actual, base in zip(delays, expected):
        assert base * 0.5 <= actual < base


def test_commit_result_is_returned_and_visible(db):
    def rename(conn):
        conn.execute("UPDATE counters SET value = 42 WHERE id = 1")
        return "done"

    with db.connect() as conn:
        assert conn.run_transaction(rename) == "done"
    assert db.execute(
        "SELECT value FROM counters WHERE id = 1").scalar() == 42
