"""Unit tests for DataFrame."""

import numpy as np
import pytest

from repro.errors import LengthMismatchError, MissingColumnError
from repro.frame import Column, DataFrame


@pytest.fixture
def df():
    return DataFrame.from_dict({
        "cat": ["a", "b", "a", None],
        "val": [1.0, 2.0, None, 4.0],
        "n": [10, 20, 30, 40],
    })


class TestConstruction:
    def test_from_dict_shape(self, df):
        assert df.shape == (4, 3)
        assert df.column_names == ["cat", "val", "n"]

    def test_from_rows(self):
        frame = DataFrame.from_rows([(1, "x"), (2, "y")], ["a", "b"])
        assert frame["a"].to_list() == [1, 2]
        assert frame["b"].to_list() == ["x", "y"]

    def test_from_rows_arity_check(self):
        with pytest.raises(LengthMismatchError):
            DataFrame.from_rows([(1,)], ["a", "b"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DataFrame([Column("a", [1]), Column("a", [2])])

    def test_unequal_lengths_rejected(self):
        with pytest.raises(LengthMismatchError):
            DataFrame([Column("a", [1]), Column("b", [1, 2])])

    def test_empty(self):
        frame = DataFrame.empty(["a", "b"])
        assert frame.shape == (0, 2)


class TestAccess:
    def test_getitem_unknown_column(self, df):
        with pytest.raises(MissingColumnError, match="nope"):
            df["nope"]

    def test_contains(self, df):
        assert "cat" in df and "nope" not in df

    def test_row(self, df):
        assert df.row(0) == ("a", 1.0, 10)
        assert df.row(2) == ("a", None, 30)

    def test_iter_rows(self, df):
        assert list(df.iter_rows())[1] == ("b", 2.0, 20)

    def test_head(self, df):
        assert df.head(2).n_rows == 2
        assert df.head(100).n_rows == 4

    def test_to_dict_roundtrip(self, df):
        again = DataFrame.from_dict(df.to_dict())
        assert again.equals(df)


class TestColumnOps:
    def test_select(self, df):
        assert df.select(["n", "cat"]).column_names == ["n", "cat"]

    def test_with_column_appends(self, df):
        out = df.with_column(Column("z", [0, 0, 0, 0]))
        assert out.column_names[-1] == "z"
        assert df.n_cols == 3  # original untouched

    def test_with_column_replaces(self, df):
        out = df.with_column(Column("n", [0, 0, 0, 0]))
        assert out["n"].to_list() == [0, 0, 0, 0]
        assert out.n_cols == 3

    def test_with_column_length_check(self, df):
        with pytest.raises(LengthMismatchError):
            df.with_column(Column("z", [1]))

    def test_drop_column(self, df):
        assert df.drop_column("val").column_names == ["cat", "n"]

    def test_rename_column(self, df):
        assert df.rename_column("n", "count").column_names == ["cat", "val", "count"]


class TestRowOps:
    def test_filter(self, df):
        out = df.filter(np.array([True, False, True, False]))
        assert out["n"].to_list() == [10, 30]

    def test_take(self, df):
        assert df.take([3, 0])["n"].to_list() == [40, 10]

    def test_drop_rows(self, df):
        assert df.drop_rows([1, 2])["n"].to_list() == [10, 40]

    def test_set_values_returns_new_frame(self, df):
        out = df.set_values("val", [0], 99.0)
        assert out["val"][0] == 99.0
        assert df["val"][0] == 1.0

    def test_concat(self, df):
        out = df.concat(df)
        assert out.n_rows == 8

    def test_concat_schema_mismatch(self, df):
        with pytest.raises(ValueError, match="schemas differ"):
            df.concat(df.drop_column("n"))

    def test_sort_values_ascending_missing_last(self, df):
        out = df.sort_values("val")
        assert out["val"].to_list() == [1.0, 2.0, 4.0, None]

    def test_sort_values_descending_missing_last(self, df):
        out = df.sort_values("val", ascending=False)
        assert out["val"].to_list() == [4.0, 2.0, 1.0, None]

    def test_sort_values_string(self, df):
        out = df.sort_values("cat")
        assert out["cat"].to_list() == ["a", "a", "b", None]


class TestAnalytics:
    def test_categorical_columns(self, dirty_frame):
        cats = dirty_frame.categorical_columns()
        assert "country" in cats and "degree" in cats

    def test_numerical_columns_include_messy(self, dirty_frame):
        nums = dirty_frame.numerical_columns()
        assert "income" in nums  # mixed dtype but mostly numeric
        assert "age" in nums

    def test_describe(self, df):
        summary = df.describe()
        assert summary["val"]["missing"] == 1
        assert summary["n"]["mean"] == 25.0

    def test_equals(self, df):
        assert df.equals(df.select(df.column_names))
        assert not df.equals(df.drop_column("n"))
