"""Histogram-driven range selectivity and the index-vs-scan demotion.

Before equi-depth histograms every range conjunct got the flat 0.3
default, so ``val > 10`` over a table where that matches ~100% of rows
still picked an IndexRangeScan — per-row index walks at twice the cost
of a sequential read.  These tests pin the planner behavior the
histograms buy: selective ranges keep the index, broad ranges demote to
a scan, parameterized bounds stay binding-independent, and tiny tables
never demote.
"""

import pytest

from repro.minidb import Database
from repro.minidb.stats import HIST_BUCKETS, ColumnStats, _hist_key
from repro.minidb.planner import DEMOTE_MIN_ROWS


def _db(n=2000):
    db = Database()
    db.execute("CREATE TABLE t (cat TEXT, val REAL)")
    db.insert_rows(
        "t", [(f"c{i % 10}", float(i % 1000)) for i in range(n)])
    db.execute("CREATE INDEX iv ON t (val)")
    db.analyze()
    return db


class TestPlannerDemotion:
    def test_selective_range_keeps_index(self):
        db = _db()
        plan = db.explain("SELECT rowid FROM t WHERE val < 20")
        assert "IndexRangeScan" in plan, plan

    def test_broad_range_demotes_to_seq_scan(self):
        db = _db()
        plan = db.explain("SELECT rowid FROM t WHERE val > 10")
        assert "IndexRangeScan" not in plan, plan
        assert "SeqScan" in plan, plan
        assert "Filter" in plan  # the pushed range survives as a residual

    def test_broad_range_answers_match(self):
        db = _db()
        demoted = db.execute("SELECT rowid FROM t WHERE val > 10").rows
        db.pragma("vectorize", "off")
        plain = Database()
        plain.execute("CREATE TABLE t (cat TEXT, val REAL)")
        plain.insert_rows(
            "t", [(f"c{i % 10}", float(i % 1000)) for i in range(2000)])
        expected = plain.execute("SELECT rowid FROM t WHERE val > 10").rows
        assert sorted(demoted) == sorted(expected)

    def test_parameterized_bound_keeps_index(self):
        """Plans must stay binding-independent: a ``?`` bound cannot
        consult the histogram, so the flat default (and the index) hold."""
        db = _db()
        plan = db.explain("SELECT rowid FROM t WHERE val > ?", (10.0,))
        assert "IndexRangeScan" in plan, plan

    def test_tiny_tables_never_demote(self):
        db = _db(n=DEMOTE_MIN_ROWS - 1)
        plan = db.explain("SELECT rowid FROM t WHERE val > 1")
        assert "IndexRangeScan" in plan, plan

    def test_between_estimate_uses_histogram(self):
        """EXPLAIN row estimates track the actual range width, not 0.3."""
        db = _db()
        def est(sql):
            line = next(l for l in db.explain(sql).splitlines()
                        if "Scan" in l or "Filter" in l)
            return float(line.split("est_rows=")[1].rstrip("]"))
        narrow = est("SELECT rowid FROM t WHERE val BETWEEN 0 AND 50")
        wide = est("SELECT rowid FROM t WHERE val BETWEEN 0 AND 900")
        assert narrow == pytest.approx(100, rel=0.5)    # ~5% of 2000
        assert wide == pytest.approx(1800, rel=0.25)    # ~90% of 2000


class TestFractionBelow:
    def _stats(self, values):
        keys = sorted(_hist_key(v) for v in values)
        n = len(keys)
        b = min(HIST_BUCKETS, n)
        bounds = tuple(keys[(i * (n - 1)) // b] for i in range(b + 1))
        return ColumnStats(float(n), 0.0, bounds)

    def test_uniform_interpolation(self):
        stats = self._stats(range(1000))
        assert stats.fraction_below(_hist_key(0), False) == 0.0
        assert stats.fraction_below(_hist_key(250), True) == pytest.approx(
            0.25, abs=0.05)
        assert stats.fraction_below(_hist_key(999), True) == 1.0
        assert stats.fraction_below(_hist_key(5000), False) == 1.0
        assert stats.fraction_below(_hist_key(-1), True) == 0.0

    def test_heavy_hitter_run_counts_inclusive(self):
        """A value filling many buckets: <= must cover the whole run."""
        stats = self._stats([7] * 900 + list(range(100)))
        le = stats.fraction_below(_hist_key(7), True)
        lt = stats.fraction_below(_hist_key(7), False)
        assert le > 0.85
        assert lt < le

    def test_text_keys_split_without_interpolation(self):
        stats = self._stats([f"k{i:03d}" for i in range(100)])
        frac = stats.fraction_below(_hist_key("k050"), True)
        assert 0.3 < frac < 0.7

    def test_degenerate_single_value(self):
        stats = ColumnStats(1.0, 0.0, (_hist_key(5),))
        assert stats.fraction_below(_hist_key(4), True) == 0.0
        assert stats.fraction_below(_hist_key(5), True) == 1.0
        assert stats.fraction_below(_hist_key(5), False) == 0.0
