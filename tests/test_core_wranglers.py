"""Unit tests for built-in and custom wranglers."""

import pytest

from repro.backends import make_backend
from repro.config import BuckarooConfig
from repro.core.types import (
    ERROR_MISSING,
    ERROR_OUTLIER,
    ERROR_TYPE_MISMATCH,
    OP_DELETE_ROWS,
    OP_SET_CELLS,
    Anomaly,
    Group,
    GroupKey,
)
from repro.core.wranglers import (
    ClipOutliersWrangler,
    ConvertTypeWrangler,
    DeleteRowsWrangler,
    ImputeConstantWrangler,
    ImputeMeanWrangler,
    ImputeMedianWrangler,
    MergeSmallGroupsWrangler,
    WranglerRegistry,
    WranglingContext,
)
from repro.errors import WranglerError
from repro.frame import DataFrame

from tests.test_backends import COLUMNS, ROWS


@pytest.fixture(params=["sql", "frame"])
def ctx(request):
    backend = make_backend(DataFrame.from_rows(ROWS, COLUMNS), request.param)
    return WranglingContext(backend, BuckarooConfig(min_group_size=2))


def bhutan_income(ctx) -> Group:
    key = GroupKey("country", "Bhutan", "income")
    return Group(key, tuple(ctx.backend.group_row_ids("country", "Bhutan")))


def lesotho_income(ctx) -> Group:
    key = GroupKey("country", "Lesotho", "income")
    return Group(key, tuple(ctx.backend.group_row_ids("country", "Lesotho")))


def anomaly(row_id, code, group, value=None):
    return Anomaly(row_id, group.key.numerical, code, group.key, value)


class TestDelete:
    def test_plan_deletes_anomalous_rows(self, ctx):
        group = bhutan_income(ctx)
        anomalies = [anomaly(4, ERROR_OUTLIER, group, 1000000.0)]
        plan = DeleteRowsWrangler().plan(ctx, group, anomalies)
        assert plan.ops[0].kind == OP_DELETE_ROWS
        assert plan.ops[0].row_ids == (4,)
        assert plan.error_code == ERROR_OUTLIER
        assert "low" in plan.params and "high" in plan.params  # codegen bounds


class TestImpute:
    def test_group_mean_excludes_targets(self, ctx):
        group = lesotho_income(ctx)
        anomalies = [anomaly(6, ERROR_MISSING, group)]
        plan = ImputeMeanWrangler().plan(ctx, group, anomalies)
        op = plan.ops[0]
        assert op.kind == OP_SET_CELLS
        assert op.row_ids == (6,)
        assert op.value == pytest.approx((72000 + 48000 + 55000) / 3)
        assert plan.params["scope"] == "group"

    def test_median(self, ctx):
        group = lesotho_income(ctx)
        plan = ImputeMedianWrangler().plan(
            ctx, group, [anomaly(6, ERROR_MISSING, group)]
        )
        assert plan.ops[0].value == 55000.0

    def test_global_scope(self, ctx):
        group = lesotho_income(ctx)
        plan = ImputeMeanWrangler(scope="global").plan(
            ctx, group, [anomaly(6, ERROR_MISSING, group)]
        )
        stats = ctx.backend.numeric_stats("income")
        assert plan.ops[0].value == pytest.approx(round(stats.mean, 6))

    def test_constant(self, ctx):
        group = lesotho_income(ctx)
        plan = ImputeConstantWrangler(value=0).plan(
            ctx, group, [anomaly(6, ERROR_MISSING, group)]
        )
        assert plan.ops[0].value == 0

    def test_invalid_scope(self):
        with pytest.raises(WranglerError):
            ImputeMeanWrangler(scope="galaxy")


class TestConvertType:
    def test_lenient_conversion(self, ctx):
        group = bhutan_income(ctx)
        plan = ConvertTypeWrangler().plan(
            ctx, group, [anomaly(3, ERROR_TYPE_MISMATCH, group, "12k")]
        )
        op = plan.ops[0]
        assert op.row_ids == (3,)
        assert op.values == (12000.0,)

    def test_unparseable_to_null(self, ctx):
        ctx.backend.set_cells("income", [1], "garbage")
        group = bhutan_income(ctx)
        plan = ConvertTypeWrangler(on_fail="null").plan(
            ctx, group, [anomaly(1, ERROR_TYPE_MISMATCH, group, "garbage")]
        )
        assert plan.ops[0].kind == OP_SET_CELLS
        assert plan.ops[0].value is None

    def test_unparseable_to_delete(self, ctx):
        ctx.backend.set_cells("income", [1], "garbage")
        group = bhutan_income(ctx)
        plan = ConvertTypeWrangler(on_fail="delete").plan(
            ctx, group, [anomaly(1, ERROR_TYPE_MISMATCH, group, "garbage")]
        )
        assert plan.ops[0].kind == OP_DELETE_ROWS

    def test_invalid_on_fail(self):
        with pytest.raises(WranglerError):
            ConvertTypeWrangler(on_fail="explode")


class TestClip:
    def test_clips_to_threshold(self, ctx):
        group = bhutan_income(ctx)
        plan = ClipOutliersWrangler().plan(
            ctx, group, [anomaly(4, ERROR_OUTLIER, group, 1000000.0)]
        )
        op = plan.ops[0]
        assert op.row_ids == (4,)
        assert op.values[0] == plan.params["high"]
        assert op.values[0] < 1000000.0


class TestMergeSmallGroups:
    def test_relabels_category(self, ctx):
        key = GroupKey("country", "Nauru", "income")
        group = Group(key, (9,))
        plan = MergeSmallGroupsWrangler().plan(
            ctx, group, [Anomaly(9, "country", "small_group", key, "Nauru")]
        )
        op = plan.ops[0]
        assert op.column == "country"
        assert op.value == "Other"


class TestRegistry:
    def test_for_error_filters(self):
        registry = WranglerRegistry()
        codes = [w.code for w in registry.for_error(ERROR_TYPE_MISMATCH)]
        assert "convert_type" in codes
        assert "clip_outliers" not in codes
        assert "delete_rows" in codes  # wildcard

    def test_custom_function_wrangler_set_cells(self, ctx):
        registry = WranglerRegistry()

        def fixer(df=None, target_column="", error_type_code="", row_ids=()):
            return {row_id: 0.0 for row_id in row_ids}

        registry.register_function("zero_out", fixer, error_codes=(ERROR_MISSING,))
        group = lesotho_income(ctx)
        plan = registry.get("zero_out").plan(
            ctx, group, [anomaly(6, ERROR_MISSING, group)]
        )
        assert plan.ops[0].kind == OP_SET_CELLS
        assert plan.ops[0].values == (0.0,)

    def test_custom_function_wrangler_delete(self, ctx):
        registry = WranglerRegistry()
        registry.register_function(
            "drop_them", lambda df=None, target_column="", error_type_code="",
            row_ids=(): list(row_ids),
        )
        group = lesotho_income(ctx)
        plan = registry.get("drop_them").plan(
            ctx, group, [anomaly(6, ERROR_MISSING, group)]
        )
        assert plan.ops[0].kind == OP_DELETE_ROWS

    def test_failing_custom_wrangler_wrapped(self, ctx):
        registry = WranglerRegistry()
        registry.register_function("boom", lambda **kwargs: 1 / 0)
        group = lesotho_income(ctx)
        with pytest.raises(WranglerError, match="boom"):
            registry.get("boom").plan(ctx, group, [anomaly(6, ERROR_MISSING, group)])

    def test_unknown_wrangler(self):
        with pytest.raises(WranglerError):
            WranglerRegistry().get("nope")
