"""Integration tests for SELECT execution against the dirty fixture."""

import pytest

from repro.errors import PlanningError
from repro.minidb import Database


class TestProjection:
    def test_star(self, dirty_db):
        result = dirty_db.execute("SELECT * FROM salary")
        assert result.columns == ["country", "degree", "income", "age"]
        assert len(result) == 9

    def test_expressions_and_aliases(self, dirty_db):
        result = dirty_db.execute("SELECT age * 2 AS dbl FROM salary WHERE age = 34")
        assert result.columns == ["dbl"]
        assert result.scalar() == 68

    def test_rowid_pseudocolumn(self, dirty_db):
        rows = dirty_db.execute("SELECT rowid FROM salary ORDER BY rowid").scalars()
        assert rows == list(range(1, 10))

    def test_select_without_from(self):
        assert Database().execute("SELECT 1 + 2").scalar() == 3

    def test_output_names_for_functions(self, dirty_db):
        result = dirty_db.execute("SELECT COUNT(*), AVG(age) FROM salary")
        assert result.columns[0] == "count(*)"
        assert result.columns[1] == "avg(age)"


class TestFiltering:
    def test_equality_on_indexed_column(self, dirty_db):
        rows = dirty_db.execute(
            "SELECT degree FROM salary WHERE country = ?", ("Nauru",)
        ).scalars()
        assert rows == ["BS"]

    def test_three_valued_logic_null_filtered(self, dirty_db):
        # income = NULL row must not match either branch
        n_low = dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE income < 60000").scalar()
        n_high = dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE income >= 60000").scalar()
        n_null = dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE income IS NULL").scalar()
        n_text = dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE typeof(income) = 'text'").scalar()
        # text sorts above numbers, so income >= 60000 includes '12k'
        assert n_null == 1
        assert n_text == 1
        assert n_low + n_high + n_null == 9

    def test_in_list(self, dirty_db):
        n = dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE country IN ('Bhutan', 'Nauru')"
        ).scalar()
        assert n == 5

    def test_between(self, dirty_db):
        rows = dirty_db.execute(
            "SELECT age FROM salary WHERE age BETWEEN 30 AND 36 ORDER BY age"
        ).scalars()
        assert rows == [31, 34, 35]

    def test_like(self, dirty_db):
        n = dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE country LIKE '%o'").scalar()
        assert n == 4  # Lesotho x4

    def test_not(self, dirty_db):
        n = dirty_db.execute(
            "SELECT COUNT(*) FROM salary WHERE NOT country = 'Bhutan'").scalar()
        assert n == 5

    def test_typeof_guard_for_numeric_comparison(self, dirty_db):
        """The outlier-detector pattern: numeric filter excluding text."""
        rows = dirty_db.execute(
            "SELECT rowid FROM salary WHERE income > ? "
            "AND typeof(income) <> 'text'", (100000,)
        ).scalars()
        assert rows == [4]


class TestAggregation:
    def test_global_aggregates(self, dirty_db):
        row = dirty_db.execute(
            "SELECT COUNT(*), COUNT(income), MIN(age), MAX(age) FROM salary"
        ).first()
        assert row == (9, 8, 27, 52)

    def test_group_by_counts(self, dirty_db):
        result = dirty_db.execute(
            "SELECT country, COUNT(*) FROM salary GROUP BY country ORDER BY country"
        )
        assert result.rows == [("Bhutan", 4), ("Lesotho", 4), ("Nauru", 1)]

    def test_avg_skips_null_and_text(self, dirty_db):
        avg = dirty_db.execute(
            "SELECT AVG(income) FROM salary WHERE country = 'Lesotho'").scalar()
        assert avg == pytest.approx((72000 + 48000 + 55000) / 3)

    def test_having(self, dirty_db):
        rows = dirty_db.execute(
            "SELECT country FROM salary GROUP BY country HAVING COUNT(*) >= 4 "
            "ORDER BY country"
        ).scalars()
        assert rows == ["Bhutan", "Lesotho"]

    def test_having_with_alias(self, dirty_db):
        rows = dirty_db.execute(
            "SELECT country, COUNT(*) AS n FROM salary GROUP BY country "
            "HAVING n = 1"
        ).rows
        assert rows == [("Nauru", 1)]

    def test_count_distinct(self, dirty_db):
        assert dirty_db.execute(
            "SELECT COUNT(DISTINCT degree) FROM salary").scalar() == 3

    def test_group_by_positional_order(self, dirty_db):
        rows = dirty_db.execute(
            "SELECT country, COUNT(*) FROM salary GROUP BY country "
            "ORDER BY 2 DESC, 1"
        ).rows
        assert rows == [("Bhutan", 4), ("Lesotho", 4), ("Nauru", 1)]

    def test_group_by_positional_order_out_of_range(self, dirty_db):
        with pytest.raises(PlanningError, match="position 9"):
            dirty_db.execute(
                "SELECT country, COUNT(*) FROM salary GROUP BY country "
                "ORDER BY 9"
            )

    def test_median_and_stddev(self, dirty_db):
        median = dirty_db.execute("SELECT MEDIAN(age) FROM salary").scalar()
        assert median == 35
        stddev = dirty_db.execute("SELECT STDDEV(age) FROM salary").scalar()
        assert stddev == pytest.approx(7.480, abs=0.01)

    def test_aggregate_on_empty_input(self, dirty_db):
        row = dirty_db.execute(
            "SELECT COUNT(*), SUM(age), AVG(age) FROM salary WHERE country = 'Atlantis'"
        ).first()
        assert row == (0, None, None)

    def test_group_by_missing_key_forms_group(self):
        db = Database()
        db.execute("CREATE TABLE t (k TEXT, v INT)")
        db.executemany("INSERT INTO t VALUES (?, ?)", [("a", 1), (None, 2), (None, 3)])
        result = db.execute("SELECT k, COUNT(*) FROM t GROUP BY k")
        assert (None, 2) in result.rows

    def test_bare_column_outside_group_by_rejected(self, dirty_db):
        with pytest.raises(PlanningError, match="GROUP BY"):
            dirty_db.execute("SELECT age, COUNT(*) FROM salary GROUP BY country")


class TestOrderingAndLimits:
    def test_order_by_desc(self, dirty_db):
        ages = dirty_db.execute(
            "SELECT age FROM salary ORDER BY age DESC LIMIT 3").scalars()
        assert ages == [52, 44, 41]

    def test_order_by_multiple_keys(self, dirty_db):
        rows = dirty_db.execute(
            "SELECT country, degree FROM salary ORDER BY country, degree LIMIT 3"
        ).rows
        assert rows == [("Bhutan", "BS"), ("Bhutan", "BS"), ("Bhutan", "MS")]

    def test_order_by_position(self, dirty_db):
        ages = dirty_db.execute(
            "SELECT age FROM salary ORDER BY 1 LIMIT 2").scalars()
        assert ages == [27, 29]

    def test_order_by_alias_in_aggregate(self, dirty_db):
        rows = dirty_db.execute(
            "SELECT country, COUNT(*) AS n FROM salary GROUP BY country "
            "ORDER BY n DESC, country"
        ).rows
        assert rows[0][0] == "Bhutan"
        assert rows[-1] == ("Nauru", 1)

    def test_order_by_column_not_in_projection(self, dirty_db):
        degrees = dirty_db.execute(
            "SELECT degree FROM salary WHERE country='Lesotho' ORDER BY age"
        ).scalars()
        assert degrees == ["BS", "PhD", "MS", "BS"]

    def test_limit_offset(self, dirty_db):
        rows = dirty_db.execute(
            "SELECT rowid FROM salary ORDER BY rowid LIMIT 3 OFFSET 2").scalars()
        assert rows == [3, 4, 5]

    def test_distinct(self, dirty_db):
        degrees = dirty_db.execute(
            "SELECT DISTINCT degree FROM salary ORDER BY 1").scalars()
        assert degrees == ["BS", "MS", "PhD"]

    def test_nulls_order_last_like_postgres_default(self):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.executemany("INSERT INTO t VALUES (?)", [(3,), (None,), (1,)])
        values = db.execute("SELECT v FROM t ORDER BY v").scalars()
        assert values == [None, 1, 3]  # NULL sorts first (smallest sort key)


class TestJoins:
    @pytest.fixture
    def db(self, dirty_db):
        dirty_db.execute("CREATE TABLE errors (ref INT, code TEXT)")
        dirty_db.executemany(
            "INSERT INTO errors VALUES (?, ?)",
            [(3, "type_mismatch"), (4, "outlier"), (6, "missing_value")],
        )
        return dirty_db

    def test_inner_join(self, db):
        rows = db.execute(
            "SELECT s.country, e.code FROM salary s JOIN errors e "
            "ON s.rowid = e.ref ORDER BY e.ref"
        ).rows
        assert rows == [
            ("Bhutan", "type_mismatch"),
            ("Bhutan", "outlier"),
            ("Lesotho", "missing_value"),
        ]

    def test_left_join_pads_with_null(self, db):
        n_unmatched = db.execute(
            "SELECT COUNT(*) FROM salary s LEFT JOIN errors e "
            "ON s.rowid = e.ref WHERE e.code IS NULL"
        ).scalar()
        assert n_unmatched == 6

    def test_join_with_aggregation(self, db):
        rows = db.execute(
            "SELECT s.country, COUNT(*) FROM salary s JOIN errors e "
            "ON s.rowid = e.ref GROUP BY s.country ORDER BY s.country"
        ).rows
        assert rows == [("Bhutan", 2), ("Lesotho", 1)]

    def test_non_equi_join_falls_back_to_nested_loop(self, db):
        n = db.execute(
            "SELECT COUNT(*) FROM salary s JOIN errors e ON s.rowid < e.ref"
        ).scalar()
        assert n == 2 + 3 + 5  # rowids below 3, 4, 6


class TestExplain:
    def test_index_eq_plan(self, dirty_db):
        plan = dirty_db.explain("SELECT * FROM salary WHERE country = 'Bhutan'")
        assert "IndexEqScan" in plan and "idx_salary_country" in plan

    def test_range_plan(self, dirty_db):
        plan = dirty_db.explain("SELECT * FROM salary WHERE income > 100")
        assert "IndexRangeScan" in plan

    def test_seq_scan_without_index(self, dirty_db):
        plan = dirty_db.explain("SELECT * FROM salary WHERE age = 34")
        assert "SeqScan" in plan

    def test_aggregate_and_sort_steps(self, dirty_db):
        plan = dirty_db.explain(
            "SELECT country, COUNT(*) FROM salary GROUP BY country ORDER BY 1 LIMIT 2"
        )
        assert "HashAggregate" in plan and "Sort" in plan and "Limit" in plan
