"""The cost-based plan IR: EXPLAIN tree shapes, join reordering, merge
joins, streaming aggregation, range+order fusion, and the regressions
fixed alongside the refactor (NULL range bounds, LIMIT short-circuiting
through nested-loop joins)."""

import pytest

from repro.errors import ExecutionError, PlanningError
from repro.minidb import Database


def _indent_of(plan: str, marker: str) -> int:
    for line in plan.splitlines():
        if marker in line:
            return len(line) - len(line.lstrip())
    raise AssertionError(f"{marker!r} not in plan:\n{plan}")


# ---------------------------------------------------------------------------
# EXPLAIN shape: every operator prints its name, chosen index, and est_rows
# ---------------------------------------------------------------------------


class TestExplainShape:
    @pytest.fixture
    def db(self) -> Database:
        db = Database()
        db.execute("CREATE TABLE t (cat TEXT, val REAL)")
        db.insert_rows("t", [(f"c{i % 5}", float(i)) for i in range(200)])
        db.execute("CREATE INDEX idx_val ON t (val)")
        return db

    def test_scan_line_has_est_rows(self, db):
        plan = db.explain("SELECT val FROM t")
        assert "SeqScan(t) [est_rows=200]" in plan
        assert "Project(val)" in plan

    def test_index_scan_names_index_and_estimates(self, db):
        plan = db.explain("SELECT val FROM t WHERE val > 100")
        assert "IndexRangeScan(t.val via idx_val" in plan
        assert "est_rows=" in plan

    def test_filter_is_its_own_node(self, db):
        plan = db.explain("SELECT val FROM t WHERE cat = 'c1'")
        assert "SeqScan(t)" in plan
        assert "Filter(cat = 'c1')" in plan
        # the filter sits above the scan in the tree
        assert _indent_of(plan, "Filter(") < _indent_of(plan, "SeqScan")

    def test_limit_and_topk_nodes(self, db):
        plan = db.explain("SELECT val FROM t ORDER BY cat LIMIT 3")
        assert "TopK(keys=1)" in plan and "Limit [est_rows=3]" in plan

    def test_sort_node_without_limit(self, db):
        plan = db.explain("SELECT val FROM t ORDER BY cat")
        assert "Sort(keys=1)" in plan

    def test_desc_range_scan_serves_order(self, db):
        plan = db.explain("SELECT val FROM t WHERE val > 50 ORDER BY val DESC LIMIT 3")
        assert "IndexRangeScan" in plan and "DESC" in plan
        assert "TopK" not in plan and "Sort" not in plan
        rows = db.execute(
            "SELECT val FROM t WHERE val > 50 ORDER BY val DESC LIMIT 3"
        ).scalars()
        assert rows == [199.0, 198.0, 197.0]

    def test_explain_analyze_reports_actual_rows(self, db):
        plan = db.explain("SELECT val FROM t WHERE cat = 'c1' LIMIT 7", analyze=True)
        assert "rows=7" in plan and "est_rows=" in plan

    def test_explain_analyze_rejects_dml(self, db):
        with pytest.raises(PlanningError):
            db.execute("EXPLAIN ANALYZE DELETE FROM t")


# ---------------------------------------------------------------------------
# join reordering (the acceptance scenario) and each join strategy's shape
# ---------------------------------------------------------------------------


def _three_table_db(n_big: int = 5000) -> Database:
    db = Database()
    db.execute("CREATE TABLE big (m INT, s INT, v REAL)")
    db.execute("CREATE TABLE mid (id INT, w REAL)")
    db.execute("CREATE TABLE small (id INT, flag INT)")
    db.insert_rows("big", [(i % 500, i % 50, float(i)) for i in range(n_big)])
    db.insert_rows("mid", [(i, float(i)) for i in range(500)])
    # flag is selective (25 distinct values): WHERE flag = 1 keeps 2 rows
    db.insert_rows("small", [(i, i % 25) for i in range(50)])
    return db


THREE_TABLE_SQL = (
    "SELECT big.v, mid.w, small.id FROM big "
    "JOIN mid ON big.m = mid.id "
    "JOIN small ON big.s = small.id WHERE small.flag = 1"
)


class TestJoinReordering:
    def test_small_filtered_table_becomes_first_build_side(self):
        """The acceptance criterion: a 3-table equi-join with a small
        filtered table written *last* in syntactic order is planned with
        that table as the first (deepest) build side."""
        db = _three_table_db()
        plan = db.explain(THREE_TABLE_SQL)
        assert "HashJoin(small" in plan and "HashJoin(mid" in plan
        # deeper indentation = earlier join step; small must join first
        assert _indent_of(plan, "HashJoin(small") > _indent_of(plan, "HashJoin(mid")
        # the filter on the small table is pushed into its build-side scan
        assert _indent_of(plan, "Filter(small.flag = 1)") > _indent_of(
            plan, "HashJoin(small"
        )

    def test_reordered_results_match_syntactic(self):
        db = _three_table_db(n_big=2000)
        fast = db.execute(THREE_TABLE_SQL).rows
        db.reorder_joins = False
        plan = db.explain(THREE_TABLE_SQL)
        # syntactic order: mid joins first (deepest)
        assert _indent_of(plan, "HashJoin(mid") > _indent_of(plan, "HashJoin(small")
        slow = db.execute(THREE_TABLE_SQL).rows
        assert sorted(map(repr, fast)) == sorted(map(repr, slow))

    def test_where_pushdown_to_any_table(self):
        """In reorder mode, single-table WHERE conjuncts reach the scan of
        whichever table they mention — not just the base table."""
        db = _three_table_db(n_big=1000)
        db.execute("CREATE INDEX idx_mid_id ON mid (id)")
        plan = db.explain(
            "SELECT big.v FROM big JOIN mid ON big.m = mid.id WHERE mid.id = 7"
        )
        assert "IndexEqScan" in plan and "idx_mid_id" in plan

    def test_left_join_keeps_syntactic_order(self):
        db = _three_table_db(n_big=500)
        plan = db.explain(
            "SELECT big.v FROM big LEFT JOIN mid ON big.m = mid.id "
            "JOIN small ON big.s = small.id WHERE small.flag = 1"
        )
        # any LEFT join disables reordering: mid joins first, LEFT marked
        assert _indent_of(plan, "HashJoin(mid") > _indent_of(plan, "HashJoin(small")
        assert "LEFT" in plan

    def test_cross_join_component_still_works(self):
        db = Database()
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE b (y INT)")
        db.execute("CREATE TABLE c (z INT)")
        db.insert_rows("a", [(1,), (2,)])
        db.insert_rows("b", [(10,), (20,)])
        db.insert_rows("c", [(5,), (6,)])
        sql = ("SELECT a.x, b.y, c.z FROM a JOIN b ON a.x < b.y "
               "JOIN c ON c.z = a.x + 4 ORDER BY a.x, b.y, c.z")
        rows = db.execute(sql).rows
        assert rows == [(1, 10, 5), (1, 20, 5), (2, 10, 6), (2, 20, 6)]


# ---------------------------------------------------------------------------
# merge joins
# ---------------------------------------------------------------------------


class TestMergeJoin:
    @pytest.fixture
    def pair(self):
        """An indexed db (merge-joinable) and an identical unindexed twin."""
        indexed, plain = Database(), Database()
        rows_a = [(float(i % 13), i) for i in range(60)] + [(None, 99)]
        rows_b = [(float(i % 9), i * 10) for i in range(40)] + [(None, 990)]
        for db in (indexed, plain):
            db.execute("CREATE TABLE a (k REAL, x INT)")
            db.execute("CREATE TABLE b (k REAL, y INT)")
            db.insert_rows("a", rows_a)
            db.insert_rows("b", rows_b)
        indexed.execute("CREATE INDEX iak ON a (k)")
        indexed.execute("CREATE INDEX ibk ON b (k)")
        return indexed, plain

    SQL = "SELECT a.k, a.x, b.y FROM a JOIN b ON a.k = b.k ORDER BY a.k"

    @staticmethod
    def _check_equivalent(fast, slow):
        """Key order must match; full rows as multisets (ties may differ)."""
        assert [row[0] for row in fast] == [row[0] for row in slow]
        assert sorted(map(repr, fast)) == sorted(map(repr, slow))

    def test_order_by_join_key_uses_merge_and_elides_sort(self, pair):
        indexed, _ = pair
        plan = indexed.explain(self.SQL)
        assert "MergeJoin(b, key=k)" in plan
        assert "HashJoin" not in plan
        assert "Sort" not in plan and "TopK" not in plan
        assert "IndexOrderScan(a.k via iak)" in plan
        assert "IndexOrderScan(b.k via ibk)" in plan

    def test_merge_results_match_hash_twin(self, pair):
        indexed, plain = pair
        assert "MergeJoin" in indexed.explain(self.SQL)
        assert "HashJoin" in plain.explain(self.SQL)
        self._check_equivalent(indexed.execute(self.SQL).rows,
                               plain.execute(self.SQL).rows)

    def test_merge_skips_null_keys(self, pair):
        indexed, plain = pair
        n_fast = indexed.execute("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k").scalar()
        n_slow = plain.execute("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k").scalar()
        assert n_fast == n_slow

    def test_merge_with_limit_touches_few_keys(self, pair):
        indexed, _ = pair
        rows = indexed.execute(
            "SELECT a.k FROM a JOIN b ON a.k = b.k ORDER BY a.k LIMIT 4"
        ).scalars()
        assert rows == sorted(rows) and len(rows) == 4

    def test_merge_with_extra_residual_conjunct(self, pair):
        indexed, plain = pair
        sql = ("SELECT a.k, a.x, b.y FROM a JOIN b ON a.k = b.k AND a.x < b.y "
               "ORDER BY a.k")
        assert "MergeJoin" in indexed.explain(sql) and "Filter" in indexed.explain(sql)
        self._check_equivalent(indexed.execute(sql).rows,
                               plain.execute(sql).rows)

    def test_mixed_type_keys_merge_correctly(self):
        indexed, plain = Database(), Database()
        rows = [(1, 1), (1.0, 2), ("x", 3), (None, 4), (2, 5)]
        for db in (indexed, plain):
            db.execute("CREATE TABLE a (k REAL, x INT)")
            db.execute("CREATE TABLE b (k REAL, y INT)")
            db.insert_rows("a", rows)
            db.insert_rows("b", rows)
        indexed.execute("CREATE INDEX iak ON a (k)")
        indexed.execute("CREATE INDEX ibk ON b (k)")
        sql = "SELECT a.k, a.x, b.y FROM a JOIN b ON a.k = b.k ORDER BY a.k"
        assert "MergeJoin" in indexed.explain(sql)
        self._check_equivalent(indexed.execute(sql).rows,
                               plain.execute(sql).rows)

    def test_large_build_side_steers_to_merge_without_order_by(self):
        db = Database()
        db.execute("CREATE TABLE a (k INT, x INT)")
        db.execute("CREATE TABLE b (k INT, y INT)")
        db.insert_rows("a", [(i % 400, i) for i in range(800)])
        db.insert_rows("b", [(i % 400, i) for i in range(800)])
        db.execute("CREATE INDEX iak ON a (k)")
        db.execute("CREATE INDEX ibk ON b (k)")
        plan = db.explain("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k")
        assert "MergeJoin" in plan
        n = db.execute("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k").scalar()
        assert n == 1600


# ---------------------------------------------------------------------------
# streaming aggregation
# ---------------------------------------------------------------------------


class TestStreamAggregate:
    @pytest.fixture
    def pair(self):
        indexed, plain = Database(), Database()
        rows = [(f"c{i % 8}", float(i)) for i in range(160)]
        rows.append((None, 5.0))  # NULL group key
        for db in (indexed, plain):
            db.execute("CREATE TABLE t (cat TEXT, val REAL)")
            db.insert_rows("t", rows)
        indexed.execute("CREATE INDEX icat ON t (cat)")
        return indexed, plain

    SQL = "SELECT cat, COUNT(*), SUM(val) FROM t GROUP BY cat ORDER BY cat"

    def test_ordered_input_streams_and_elides_sort(self, pair):
        indexed, plain = pair
        plan = indexed.explain(self.SQL)
        assert "StreamAggregate(keys=1)" in plan
        assert "HashAggregate" not in plan and "Sort" not in plan
        assert "IndexOrderScan(t.cat via icat)" in plan
        assert "HashAggregate" in plain.explain(self.SQL)

    def test_results_match_hash_twin(self, pair):
        indexed, plain = pair
        assert indexed.execute(self.SQL).rows == plain.execute(self.SQL).rows

    def test_having_and_distinct_aggregates(self, pair):
        indexed, plain = pair
        sql = ("SELECT cat, COUNT(DISTINCT val) FROM t GROUP BY cat "
               "HAVING COUNT(*) > 2 ORDER BY cat")
        assert "StreamAggregate" in indexed.explain(sql)
        assert "Having" in indexed.explain(sql)
        assert indexed.execute(sql).rows == plain.execute(sql).rows

    def test_streaming_holds_one_group_at_a_time(self):
        """LIMIT over a streamed GROUP BY never touches later groups: a
        poisoned row in the last group stays unevaluated, which is only
        possible if groups are emitted incrementally (a hash aggregate
        materializes everything and blows up)."""
        indexed, plain = Database(), Database()
        rows = [("a", 1.0), ("a", 2.0), ("b", 3.0), ("z", "boom")]
        for db in (indexed, plain):
            db.execute("CREATE TABLE t (cat TEXT, val REAL)")
            db.insert_rows("t", rows)
        indexed.execute("CREATE INDEX icat ON t (cat)")
        sql = "SELECT cat, SUM(val + 1) FROM t GROUP BY cat LIMIT 1"
        assert "StreamAggregate" in indexed.explain(sql)
        assert indexed.execute(sql).rows == [("a", 5.0)]
        with pytest.raises(ExecutionError):
            plain.execute(sql)  # hash aggregation consumes the poison row

    def test_filtered_group_lookup_keeps_hash_strategy(self, pair):
        """Ordering the input must not cost index filtering: an equality
        lookup keeps its index and hash-aggregates the group."""
        indexed, _ = pair
        indexed.execute("CREATE INDEX ival ON t (val)")
        plan = indexed.explain(
            "SELECT val, COUNT(*) FROM t WHERE val = 5 GROUP BY val"
        )
        assert "IndexEqScan" in plan or "IndexRangeScan" in plan


# ---------------------------------------------------------------------------
# range + order fusion
# ---------------------------------------------------------------------------


class TestRangeOrderFusion:
    @pytest.fixture
    def pair(self):
        indexed, plain = Database(), Database()
        rows = [(f"c{i % 4}", float((i * 37) % 211)) for i in range(300)]
        rows += [("c1", None), (None, 3.0), ("c1", "12k")]
        for db in (indexed, plain):
            db.execute("CREATE TABLE t (cat TEXT, val REAL)")
            db.insert_rows("t", rows)
        indexed.execute("CREATE INDEX icv ON t (cat, val)")
        return indexed, plain

    QUERIES = [
        ("SELECT val FROM t WHERE cat = ? AND val > ? ORDER BY val LIMIT 5",
         ("c1", 100.0)),
        ("SELECT val FROM t WHERE cat = ? AND val > ? ORDER BY val", ("c1", 100.0)),
        ("SELECT val FROM t WHERE cat = ? AND val >= ? AND val < ? ORDER BY val",
         ("c2", 50.0, 150.0)),
        ("SELECT val FROM t WHERE cat = ? AND val < ? ORDER BY val DESC LIMIT 4",
         ("c3", 120.0)),
        ("SELECT val FROM t WHERE cat = ? AND val BETWEEN ? AND ?", ("c0", 20, 90)),
    ]

    def test_walk_is_seeded_at_the_bound(self, pair):
        indexed, _ = pair
        plan = indexed.explain(
            "SELECT val FROM t WHERE cat = ? AND val > ? ORDER BY val LIMIT 5"
        )
        assert "eq_prefix=1" in plan and "range=?..+inf" in plan
        assert "Filter" not in plan  # no residual left to apply
        assert "TopK" not in plan and "Sort" not in plan

    def test_fused_answers_match_unindexed_twin(self, pair):
        indexed, plain = pair
        for sql, params in self.QUERIES:
            fast = indexed.execute(sql, params).rows
            slow = plain.execute(sql, params).rows
            assert fast == slow or sorted(map(repr, fast)) == sorted(map(repr, slow)), sql

    def test_null_bound_matches_nothing(self, pair):
        indexed, plain = pair
        for db in (indexed, plain):
            rows = db.execute(
                "SELECT val FROM t WHERE cat = ? AND val > ? ORDER BY val", ("c1", None)
            ).rows
            assert rows == []

    def test_leading_column_range_fuses_without_prefix(self):
        db = Database()
        db.execute("CREATE TABLE t (a REAL, b REAL)")
        db.insert_rows("t", [(float(i), float(i % 7)) for i in range(50)])
        db.execute("CREATE INDEX iab ON t (a, b)")
        plan = db.explain("SELECT a FROM t WHERE a > 40 ORDER BY a, b LIMIT 3")
        assert "eq_prefix=0" in plan and "range=?..+inf" in plan
        assert "Sort" not in plan and "TopK" not in plan
        assert db.execute(
            "SELECT a FROM t WHERE a > 40 ORDER BY a, b LIMIT 3"
        ).scalars() == [41.0, 42.0, 43.0]


# ---------------------------------------------------------------------------
# regressions guarded by the refactor
# ---------------------------------------------------------------------------


class TestRegressions:
    def test_limit_short_circuits_nested_loop_join(self):
        """A poisoned row past the LIMIT cut in the probe stream of a
        nested-loop (non-equi) join is never evaluated."""
        db = Database()
        db.execute("CREATE TABLE a (x REAL)")
        db.execute("CREATE TABLE b (y REAL)")
        db.insert_rows("a", [(1.0,), (2.0,), ("boom",)])
        db.insert_rows("b", [(0.0,), (10.0,)])
        # the poisoned probe row raises inside the join predicate itself
        sql = "SELECT a.x, b.y FROM a JOIN b ON a.x + 0 < b.y LIMIT 2"
        plan = db.explain(sql)
        assert "NestedLoopJoin" in plan
        rows = db.execute(sql).rows
        assert rows == [(1.0, 10.0), (2.0, 10.0)]
        with pytest.raises(ExecutionError):
            db.execute("SELECT a.x, b.y FROM a JOIN b ON a.x + 0 < b.y")

    def test_limit_short_circuits_cross_component_join(self):
        db = Database()
        db.execute("CREATE TABLE a (k INT, x REAL)")
        db.execute("CREATE TABLE b (k INT)")
        db.execute("CREATE TABLE c (z INT)")
        db.insert_rows("a", [(1, 1.0), (1, "boom")])
        db.insert_rows("b", [(1,)])
        db.insert_rows("c", [(7,), (8,)])
        sql = ("SELECT a.x + 0 FROM a JOIN b ON a.k = b.k "
               "JOIN c ON 1 = 1 LIMIT 2")
        assert db.execute(sql).rows == [(1.0,), (1.0,)]

    def test_null_range_bound_returns_no_rows(self):
        """WHERE col < NULL must match nothing through an index too."""
        indexed, plain = Database(), Database()
        for db in (indexed, plain):
            db.execute("CREATE TABLE t (v REAL)")
            db.insert_rows("t", [(float(i),) for i in range(10)])
        indexed.execute("CREATE INDEX iv ON t (v)")
        for sql in ("SELECT v FROM t WHERE v < ?", "SELECT v FROM t WHERE v > ?",
                    "SELECT v FROM t WHERE v BETWEEN ? AND 5"):
            params = (None,)
            assert indexed.execute(sql, params).rows == []
            assert plain.execute(sql, params).rows == []

    def test_reorder_toggle_is_respected(self):
        db = _three_table_db(n_big=300)
        db.reorder_joins = False
        plan = db.explain(THREE_TABLE_SQL)
        assert _indent_of(plan, "HashJoin(mid") > _indent_of(plan, "HashJoin(small")

    def test_merge_steering_never_elides_unrelated_order_by(self):
        """Steering the driver into join-key order must not drop the sort
        for an ORDER BY on a different (unindexed) column."""
        db = Database()
        db.execute("CREATE TABLE t1 (x INT, y INT)")
        db.execute("CREATE TABLE t2 (y INT, z INT)")
        db.insert_rows("t1", [((i * 7919) % 1000, i % 500) for i in range(1000)])
        db.insert_rows("t2", [(i % 500, i) for i in range(600)])
        db.execute("CREATE INDEX i1y ON t1 (y)")
        db.execute("CREATE INDEX i2y ON t2 (y)")
        sql = "SELECT t1.x FROM t1 JOIN t2 ON t1.y = t2.y ORDER BY t1.x"
        plan = db.explain(sql)
        assert "Sort" in plan
        rows = db.execute(sql).scalars()
        assert rows == sorted(rows)

    def test_duplicate_range_conjuncts_both_apply(self):
        """Two range conjuncts on one column: the scan consumes one, the
        other must survive as a residual filter (not be dropped)."""
        indexed, plain = Database(), Database()
        for db in (indexed, plain):
            db.execute("CREATE TABLE t (x INT)")
            db.insert_rows("t", [(i,) for i in range(20)])
        indexed.execute("CREATE INDEX ix ON t (x)")
        for sql, params in [
            ("SELECT x FROM t WHERE x > 10 AND x > 5 ORDER BY x", ()),
            ("SELECT x FROM t WHERE x > 5 AND x > 10 ORDER BY x", ()),
            ("SELECT x FROM t WHERE x < 4 AND x < 12 ORDER BY x", ()),
            ("SELECT x FROM t WHERE x > ? AND x BETWEEN ? AND ? ORDER BY x",
             (8, 3, 15)),
        ]:
            fast = indexed.execute(sql, params).scalars()
            slow = plain.execute(sql, params).scalars()
            assert fast == slow, sql

    def test_ambiguous_column_still_raises(self):
        db = Database()
        db.execute("CREATE TABLE a (v INT)")
        db.execute("CREATE TABLE b (v INT)")
        db.insert_rows("a", [(1,)])
        db.insert_rows("b", [(1,)])
        with pytest.raises(PlanningError):
            db.execute("SELECT a.v FROM a JOIN b ON a.v = b.v WHERE v = 1")
