"""Tests for the incremental backend cache (§3.2) on the SQL backend.

The crucial invariant: after any mutation sequence, cached statistics and
error sets must equal what a fresh scan of the table computes.  Hypothesis
drives random mutation sequences against a recompute-from-scratch oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.sql_backend import SQLBackend
from repro.frame import DataFrame

from tests.test_backends import COLUMNS, ROWS


@pytest.fixture
def backend() -> SQLBackend:
    backend = SQLBackend.from_frame(DataFrame.from_rows(ROWS, COLUMNS))
    backend.ensure_index("country")
    backend.ensure_index("income")
    backend.register_chart_columns(["country", "degree"], ["income", "age"])
    return backend


def fresh_oracle(backend: SQLBackend) -> SQLBackend:
    """An untracked backend over the same current data (recomputes via SQL)."""
    oracle = SQLBackend.from_frame(backend.to_frame())
    return oracle


def assert_consistent(backend: SQLBackend) -> None:
    oracle = fresh_oracle(backend)
    id_map = dict(zip(backend.all_row_ids(), oracle.all_row_ids()))
    for num in ("income", "age"):
        cached = backend.numeric_stats(num)
        scanned = oracle.numeric_stats(num)
        assert cached.count == scanned.count
        if scanned.count:
            assert cached.mean == pytest.approx(scanned.mean)
            assert cached.std == pytest.approx(scanned.std, rel=1e-9, abs=1e-9)
            assert cached.min == pytest.approx(scanned.min)
            assert cached.max == pytest.approx(scanned.max)
        assert sorted(id_map[r] for r in backend.missing_row_ids(num)) == \
            sorted(oracle.missing_row_ids(num))
        assert sorted(id_map[r] for r in backend.mismatch_row_ids(num)) == \
            sorted(oracle.mismatch_row_ids(num))
        for category in backend.distinct_values("country"):
            cached_group = backend.numeric_stats(num, "country", category)
            scanned_group = oracle.numeric_stats(num, "country", category)
            assert cached_group.count == scanned_group.count
            if scanned_group.count:
                assert cached_group.mean == pytest.approx(scanned_group.mean)


class TestTracking:
    def test_initial_build_matches_scan(self, backend):
        assert_consistent(backend)

    def test_tracks_pair(self, backend):
        assert backend.stats_cache.tracks_pair("income", "country")
        assert backend.stats_cache.tracks_pair("income", None)
        assert not backend.stats_cache.tracks_pair("income", "gender")
        assert not backend.stats_cache.tracks_pair("salary", "country")

    def test_track_is_idempotent(self, backend):
        backend.register_chart_columns(["country", "degree"], ["income", "age"])
        assert_consistent(backend)

    def test_track_extends_with_new_columns(self, backend):
        backend.register_chart_columns(["gender"] if "gender" in COLUMNS else [],
                                       [])
        assert_consistent(backend)


class TestMaintenance:
    def test_after_delete(self, backend):
        backend.delete_rows([4, 6])  # the outlier and the missing row
        assert_consistent(backend)
        assert backend.missing_row_ids("income") == []

    def test_after_impute(self, backend):
        backend.set_cells("income", [6], 54000.0)
        assert_consistent(backend)

    def test_after_type_conversion(self, backend):
        backend.set_cells("income", [3], 12000.0)
        assert_consistent(backend)
        assert backend.mismatch_row_ids("income") == []

    def test_after_relabel_moves_buckets(self, backend):
        before = backend.numeric_stats("income", "country", "Lesotho")
        backend.set_cells("country", [9], "Lesotho")  # Nauru row joins Lesotho
        after = backend.numeric_stats("income", "country", "Lesotho")
        assert after.count == before.count + 1
        assert_consistent(backend)

    def test_after_undo_roundtrip(self, backend):
        delta = backend.delete_rows([1, 4, 6])
        backend.revert_delta(delta)
        assert_consistent(backend)

    def test_min_max_dirty_recompute(self, backend):
        stats = backend.numeric_stats("income")
        assert stats.max == 1000000.0
        backend.delete_rows([4])  # removes the maximum
        stats = backend.numeric_stats("income")
        assert stats.max == 72000.0
        assert_consistent(backend)

    def test_transaction_rollback_updates_cache(self, backend):
        backend.db.execute("BEGIN")
        backend.db.execute("DELETE FROM data WHERE country = 'Bhutan'")
        backend.db.execute("ROLLBACK")
        assert_consistent(backend)

    def test_outlier_fast_path_uses_btree(self, backend):
        rows = backend.out_of_range_row_ids("income", 0, 100000)
        assert rows == [4]
        scoped = backend.out_of_range_row_ids(
            "income", 0, 100000, "country", "Bhutan")
        assert scoped == [4]


class TestNumericalStability:
    def test_large_mean_small_std_survives(self):
        """Regression: naive sum-of-squares cancels catastrophically.

        With mean ~1e9 and std ~1 the naive ``sumsq/n - mean**2`` loses
        every significant digit and the std collapses to ~0 (saved only
        from going imaginary by a clamp).  The shifted accumulator keeps
        its sums at the scale of the spread and stays accurate.
        """
        values = [1.0e9 + (i % 3) - 1.0 for i in range(300)]
        frame = DataFrame.from_rows(
            [("g", v) for v in values], ["cat", "big"]
        )
        backend = SQLBackend.from_frame(frame)
        backend.register_chart_columns(["cat"], ["big"])
        expected_std = (2.0 / 3.0) ** 0.5
        stats = backend.numeric_stats("big")
        assert stats.mean == pytest.approx(1.0e9, rel=1e-12)
        assert stats.std == pytest.approx(expected_std, rel=1e-6)
        grouped = backend.numeric_stats("big", "cat", "g")
        assert grouped.std == pytest.approx(expected_std, rel=1e-6)

    def test_repairing_a_dominant_outlier_recovers_precision(self):
        """Removing a value that dominated the sums must not leave noise.

        A far-outlier anchor value (0.0 among ~1e9 readings) poisons any
        O(1) accumulator; once the outlier is repaired away the cache must
        detect the cancellation and rebuild from the surviving rows."""
        values = [0.0] + [1.0e9 + (i % 3) - 1.0 for i in range(300)]
        frame = DataFrame.from_rows(
            [("g", v) for v in values], ["cat", "big"]
        )
        backend = SQLBackend.from_frame(frame)
        backend.register_chart_columns(["cat"], ["big"])
        backend.set_cells("big", [1], 1.0e9)  # repair the outlier
        expected_std = (200.0 / 301.0) ** 0.5  # 100x(+-1), 101x(0) offsets
        stats = backend.numeric_stats("big")
        assert stats.std == pytest.approx(expected_std, rel=1e-6)
        grouped = backend.numeric_stats("big", "cat", "g")
        assert grouped.std == pytest.approx(expected_std, rel=1e-6)

    def test_long_edit_session_keeps_precision(self):
        """Many add/remove cycles must not erode the cached std."""
        values = [1.0e9 + (i % 3) - 1.0 for i in range(90)]
        frame = DataFrame.from_rows([(v,) for v in values], ["big"])
        backend = SQLBackend.from_frame(frame)
        backend.register_chart_columns([], ["big"])
        for round_ in range(50):
            backend.set_cells("big", [1], 1.0e9 + 5.0)
            backend.set_cells("big", [1], values[0])
        stats = backend.numeric_stats("big")
        assert stats.std == pytest.approx((2.0 / 3.0) ** 0.5, rel=1e-6)
        assert stats.mean == pytest.approx(1.0e9, rel=1e-12)


class TestSimultaneousUpdate:
    def test_numeric_and_categorical_in_one_statement(self, backend):
        """One UPDATE changing a numeric *and* a categorical column must
        rebucket exactly once (the rebucket-skip path), leaving every
        cached per-category statistic equal to a fresh SQL aggregate."""
        before_lesotho = backend.numeric_stats("income", "country", "Lesotho")
        before_bhutan = backend.numeric_stats("income", "country", "Bhutan")
        backend.db.execute(
            'UPDATE data SET "income" = ?, "country" = ? WHERE rowid = ?',
            (99000.0, "Lesotho", 1),
        )
        after_lesotho = backend.numeric_stats("income", "country", "Lesotho")
        after_bhutan = backend.numeric_stats("income", "country", "Bhutan")
        assert after_lesotho.count == before_lesotho.count + 1
        assert after_bhutan.count == before_bhutan.count - 1
        # the *other* numeric column (age) rebuckets through the
        # categorical branch, not the numeric one
        assert backend.numeric_stats("age", "country", "Lesotho").count == 5
        assert_consistent(backend)

    def test_same_category_rewrite_only_moves_numeric(self, backend):
        """Numeric + categorical update where the category value does not
        actually change: buckets must not double-move."""
        backend.db.execute(
            'UPDATE data SET "income" = ?, "country" = ? WHERE rowid = ?',
            (52000.0, "Bhutan", 1),
        )
        assert_consistent(backend)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(
    st.sampled_from(["delete", "impute", "corrupt", "blank", "relabel", "undo"]),
    st.integers(1, 9),
), max_size=12))
def test_property_cache_matches_fresh_scan(ops):
    """Random mutation sequences keep the cache exactly consistent."""
    backend = SQLBackend.from_frame(DataFrame.from_rows(ROWS, COLUMNS))
    backend.ensure_index("income")
    backend.register_chart_columns(["country", "degree"], ["income", "age"])
    deltas = []
    live = set(backend.all_row_ids())
    for kind, row_id in ops:
        if kind == "undo":
            if deltas:
                backend.revert_delta(deltas.pop())
                live = set(backend.all_row_ids())
            continue
        if row_id not in live:
            continue
        if kind == "delete":
            deltas.append(backend.delete_rows([row_id]))
            live.discard(row_id)
        elif kind == "impute":
            deltas.append(backend.set_cells("income", [row_id], 50000.0))
        elif kind == "corrupt":
            deltas.append(backend.set_cells("income", [row_id], "oops"))
        elif kind == "blank":
            deltas.append(backend.set_cells("income", [row_id], None))
        elif kind == "relabel":
            deltas.append(backend.set_cells("country", [row_id], "Atlantis"))
    assert_consistent(backend)
