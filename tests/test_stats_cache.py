"""Tests for the incremental backend cache (§3.2) on the SQL backend.

The crucial invariant: after any mutation sequence, cached statistics and
error sets must equal what a fresh scan of the table computes.  Hypothesis
drives random mutation sequences against a recompute-from-scratch oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.sql_backend import SQLBackend
from repro.frame import DataFrame

from tests.test_backends import COLUMNS, ROWS


@pytest.fixture
def backend() -> SQLBackend:
    backend = SQLBackend.from_frame(DataFrame.from_rows(ROWS, COLUMNS))
    backend.ensure_index("country")
    backend.ensure_index("income")
    backend.register_chart_columns(["country", "degree"], ["income", "age"])
    return backend


def fresh_oracle(backend: SQLBackend) -> SQLBackend:
    """An untracked backend over the same current data (recomputes via SQL)."""
    oracle = SQLBackend.from_frame(backend.to_frame())
    return oracle


def assert_consistent(backend: SQLBackend) -> None:
    oracle = fresh_oracle(backend)
    id_map = dict(zip(backend.all_row_ids(), oracle.all_row_ids()))
    for num in ("income", "age"):
        cached = backend.numeric_stats(num)
        scanned = oracle.numeric_stats(num)
        assert cached.count == scanned.count
        if scanned.count:
            assert cached.mean == pytest.approx(scanned.mean)
            assert cached.std == pytest.approx(scanned.std, abs=1e-9)
            assert cached.min == pytest.approx(scanned.min)
            assert cached.max == pytest.approx(scanned.max)
        assert sorted(id_map[r] for r in backend.missing_row_ids(num)) == \
            sorted(oracle.missing_row_ids(num))
        assert sorted(id_map[r] for r in backend.mismatch_row_ids(num)) == \
            sorted(oracle.mismatch_row_ids(num))
        for category in backend.distinct_values("country"):
            cached_group = backend.numeric_stats(num, "country", category)
            scanned_group = oracle.numeric_stats(num, "country", category)
            assert cached_group.count == scanned_group.count
            if scanned_group.count:
                assert cached_group.mean == pytest.approx(scanned_group.mean)


class TestTracking:
    def test_initial_build_matches_scan(self, backend):
        assert_consistent(backend)

    def test_tracks_pair(self, backend):
        assert backend.stats_cache.tracks_pair("income", "country")
        assert backend.stats_cache.tracks_pair("income", None)
        assert not backend.stats_cache.tracks_pair("income", "gender")
        assert not backend.stats_cache.tracks_pair("salary", "country")

    def test_track_is_idempotent(self, backend):
        backend.register_chart_columns(["country", "degree"], ["income", "age"])
        assert_consistent(backend)

    def test_track_extends_with_new_columns(self, backend):
        backend.register_chart_columns(["gender"] if "gender" in COLUMNS else [],
                                       [])
        assert_consistent(backend)


class TestMaintenance:
    def test_after_delete(self, backend):
        backend.delete_rows([4, 6])  # the outlier and the missing row
        assert_consistent(backend)
        assert backend.missing_row_ids("income") == []

    def test_after_impute(self, backend):
        backend.set_cells("income", [6], 54000.0)
        assert_consistent(backend)

    def test_after_type_conversion(self, backend):
        backend.set_cells("income", [3], 12000.0)
        assert_consistent(backend)
        assert backend.mismatch_row_ids("income") == []

    def test_after_relabel_moves_buckets(self, backend):
        before = backend.numeric_stats("income", "country", "Lesotho")
        backend.set_cells("country", [9], "Lesotho")  # Nauru row joins Lesotho
        after = backend.numeric_stats("income", "country", "Lesotho")
        assert after.count == before.count + 1
        assert_consistent(backend)

    def test_after_undo_roundtrip(self, backend):
        delta = backend.delete_rows([1, 4, 6])
        backend.revert_delta(delta)
        assert_consistent(backend)

    def test_min_max_dirty_recompute(self, backend):
        stats = backend.numeric_stats("income")
        assert stats.max == 1000000.0
        backend.delete_rows([4])  # removes the maximum
        stats = backend.numeric_stats("income")
        assert stats.max == 72000.0
        assert_consistent(backend)

    def test_transaction_rollback_updates_cache(self, backend):
        backend.db.execute("BEGIN")
        backend.db.execute("DELETE FROM data WHERE country = 'Bhutan'")
        backend.db.execute("ROLLBACK")
        assert_consistent(backend)

    def test_outlier_fast_path_uses_btree(self, backend):
        rows = backend.out_of_range_row_ids("income", 0, 100000)
        assert rows == [4]
        scoped = backend.out_of_range_row_ids(
            "income", 0, 100000, "country", "Bhutan")
        assert scoped == [4]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(
    st.sampled_from(["delete", "impute", "corrupt", "blank", "relabel", "undo"]),
    st.integers(1, 9),
), max_size=12))
def test_property_cache_matches_fresh_scan(ops):
    """Random mutation sequences keep the cache exactly consistent."""
    backend = SQLBackend.from_frame(DataFrame.from_rows(ROWS, COLUMNS))
    backend.ensure_index("income")
    backend.register_chart_columns(["country", "degree"], ["income", "age"])
    deltas = []
    live = set(backend.all_row_ids())
    for kind, row_id in ops:
        if kind == "undo":
            if deltas:
                backend.revert_delta(deltas.pop())
                live = set(backend.all_row_ids())
            continue
        if row_id not in live:
            continue
        if kind == "delete":
            deltas.append(backend.delete_rows([row_id]))
            live.discard(row_id)
        elif kind == "impute":
            deltas.append(backend.set_cells("income", [row_id], 50000.0))
        elif kind == "corrupt":
            deltas.append(backend.set_cells("income", [row_id], "oops"))
        elif kind == "blank":
            deltas.append(backend.set_cells("income", [row_id], None))
        elif kind == "relabel":
            deltas.append(backend.set_cells("country", [row_id], "Atlantis"))
    assert_consistent(backend)
