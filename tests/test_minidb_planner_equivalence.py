"""Property: indexed and sequential plans return identical results.

The planner may pick any access path — a hash lookup, a B+tree range, a
rowid lookup, or a full scan — but the answer must never change.  Hypothesis
generates random data and WHERE shapes and compares an indexed database
against an identical unindexed one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database

CATEGORIES = ["a", "b", "c", "d", None]


@st.composite
def _dataset(draw):
    n = draw(st.integers(5, 60))
    rows = []
    for _ in range(n):
        cat = draw(st.sampled_from(CATEGORIES))
        val = draw(st.one_of(
            st.none(),
            st.integers(-50, 50),
            st.sampled_from(["12k", "oops"]),  # text contamination
        ))
        rows.append((cat, val))
    return rows


def _pair_of_dbs(rows):
    indexed = Database()
    plain = Database()
    for db in (indexed, plain):
        db.execute("CREATE TABLE t (cat TEXT, val REAL)")
        db.executemany("INSERT INTO t VALUES (?, ?)", rows)
    indexed.execute("CREATE INDEX i_cat ON t (cat) USING hash")
    indexed.execute("CREATE INDEX i_val ON t (val)")
    return indexed, plain


QUERIES = [
    ("SELECT rowid FROM t WHERE cat = ?", ("b",)),
    ("SELECT rowid FROM t WHERE cat = ? AND val > ?", ("a", 0)),
    ("SELECT rowid FROM t WHERE val BETWEEN ? AND ?", (-10, 10)),
    ("SELECT rowid FROM t WHERE val >= ? AND val < ?", (5, 25)),
    ("SELECT rowid FROM t WHERE val < ?", (0,)),
    ("SELECT rowid FROM t WHERE cat IN ('a', 'c')", ()),
    ("SELECT rowid FROM t WHERE val IS NULL", ()),
    ("SELECT rowid FROM t WHERE typeof(val) = 'text'", ()),
    ("SELECT rowid FROM t WHERE rowid = ?", (3,)),
    ("SELECT rowid FROM t WHERE rowid IN (1, 2, 99)", ()),
    ("SELECT cat, COUNT(*), AVG(val) FROM t GROUP BY cat", ()),
    ("SELECT COUNT(*) FROM t WHERE cat = ? OR val > ?", ("d", 40)),
]


@settings(max_examples=60, deadline=None)
@given(_dataset())
def test_property_indexed_equals_sequential(rows):
    indexed, plain = _pair_of_dbs(rows)
    for sql, params in QUERIES:
        fast = indexed.execute(sql, params).rows
        slow = plain.execute(sql, params).rows
        assert sorted(map(repr, fast)) == sorted(map(repr, slow)), sql


@settings(max_examples=40, deadline=None)
@given(_dataset(), st.sampled_from(["DELETE FROM t WHERE cat = ?",
                                    "UPDATE t SET val = 0 WHERE cat = ?"]))
def test_property_dml_equivalence(rows, sql):
    """Mutations through different plans leave identical tables."""
    indexed, plain = _pair_of_dbs(rows)
    fast_count = indexed.execute(sql, ("b",)).rowcount
    slow_count = plain.execute(sql, ("b",)).rowcount
    assert fast_count == slow_count
    fast_rows = indexed.execute("SELECT rowid, cat, val FROM t").rows
    slow_rows = plain.execute("SELECT rowid, cat, val FROM t").rows
    assert sorted(map(repr, fast_rows)) == sorted(map(repr, slow_rows))


@settings(max_examples=40, deadline=None)
@given(_dataset())
def test_property_prepared_rebound_equals_cold(rows):
    """Cached, rebound plans answer exactly like cold plans.

    Each query runs three times through one prepared statement: the first
    execution plans cold, the later ones rebind the cached physical tree
    (the third after a mutation burst, exercising revalidation).  Every
    run must match a fresh unindexed database's answer.
    """
    indexed, plain = _pair_of_dbs(rows)
    statements = [(indexed.prepare(sql), sql, params) for sql, params in QUERIES]
    for prepared, sql, params in statements:
        cold = prepared.execute(params).rows
        rebound = prepared.execute(params).rows
        slow = plain.execute(sql, params).rows
        assert sorted(map(repr, cold)) == sorted(map(repr, slow)), sql
        assert sorted(map(repr, rebound)) == sorted(map(repr, slow)), sql
    for db in (indexed, plain):
        db.execute("UPDATE t SET val = val + 1 WHERE val IS NOT NULL AND typeof(val) <> 'text'")
    for prepared, sql, params in statements:
        fast = prepared.execute(params).rows
        slow = plain.execute(sql, params).rows
        assert sorted(map(repr, fast)) == sorted(map(repr, slow)), sql


@settings(max_examples=40, deadline=None)
@given(_dataset())
def test_property_index_maintenance_after_mutations(rows):
    """Indexes stay correct through a delete/update/insert churn."""
    indexed, plain = _pair_of_dbs(rows)
    for db in (indexed, plain):
        db.execute("DELETE FROM t WHERE val < ?", (-25,))
        db.execute("UPDATE t SET cat = 'z' WHERE val > ?", (25,))
        db.execute("INSERT INTO t VALUES ('new', 1), (NULL, NULL)")
    for sql, params in QUERIES:
        fast = indexed.execute(sql, params).rows
        slow = plain.execute(sql, params).rows
        assert sorted(map(repr, fast)) == sorted(map(repr, slow)), sql
