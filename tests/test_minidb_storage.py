"""Unit tests for Table storage, affinity, and index maintenance."""

import pytest

from repro.errors import CatalogError, IntegrityError
from repro.minidb.catalog import ColumnDef, TableSchema


def make_table():
    from repro.minidb.storage import Table

    schema = TableSchema("t", [
        ColumnDef.make("name", "TEXT"),
        ColumnDef.make("age", "INT"),
        ColumnDef.make("score", "REAL"),
    ])
    return Table(schema)


class TestAffinity:
    def test_integer_affinity_parses_text(self):
        table = make_table()
        rowid = table.insert(["ada", "36", "1.5"])
        assert table.get(rowid) == ["ada", 36, 1.5]

    def test_integer_affinity_keeps_unparseable_text(self):
        """The type-mismatch case: '12k' survives in a numeric column."""
        table = make_table()
        rowid = table.insert(["ada", "12k", 1.0])
        assert table.get(rowid)[1] == "12k"

    def test_real_affinity_widens_int(self):
        table = make_table()
        rowid = table.insert(["ada", 36, 2])
        assert table.get(rowid)[2] == 2.0
        assert isinstance(table.get(rowid)[2], float)

    def test_integer_affinity_narrows_integral_float(self):
        table = make_table()
        rowid = table.insert(["ada", 36.0, 1.0])
        assert table.get(rowid)[1] == 36
        assert isinstance(table.get(rowid)[1], int)

    def test_text_affinity_stringifies_numbers(self):
        table = make_table()
        rowid = table.insert([42, 1, 1.0])
        assert table.get(rowid)[0] == "42"

    def test_null_passes_through(self):
        table = make_table()
        rowid = table.insert([None, None, None])
        assert table.get(rowid) == [None, None, None]

    def test_bool_becomes_int(self):
        table = make_table()
        rowid = table.insert(["x", True, False])
        assert table.get(rowid)[1] == 1


class TestMutations:
    def test_rowids_are_stable_and_monotonic(self):
        table = make_table()
        first = table.insert(["a", 1, 1.0])
        second = table.insert(["b", 2, 2.0])
        table.delete(first)
        third = table.insert(["c", 3, 3.0])
        assert third > second

    def test_explicit_rowid_reuse_after_delete(self):
        table = make_table()
        rowid = table.insert(["a", 1, 1.0])
        table.delete(rowid)
        table.insert(["a2", 1, 1.0], rowid=rowid)
        assert table.get(rowid)[0] == "a2"

    def test_duplicate_rowid_rejected(self):
        table = make_table()
        rowid = table.insert(["a", 1, 1.0])
        with pytest.raises(IntegrityError):
            table.insert(["b", 2, 2.0], rowid=rowid)

    def test_wrong_arity_rejected(self):
        table = make_table()
        with pytest.raises(IntegrityError):
            table.insert(["a", 1])

    def test_update_returns_old_values(self):
        table = make_table()
        rowid = table.insert(["a", 1, 1.0])
        old = table.update(rowid, {1: 99})
        assert old == {1: 1}
        assert table.get(rowid)[1] == 99

    def test_delete_missing_row(self):
        table = make_table()
        with pytest.raises(IntegrityError):
            table.delete(42)

    def test_scan_yields_all(self):
        table = make_table()
        for i in range(5):
            table.insert([f"r{i}", i, float(i)])
        assert len(list(table.scan())) == 5

    def test_change_events_emitted(self):
        table = make_table()
        events = []
        table.on_change = events.append
        rowid = table.insert(["a", 1, 1.0])
        table.update(rowid, {1: 2})
        table.delete(rowid)
        assert [e[0] for e in events] == ["insert", "update", "delete"]


class TestIndexMaintenance:
    def test_index_backfilled_on_create(self):
        table = make_table()
        rowid = table.insert(["a", 1, 1.0])
        table.create_index("ix", "name", kind="hash")
        assert table.indexes["ix"].lookup("a") == {rowid}

    def test_index_tracks_insert_update_delete(self):
        table = make_table()
        table.create_index("ix", "age")
        rowid = table.insert(["a", 10, 1.0])
        assert table.indexes["ix"].lookup(10) == {rowid}
        table.update(rowid, {1: 20})
        assert table.indexes["ix"].lookup(10) == set()
        assert table.indexes["ix"].lookup(20) == {rowid}
        table.delete(rowid)
        assert table.indexes["ix"].lookup(20) == set()

    def test_duplicate_index_name(self):
        table = make_table()
        table.create_index("ix", "age")
        with pytest.raises(CatalogError):
            table.create_index("ix", "name")

    def test_drop_index(self):
        table = make_table()
        table.create_index("ix", "age")
        table.drop_index("ix")
        assert table.indexes_on("age") == []
        with pytest.raises(CatalogError):
            table.drop_index("ix")


class TestAddColumn:
    def test_existing_rows_get_null(self):
        table = make_table()
        rowid = table.insert(["a", 1, 1.0])
        table.add_column(ColumnDef.make("extra", "TEXT"))
        assert table.get(rowid) == ["a", 1, 1.0, None]
        new = table.insert(["b", 2, 2.0, "x"])
        assert table.get(new)[3] == "x"
