"""Unit tests for the snapshot stores."""

import pytest

from repro.errors import SnapshotError
from repro.snapshots import DeltaSnapshot, DifferentialStore, FullCopyStore


def _delta(i: int) -> DeltaSnapshot:
    return DeltaSnapshot(updated={1: {"a": (i, i + 1)}}, label=f"op{i}")


class TestDifferentialStore:
    def test_record_and_bytes(self):
        store = DifferentialStore()
        store.record(_delta(0))
        store.record(_delta(1))
        assert len(store) == 2
        assert store.total_bytes() > 0

    def test_cumulative(self):
        store = DifferentialStore()
        for i in range(3):
            store.record(_delta(i))
        combined = store.cumulative()
        assert combined.updated == {1: {"a": (0, 3)}}

    def test_compact_preserves_cumulative(self):
        store = DifferentialStore()
        for i in range(5):
            store.record(_delta(i))
        before = store.cumulative().updated
        removed = store.compact(keep_last=2)
        assert removed == 2  # 3 head deltas -> 1
        assert len(store) == 3
        assert store.cumulative().updated == before

    def test_compact_noop_on_small_stores(self):
        store = DifferentialStore()
        store.record(_delta(0))
        assert store.compact(keep_last=5) == 0

    def test_compact_rejects_negative(self):
        with pytest.raises(SnapshotError):
            DifferentialStore().compact(keep_last=-1)

    def test_save_load_roundtrip(self, tmp_path):
        store = DifferentialStore()
        for i in range(3):
            store.record(_delta(i))
        path = tmp_path / "store.jsonl"
        store.save(path)
        again = DifferentialStore.load(path)
        assert len(again) == 3
        assert again.cumulative().updated == store.cumulative().updated


class TestFullCopyStore:
    def test_records_deep_copies(self):
        store = FullCopyStore()
        rows = {1: {"a": 1}}
        store.record_state(rows)
        rows[1]["a"] = 99
        assert store.state(0) == {1: {"a": 1}}

    def test_grows_linearly_with_data_size(self):
        small = FullCopyStore()
        big = FullCopyStore()
        small_rows = {i: {"a": i} for i in range(10)}
        big_rows = {i: {"a": i} for i in range(1000)}
        for _ in range(3):
            small.record_state(small_rows)
            big.record_state(big_rows)
        assert big.total_bytes() > 50 * small.total_bytes()

    def test_differential_beats_full_copy_for_point_edits(self):
        """The §6.3 claim: deltas avoid full-copy overhead."""
        rows = {i: {"a": i, "b": f"text-{i}"} for i in range(500)}
        differential = DifferentialStore()
        full = FullCopyStore()
        for step in range(10):
            differential.record(
                DeltaSnapshot(updated={step: {"a": (step, step + 1)}})
            )
            rows[step]["a"] = step + 1
            full.record_state(rows)
        assert differential.total_bytes() < full.total_bytes() / 100
