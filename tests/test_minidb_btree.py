"""Unit and property tests for the B+tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb.btree import BTree


class TestBasics:
    def test_insert_and_search(self):
        tree = BTree(order=4)
        tree.insert(5, 100)
        tree.insert(5, 101)
        tree.insert(7, 102)
        assert tree.search(5) == {100, 101}
        assert tree.search(7) == {102}
        assert tree.search(9) == set()
        assert len(tree) == 3

    def test_duplicate_pair_is_idempotent(self):
        tree = BTree(order=4)
        tree.insert(1, 10)
        tree.insert(1, 10)
        assert len(tree) == 1

    def test_remove(self):
        tree = BTree(order=4)
        tree.insert(1, 10)
        tree.insert(1, 11)
        assert tree.remove(1, 10)
        assert tree.search(1) == {11}
        assert tree.remove(1, 11)
        assert tree.search(1) == set()
        assert not tree.remove(1, 99)
        assert not tree.remove(42, 1)

    def test_min_max_key(self):
        tree = BTree(order=4)
        assert tree.min_key() is None
        for key in [5, 1, 9, 3]:
            tree.insert(key, key)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BTree(order=2)

    def test_splits_preserve_order(self):
        tree = BTree(order=4)
        for i in range(200):
            tree.insert(i * 7 % 200, i)
        keys = [key for key, _ in tree.iter_items()]
        assert keys == sorted(keys)
        tree.check_invariants()


class TestRangeScan:
    @pytest.fixture
    def tree(self):
        tree = BTree(order=4)
        for i in range(0, 100, 2):  # even keys 0..98
            tree.insert(i, i)
        return tree

    def test_closed_range(self, tree):
        keys = [k for k, _ in tree.range_scan(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_open_low(self, tree):
        keys = [k for k, _ in tree.range_scan(10, 16, include_low=False)]
        assert keys == [12, 14, 16]

    def test_open_high(self, tree):
        keys = [k for k, _ in tree.range_scan(10, 16, include_high=False)]
        assert keys == [10, 12, 14]

    def test_unbounded_low(self, tree):
        keys = [k for k, _ in tree.range_scan(None, 6)]
        assert keys == [0, 2, 4, 6]

    def test_unbounded_high(self, tree):
        keys = [k for k, _ in tree.range_scan(94, None)]
        assert keys == [94, 96, 98]

    def test_full_scan(self, tree):
        assert len(list(tree.range_scan())) == 50

    def test_empty_range(self, tree):
        assert list(tree.range_scan(11, 11)) == []  # 11 is odd, absent

    def test_bounds_between_keys(self, tree):
        keys = [k for k, _ in tree.range_scan(9, 15)]
        assert keys == [10, 12, 14]


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 20)), max_size=200))
def test_property_matches_dict_of_sets(pairs):
    """The tree behaves exactly like a dict[key, set] reference model."""
    tree = BTree(order=4)
    model: dict[int, set] = {}
    for key, rowid in pairs:
        tree.insert(key, rowid)
        model.setdefault(key, set()).add(rowid)
    tree.check_invariants()
    for key in range(0, 51):
        assert tree.search(key) == model.get(key, set())
    scanned = {key: rowids for key, rowids in tree.iter_items()}
    assert scanned == {k: v for k, v in model.items() if v}


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 30), st.integers(0, 10)), max_size=120),
    st.lists(st.tuples(st.integers(0, 30), st.integers(0, 10)), max_size=120),
)
def test_property_insert_then_remove(inserts, removals):
    """Removals (including no-ops) never violate invariants or search."""
    tree = BTree(order=4)
    model: dict[int, set] = {}
    for key, rowid in inserts:
        tree.insert(key, rowid)
        model.setdefault(key, set()).add(rowid)
    for key, rowid in removals:
        expected = key in model and rowid in model[key]
        assert tree.remove(key, rowid) is expected
        if expected:
            model[key].discard(rowid)
            if not model[key]:
                del model[key]
    tree.check_invariants()
    scanned = {key: rowids for key, rowids in tree.iter_items()}
    assert scanned == model


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=300))
def test_property_range_scan_matches_sorted_filter(keys):
    tree = BTree(order=8)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    lo, hi = min(keys), max(keys)
    mid_low = lo + (hi - lo) // 3
    mid_high = lo + 2 * (hi - lo) // 3
    scanned = [k for k, _ in tree.range_scan(mid_low, mid_high)]
    expected = sorted({k for k in keys if mid_low <= k <= mid_high})
    assert scanned == expected


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(-1000, 1000), min_size=1, max_size=300),
    st.booleans(), st.booleans(),
)
def test_property_desc_scan_mirrors_asc(keys, include_low, include_high):
    tree = BTree(order=8)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    lo, hi = min(keys), max(keys)
    mid_low = lo + (hi - lo) // 3
    mid_high = lo + 2 * (hi - lo) // 3
    forward = list(tree.range_scan(mid_low, mid_high, include_low, include_high))
    backward = list(tree.range_scan_desc(mid_low, mid_high, include_low, include_high))
    assert backward == forward[::-1]
    # unbounded full walks mirror too
    assert list(tree.range_scan_desc()) == list(tree.range_scan())[::-1]
    assert tree.max_key() == max(keys)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 60), min_size=1, max_size=200),
       st.lists(st.integers(0, 60), max_size=200))
def test_property_desc_scan_after_removals(inserts, removals):
    """Lazy deletion (empty leaves left in the chain) must not break the
    backward walk."""
    tree = BTree(order=4)
    for i, key in enumerate(inserts):
        tree.insert(key, i)
    for key in removals:
        for i, ins in enumerate(inserts):
            if ins == key:
                tree.remove(key, i)
    tree.check_invariants()
    assert list(tree.range_scan_desc()) == list(tree.range_scan())[::-1]
