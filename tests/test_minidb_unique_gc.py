"""UNIQUE vs. dead MVCC versions: backfill and targeted GC regressions.

A deleted (or superseded) row version keeps its index entries until
garbage collection so older snapshots can still find it.  Those stale
entries must never block a writer:

* ``CREATE UNIQUE INDEX`` backfills dead chain versions *without*
  UNIQUE enforcement — a dead version's key may legitimately collide
  with a live row's.
* A writer whose UNIQUE probe trips over dead entries collects exactly
  those rowids on the spot (``Table.gc_rowid`` under the write lock)
  instead of waiting for a full GC pass — while the GC horizon keeps
  protecting whatever an outstanding snapshot can still see.
"""

from __future__ import annotations

import pytest

from repro.errors import IntegrityError
from repro.minidb.database import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (k TEXT, n INT)")
    return database


def test_create_unique_index_ignores_dead_versions(db):
    """A dead version holding a live row's key must not fail the build."""
    db.execute("INSERT INTO t VALUES ('x', 1)")
    # hold a snapshot so the update leaves a version chain behind
    cursor = db.stream("SELECT * FROM t")
    db.execute("UPDATE t SET k = 'y' WHERE n = 1")   # old 'x' version is dead
    db.execute("INSERT INTO t VALUES ('x', 2)")      # live owner of 'x'
    # live state {'y', 'x'} is unique; the dead 'x' version must not block
    db.execute("CREATE UNIQUE INDEX u_k ON t(k)")
    cursor.close()
    with pytest.raises(IntegrityError):
        db.execute("INSERT INTO t VALUES ('x', 3)")


def test_create_unique_index_still_rejects_live_duplicates(db):
    db.execute("INSERT INTO t VALUES ('x', 1)")
    db.execute("INSERT INTO t VALUES ('x', 2)")
    with pytest.raises(IntegrityError):
        db.execute("CREATE UNIQUE INDEX u_k ON t(k)")


def test_unique_insert_targeted_gc_purges_dead_entry(db):
    """A dead entry past the horizon is collected by the blocked writer."""
    db.execute("CREATE UNIQUE INDEX u_k ON t(k)")
    db.execute("INSERT INTO t VALUES ('x', 1)")
    table = db.table("t")
    index = table.indexes["u_k"]

    # a snapshot pins GC across the delete's commit...
    blocker = db.stream("SELECT * FROM t")
    db.execute("DELETE FROM t WHERE n = 1")
    assert 1 in table.versions  # the dead version lingers, entry and all
    assert index.lookup("x") == {1}
    # ...and a second snapshot, opened after the delete committed, keeps
    # the no-outstanding-snapshots GC trigger from ever firing when the
    # first one closes
    late = db.stream("SELECT * FROM t")
    blocker.close()
    assert 1 in table.versions

    # the writer hits the stale 'x' entry, collects rowid 1 on the spot
    # (the late snapshot's horizon is past the delete), and proceeds
    db.execute("INSERT INTO t VALUES ('x', 2)")
    assert 1 not in table.versions
    rowids = {rowid for rowid, _ in table.scan()}
    assert index.lookup("x") & rowids == index.lookup("x")
    late.close()


def test_targeted_gc_respects_snapshot_horizon(db):
    """Entries an older snapshot still sees survive the targeted pass."""
    db.execute("CREATE UNIQUE INDEX u_k ON t(k)")
    db.execute("INSERT INTO t VALUES ('x', 1)")
    # this snapshot predates the delete: it must keep seeing ('x', 1)
    old = db.stream("SELECT k, n FROM t")
    db.execute("DELETE FROM t WHERE n = 1")
    table = db.table("t")
    assert 1 in table.versions

    # re-inserting 'x' trips the stale entry; the targeted GC must leave
    # the chain alone because `old` can still see it
    db.execute("INSERT INTO t VALUES ('x', 2)")
    assert 1 in table.versions
    assert set(old.materialize()) == {("x", 1)}


def test_unique_hash_index_targeted_gc(db):
    """Same story through the hash-index unique path."""
    db.execute("CREATE UNIQUE INDEX u_k ON t(k) USING HASH")
    db.execute("INSERT INTO t VALUES ('x', 1)")
    table = db.table("t")
    index = table.indexes["u_k"]

    blocker = db.stream("SELECT * FROM t")
    db.execute("DELETE FROM t WHERE n = 1")
    late = db.stream("SELECT * FROM t")
    blocker.close()
    assert 1 in table.versions

    db.execute("INSERT INTO t VALUES ('x', 2)")
    assert 1 not in table.versions
    assert len(index.lookup("x")) == 1
    late.close()


def test_unique_still_blocks_genuine_duplicates_after_gc_path(db):
    db.execute("CREATE UNIQUE INDEX u_k ON t(k)")
    db.execute("INSERT INTO t VALUES ('x', 1)")
    cursor = db.stream("SELECT * FROM t")
    db.execute("UPDATE t SET n = 5 WHERE n = 1")  # chain exists, 'x' live
    with pytest.raises(IntegrityError):
        db.execute("INSERT INTO t VALUES ('x', 2)")
    cursor.close()
