"""The same engine battery run over both transports.

Every test here executes twice — once through in-process
``db.connect()`` connections and once through socket clients talking to
a :class:`~repro.minidb.net.server.MiniDBServer` over the wire.  The
network client promises the exact PEP 249 surface of the in-process
connection (execute / executemany / stream / prepare / cursor /
transactions / run_transaction), and these tests are the contract that
says so: none of them branch on the transport.
"""

import pytest

from repro.errors import IntegrityError, SerializationError, TransactionError
from repro.minidb import connect
from repro.minidb.net import MiniDBServer
from repro.minidb.net import client as net_client


class Transport:
    """A uniform connection factory over one database."""

    def __init__(self, kind, db, server=None):
        self.kind = kind
        self.db = db
        self.server = server
        self._conns = []

    def connect(self):
        if self.server is not None:
            host, port = self.server.address
            conn = net_client.connect(host, port)
        else:
            conn = self.db.connect()
        self._conns.append(conn)
        return conn

    def close(self):
        for conn in self._conns:
            if not conn.closed:
                conn.close()
        if self.server is not None:
            self.server.stop()
        self.db.close()


@pytest.fixture(params=["inprocess", "network"])
def transport(request):
    db = connect()
    server = None
    if request.param == "network":
        server = MiniDBServer(db, port=0, fetch_rows=4)
        server.start()
    handle = Transport(request.param, db, server)
    yield handle
    handle.close()


@pytest.fixture
def conn(transport):
    conn = transport.connect()
    conn.execute("CREATE TABLE people (name TEXT, dept TEXT, age INT)")
    conn.executemany(
        "INSERT INTO people VALUES (?, ?, ?)",
        [("ada", "eng", 36), ("grace", "eng", 45), ("alan", "math", 41),
         ("kurt", "math", 29), ("emmy", "math", 53), ("rosa", "bio", 33)],
    )
    return conn


class TestCrudBothTransports:
    def test_insert_select_where(self, conn):
        rows = conn.execute(
            "SELECT name FROM people WHERE age > 40 ORDER BY name").scalars()
        assert rows == ["alan", "emmy", "grace"]

    def test_update_and_delete(self, conn):
        assert conn.execute(
            "UPDATE people SET age = age + 1 WHERE dept = 'eng'").rowcount == 2
        assert conn.execute(
            "SELECT SUM(age) FROM people WHERE dept = 'eng'").scalar() == 83
        assert conn.execute(
            "DELETE FROM people WHERE dept = 'bio'").rowcount == 1
        assert conn.execute("SELECT COUNT(*) FROM people").scalar() == 5

    def test_group_by_order_by_limit(self, conn):
        rows = conn.execute(
            "SELECT dept, COUNT(*) AS n FROM people GROUP BY dept "
            "ORDER BY n DESC, dept LIMIT 2").rows
        assert rows == [("math", 3), ("eng", 2)]

    def test_join(self, conn):
        conn.execute("CREATE TABLE heads (dept TEXT, head TEXT)")
        conn.executemany("INSERT INTO heads VALUES (?, ?)",
                         [("eng", "ada"), ("math", "emmy")])
        rows = conn.execute(
            "SELECT p.name, h.head FROM people p JOIN heads h "
            "ON p.dept = h.dept WHERE p.age > 44 ORDER BY p.name").rows
        assert rows == [("emmy", "emmy"), ("grace", "ada")]

    def test_null_and_unicode_round_trip(self, transport):
        conn = transport.connect()
        conn.execute("CREATE TABLE v (a INT, f REAL, s TEXT)")
        conn.execute("INSERT INTO v VALUES (?, ?, ?)",
                     (None, -0.125, "naïve ünïcode"))
        assert conn.execute("SELECT a, f, s FROM v").rows == [
            (None, -0.125, "naïve ünïcode")]
        assert conn.execute(
            "SELECT COUNT(*) FROM v WHERE a IS NULL").scalar() == 1

    def test_lastrowid_and_rowcount(self, conn):
        result = conn.execute(
            "INSERT INTO people VALUES ('new', 'eng', 20)")
        assert result.rowcount == 1
        assert result.lastrowid is not None


class TestStreamingBothTransports:
    def test_stream_matches_execute(self, transport):
        conn = transport.connect()
        conn.execute("CREATE TABLE seq (i INT)")
        conn.executemany("INSERT INTO seq VALUES (?)",
                         [(i,) for i in range(300)])
        stream = conn.stream("SELECT i FROM seq ORDER BY i")
        assert stream.columns == ["i"]
        assert stream.fetchone() == (0,)
        assert stream.fetchmany(5) == [(i,) for i in range(1, 6)]
        rest = stream.materialize()
        assert rest.scalars() == list(range(6, 300))

    def test_stream_is_snapshot_consistent(self, conn, transport):
        stream = conn.stream("SELECT name FROM people ORDER BY name")
        first = stream.fetchone()
        writer = transport.connect()
        writer.execute("DELETE FROM people")
        got = [first] + list(stream)
        assert got == [("ada",), ("alan",), ("emmy",), ("grace",),
                       ("kurt",), ("rosa",)]
        assert conn.execute("SELECT COUNT(*) FROM people").scalar() == 0

    def test_stream_early_close(self, conn):
        with conn.stream("SELECT * FROM people") as stream:
            assert stream.fetchone() is not None
        # the context manager closed it; the connection still works
        assert conn.execute("SELECT COUNT(*) FROM people").scalar() == 6


class TestPreparedBothTransports:
    def test_prepared_reuse(self, conn):
        stmt = conn.prepare("SELECT name FROM people WHERE dept = ?")
        assert stmt.n_params == 1
        assert stmt.is_select
        assert sorted(stmt.execute(("eng",)).scalars()) == ["ada", "grace"]
        assert stmt.execute(("bio",)).scalars() == ["rosa"]

    def test_prepared_executemany(self, transport):
        conn = transport.connect()
        conn.execute("CREATE TABLE seq (i INT)")
        stmt = conn.prepare("INSERT INTO seq VALUES (?)")
        assert stmt.executemany([(i,) for i in range(100)]) == 100
        assert conn.execute("SELECT SUM(i) FROM seq").scalar() == sum(range(100))

    def test_cursor_pep249_surface(self, conn):
        cursor = conn.cursor()
        cursor.execute("SELECT name, age FROM people WHERE dept = ? "
                       "ORDER BY name", ("math",))
        assert [d[0] for d in cursor.description] == ["name", "age"]
        assert cursor.fetchone() == ("alan", 41)
        assert cursor.fetchmany(1) == [("emmy", 53)]
        assert cursor.fetchall() == [("kurt", 29)]
        assert cursor.fetchone() is None

    def test_cursor_accepts_prepared_handle(self, conn):
        stmt = conn.prepare("SELECT COUNT(*) FROM people WHERE age > ?")
        cursor = conn.cursor()
        assert cursor.execute(stmt, (40,)).fetchone() == (3,)
        assert cursor.execute(stmt, (100,)).fetchone() == (0,)


class TestTransactionsBothTransports:
    def test_commit_and_rollback(self, conn):
        conn.execute("BEGIN")
        assert conn.in_transaction
        conn.execute("INSERT INTO people VALUES ('new', 'eng', 20)")
        conn.rollback()
        assert not conn.in_transaction
        assert conn.execute("SELECT COUNT(*) FROM people").scalar() == 6

        conn.begin()
        conn.execute("INSERT INTO people VALUES ('new', 'eng', 20)")
        conn.commit()
        assert conn.execute("SELECT COUNT(*) FROM people").scalar() == 7

    def test_sql_level_transactions(self, conn):
        conn.execute("BEGIN")
        conn.execute("DELETE FROM people")
        conn.execute("ROLLBACK")
        assert conn.execute("SELECT COUNT(*) FROM people").scalar() == 6

    def test_commit_without_txn_is_noop(self, conn):
        conn.commit()  # PEP 249: must not raise
        conn.rollback()

    def test_double_begin_raises(self, conn):
        conn.begin()
        with pytest.raises(TransactionError):
            conn.begin()
        conn.rollback()

    def test_snapshot_isolation(self, conn, transport):
        reader = transport.connect()
        reader.begin()
        baseline = reader.execute("SELECT COUNT(*) FROM people").scalar()
        writer = transport.connect()
        writer.begin()
        writer.execute("DELETE FROM people WHERE dept = 'math'")
        writer.commit()
        # the reader's snapshot predates the delete
        assert reader.execute(
            "SELECT COUNT(*) FROM people").scalar() == baseline
        reader.commit()
        assert reader.execute("SELECT COUNT(*) FROM people").scalar() == 3

    def test_write_conflict_detected(self, conn, transport):
        a = transport.connect()
        b = transport.connect()
        a.begin()
        b.begin()
        a.execute("UPDATE people SET age = 1 WHERE name = 'ada'")
        with pytest.raises(SerializationError):
            b.execute("UPDATE people SET age = 2 WHERE name = 'ada'")
        a.commit()
        b.rollback()

    def test_run_transaction_commits(self, conn):
        def txn(c):
            c.execute("INSERT INTO people VALUES ('tx', 'ops', 1)")
            return c.execute("SELECT COUNT(*) FROM people").scalar()

        assert conn.run_transaction(txn) == 7
        assert not conn.in_transaction
        assert conn.execute(
            "SELECT COUNT(*) FROM people WHERE name = 'tx'").scalar() == 1

    def test_integrity_error_crosses_transport(self, conn):
        conn.execute("CREATE UNIQUE INDEX u_name ON people(name)")
        conn.begin()
        with pytest.raises(IntegrityError):
            conn.execute("INSERT INTO people VALUES ('ada', 'dup', 1)")
        conn.rollback()
        assert conn.execute("SELECT COUNT(*) FROM people").scalar() == 6

    def test_context_manager_commits_on_clean_exit(self, transport):
        setup = transport.connect()
        setup.execute("CREATE TABLE t (i INT)")
        with transport.connect() as conn:
            conn.begin()
            conn.execute("INSERT INTO t VALUES (1)")
        assert setup.execute("SELECT COUNT(*) FROM t").scalar() == 1
