"""Partitioned tables and the parallel executor.

Four layers of coverage:

* routing units — ``stable_hash`` determinism/normalization,
  :class:`PartitionSpec` validation and catalog round-trip,
  :class:`PartitionedHeap` move semantics, :class:`MergingIterator`;
* EXPLAIN / EXPLAIN ANALYZE partition fan-out (partition count, worker
  count, per-worker actual rows on ``Gather``);
* serial-vs-parallel parity — a hypothesis property suite over query
  shapes × partition counts × worker counts, plus a file-mode check
  (results must be *identical*, order included, since partition-major
  recombination matches the serial scan order by construction);
* MVCC — a snapshot taken mid-write reads the same rows under the
  parallel plans as under the serial ones.

Numeric values are dyadic (multiples of 0.5) wherever SUM/AVG parity is
asserted bit-for-bit: partial per-partition sums re-associate float
addition, which is exact for dyadic rationals but can drift a ulp
otherwise (see ARCHITECTURE.md).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError
from repro.minidb import Database
from repro.minidb.partition import (
    MergingIterator,
    PartitionSpec,
    PartitionedHeap,
    stable_hash,
)


# ---------------------------------------------------------------------------
# routing units
# ---------------------------------------------------------------------------


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("k17") == stable_hash("k17")
        assert stable_hash(42) == stable_hash(42)

    def test_numeric_normalization_routes_together(self):
        assert stable_hash(1) == stable_hash(1.0) == stable_hash(True)
        assert stable_hash(0) == stable_hash(False)

    def test_null_routes_to_partition_zero(self):
        assert stable_hash(None) == 0

    def test_small_moduli_spread(self):
        # the splitmix64 finalizer exists exactly for this: sequential
        # text keys must not collapse into one bucket mod small n
        for parts in (2, 3, 4, 5):
            buckets = {stable_hash(f"c{i}") % parts for i in range(64)}
            assert buckets == set(range(parts))


class TestPartitionSpec:
    def test_hash_count_bounds(self):
        with pytest.raises(CatalogError):
            PartitionSpec("hash", "k", count=1)
        with pytest.raises(CatalogError):
            PartitionSpec("hash", "k", count=65)
        assert PartitionSpec("hash", "k", count=2).n_partitions == 2

    def test_range_bounds_must_ascend(self):
        with pytest.raises(CatalogError):
            PartitionSpec("range", "k", bounds=(10, 10))
        with pytest.raises(CatalogError):
            PartitionSpec("range", "k", bounds=(10, 5))
        with pytest.raises(CatalogError):
            PartitionSpec("range", "k", bounds=())

    def test_range_routing(self):
        spec = PartitionSpec("range", "k", bounds=(10, 20))
        assert spec.n_partitions == 3
        assert spec.partition_of(-5) == 0
        assert spec.partition_of(10) == 1  # bound belongs to the right side
        assert spec.partition_of(15) == 1
        assert spec.partition_of(99) == 2
        assert spec.partition_of(None) == 0  # NULL sorts below everything

    def test_catalog_round_trip(self):
        for spec in (PartitionSpec("hash", "id", count=4),
                     PartitionSpec("range", "id", bounds=(100, 200, 300))):
            assert PartitionSpec.from_dict(spec.to_dict()) == spec


class TestPartitionedHeap:
    def _heap(self):
        spec = PartitionSpec("range", "k", bounds=(100,))
        return PartitionedHeap(spec, 0, [dict(), dict()])

    def test_routes_rows_to_buckets(self):
        heap = self._heap()
        heap[1] = [50, "low"]
        heap[2] = [500, "high"]
        assert heap.buckets[0] == {1: [50, "low"]}
        assert heap.buckets[1] == {2: [500, "high"]}
        assert heap.partition_of_rowid(1) == 0 and heap.partition_of_rowid(2) == 1

    def test_update_moves_row_across_partitions(self):
        heap = self._heap()
        heap[1] = [50, "x"]
        heap[1] = [500, "x"]  # key change re-routes the row
        assert 1 not in heap.buckets[0] and heap.buckets[1][1] == [500, "x"]
        assert heap[1] == [500, "x"] and len(heap) == 1

    def test_mapping_protocol(self):
        heap = self._heap()
        heap[1], heap[2] = [50, "a"], [500, "b"]
        assert 1 in heap and 3 not in heap
        assert heap.get(3, "dflt") == "dflt"
        assert heap.pop(1) == [50, "a"]
        with pytest.raises(KeyError):
            heap.pop(1)
        assert heap.pop(1, None) is None
        del heap[2]
        assert len(heap) == 0

    def test_iteration_is_partition_major(self):
        heap = self._heap()
        heap[1], heap[2], heap[3] = [500, "p1"], [50, "p0"], [75, "p0"]
        assert list(heap.keys()) == [2, 3, 1]
        assert heap.partition_rowids(0) == (2, 3)
        assert [rowids for rowids, _rows in heap.iter_chunks(10)] == [(2, 3), (1,)]


class TestMergingIterator:
    def test_merges_sorted_streams(self):
        a, b = [(1, "a1"), (4, "a4")], [(2, "b2"), (3, "b3")]
        assert list(MergingIterator([a, b])) == [
            (1, "a1"), (2, "b2"), (3, "b3"), (4, "a4")]

    def test_ties_break_by_stream_position(self):
        a, b = [(1, "first")], [(1, "second")]
        assert [p for _k, p in MergingIterator([a, b])] == ["first", "second"]

    def test_reverse_merges_descending(self):
        a, b = [(4, "a"), (1, "a")], [(3, "b")]
        assert [k for k, _p in MergingIterator([a, b], reverse=True)] == [4, 3, 1]

    def test_merged_groups_fuses_equal_keys(self):
        a, b = [(1, (10,)), (2, (20,))], [(1, (11,))]
        assert list(MergingIterator.merged_groups([a, b])) == [
            (1, (10, 11)), (2, (20,))]


# ---------------------------------------------------------------------------
# SQL-level fixtures
# ---------------------------------------------------------------------------


def _fill(db, n=1500):
    db.execute(
        "CREATE TABLE m (id INTEGER, cat TEXT, val REAL) "
        "PARTITION BY HASH (id) PARTITIONS 4"
    )
    db.insert_rows(
        "m",
        [(i, f"c{i % 7}", (i % 97) * 0.5) for i in range(n)],
    )
    return db


PARITY_QUERIES = (
    "SELECT cat, COUNT(*), SUM(val), MIN(val), MAX(val), AVG(val) "
    "FROM m GROUP BY cat",
    "SELECT COUNT(*), SUM(val) FROM m WHERE id % 3 = 0",
    "SELECT id, val FROM m WHERE val >= 24.0 ORDER BY val, id LIMIT 40",
    "SELECT id FROM m WHERE cat = 'c3' AND val < 30.0",
    "SELECT cat, val FROM m ORDER BY cat DESC, val DESC, id LIMIT 25",
)


def _run_all(executor):
    return [executor.execute(sql).rows for sql in PARITY_QUERIES]


class TestExplainFanout:
    """EXPLAIN renders the partition fan-out; ANALYZE adds actual rows."""

    @pytest.fixture
    def db(self):
        return _fill(Database(parallel=4))

    def test_explain_shows_partitions_and_workers(self, db):
        plan = "\n".join(
            r[0] for r in db.execute(
                "EXPLAIN SELECT cat, SUM(val) FROM m GROUP BY cat").rows
        )
        assert "ParallelScan(m, hash(id) parts=4)" in plan
        assert "Gather(workers=4)" in plan
        assert "PartialAggregate" in plan and "FinalAggregate" in plan

    def test_analyze_reports_per_worker_rows(self, db):
        plan = "\n".join(
            r[0] for r in db.execute(
                "EXPLAIN ANALYZE SELECT COUNT(*) FROM m").rows
        )
        assert "worker_rows=[" in plan
        counts = plan.split("worker_rows=[", 1)[1].split("]", 1)[0]
        assert sum(int(c) for c in counts.split(",")) == 1500

    def test_pragma_off_restores_serial_plan(self, db):
        db.pragma("parallel", 0)
        plan = "\n".join(
            r[0] for r in db.execute(
                "EXPLAIN SELECT cat, SUM(val) FROM m GROUP BY cat").rows
        )
        assert "Gather" not in plan and "ParallelScan" not in plan

    def test_sorted_merge_gather_renders_merge_mode(self, db):
        plan = "\n".join(
            r[0] for r in db.execute(
                "EXPLAIN SELECT id, val FROM m ORDER BY val, id").rows
        )
        assert "merge=sorted" in plan


# ---------------------------------------------------------------------------
# serial-vs-parallel parity
# ---------------------------------------------------------------------------


@st.composite
def _dataset(draw):
    n = draw(st.integers(40, 160))
    rows = []
    for i in range(n):
        cat = draw(st.sampled_from(["a", "b", "c", None]))
        # dyadic values keep partial-sum reassociation exact
        val = draw(st.one_of(st.none(),
                             st.integers(-40, 40).map(lambda k: k * 0.5)))
        rows.append((i, cat, val))
    return rows


_PARTITION_CLAUSES = (
    "PARTITION BY HASH (id) PARTITIONS 2",
    "PARTITION BY HASH (cat) PARTITIONS 4",
    "PARTITION BY RANGE (id) SPLIT AT (30, 90)",
)


@settings(max_examples=25, deadline=None)
@given(_dataset(), st.sampled_from(_PARTITION_CLAUSES),
       st.sampled_from([1, 2, 4]))
def test_property_parallel_matches_serial(rows, clause, workers):
    """Identical result lists — order included — with the pool on or off,
    and the same multiset a plain unpartitioned table produces."""
    db = Database()
    db.execute(f"CREATE TABLE m (id INTEGER, cat TEXT, val REAL) {clause}")
    db.insert_rows("m", rows)
    plain = Database()
    plain.execute("CREATE TABLE m (id INTEGER, cat TEXT, val REAL)")
    plain.insert_rows("m", rows)

    serial = _run_all(db)
    db.pragma("parallel", workers)
    assert _run_all(db) == serial
    for got, want in zip(_run_all(plain), serial):
        assert sorted(map(repr, got)) == sorted(map(repr, want))


def test_parallel_matches_serial_on_file_backed_table(tmp_path):
    """Durable mode: paged buckets are materialized parent-side before the
    fork, and a reopened file must route and scan identically."""
    path = tmp_path / "par.db"
    db = Database(path)
    db.execute(
        "CREATE TABLE m (id INTEGER, cat TEXT, val REAL) "
        "PARTITION BY RANGE (id) SPLIT AT (300, 700)"
    )
    db.insert_rows("m", [(i, f"c{i % 5}", (i % 31) * 0.5) for i in range(1000)])
    serial = _run_all(db)
    db.pragma("parallel", 4)
    assert _run_all(db) == serial
    db.close()

    reopened = Database(path, parallel=4)
    assert _run_all(reopened) == serial
    reopened.close()


def test_parallel_survives_large_group_counts():
    """Merging partial states across partitions, not just a handful of
    groups: every id is its own group."""
    db = _fill(Database(), n=1200)
    serial = db.execute(
        "SELECT id, SUM(val), COUNT(*) FROM m GROUP BY id").rows
    db.pragma("parallel", 4)
    assert db.execute(
        "SELECT id, SUM(val), COUNT(*) FROM m GROUP BY id").rows == serial


# ---------------------------------------------------------------------------
# MVCC: snapshots read identically under parallel and serial plans
# ---------------------------------------------------------------------------


def _content(results):
    """Order-insensitive view: rows that concurrent deletes push onto the
    version-chain tail of ``snapshot_scan`` legitimately reorder unordered
    output (GROUP BY group order is first-seen), so cross-time comparisons
    go by content while same-instant serial-vs-parallel stays exact."""
    return [sorted(map(repr, rows)) for rows in results]


class TestParallelSnapshotParity:
    def test_snapshot_mid_write_reads_identically(self):
        db = _fill(Database())
        reader, writer = db.connect(), db.connect()
        reader.execute("BEGIN")
        before = _content(_run_all(reader))
        # autocommitting writes land *after* the reader's snapshot
        writer.execute("UPDATE m SET val = val + 1000 WHERE id % 3 = 0")
        writer.execute("DELETE FROM m WHERE id % 7 = 0")
        writer.execute("INSERT INTO m VALUES (9001, 'c1', 4.5)")
        serial = _run_all(reader)
        db.pragma("parallel", 4)
        # the parallel plans read the same snapshot — row-for-row, order
        # included — and the snapshot still shields the writer's churn
        assert any(
            "Gather" in r[0]
            for r in reader.execute(f"EXPLAIN {PARITY_QUERIES[0]}").rows
        )
        assert _run_all(reader) == serial
        assert _content(serial) == before
        reader.commit()
        # post-commit the parallel plans see the writer's world — and agree
        # with serial plans over it
        after = _run_all(reader)
        db.pragma("parallel", 0)
        assert _run_all(reader) == after
        assert _content(after) != before
        reader.close()
        writer.close()

    def test_uncommitted_writer_never_leaks_into_workers(self):
        db = _fill(Database(parallel=4))
        writer = db.connect()
        writer.execute("BEGIN")
        writer.execute("DELETE FROM m WHERE id >= 750")
        # another session's parallel aggregate still sees every row
        assert db.execute("SELECT COUNT(*) FROM m").scalar() == 1500
        writer.rollback()
        writer.close()
