"""Session configuration.

The defaults follow the paper:

* outliers are values beyond a configurable threshold, "e.g., 2 standard
  deviations from the global mean" (§3.1) -> ``outlier_sigma = 2.0``;
* groups below a minimum cardinality are flagged incomplete (§3.1)
  -> ``min_group_size = 5``;
* the write cache is flushed to the database "after every three updates,
  which can be configured by the user" (§3.2) -> ``flush_interval = 3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class BuckarooConfig:
    """Tunable knobs for a :class:`~repro.core.session.BuckarooSession`.

    Attributes:
        outlier_sigma: number of standard deviations from the mean beyond
            which a value is flagged as an outlier.
        outlier_scope: ``"global"`` flags values against the whole column's
            mean/std (the paper's default); ``"group"`` flags against the
            group's own statistics.
        min_group_size: groups with fewer rows are flagged as incomplete.
        flush_interval: number of applied wrangling operations between
            write-cache flushes to the backing database.
        max_render_points: per-chart render budget used by the sampling
            strategies (§4.1).
        context_sample_size: number of clean "context" rows error-first
            sampling adds around each group's anomalies.
        max_categories: categorical attributes with more distinct values
            than this are not used to generate groups (keeps the chart
            matrix readable, §2.1 "adjusting granularity").
        suggestion_side_effect_weight: weight of *introduced* anomalies when
            ranking repair suggestions; the paper favours "repairs that
            resolve the anomaly with minimal side effects on other groups"
            (§3.2).
        preview_sample_rows: cap on rows materialized for a repair preview.
        seed: seed for all stochastic components (samplers, generators).
    """

    outlier_sigma: float = 2.0
    outlier_scope: str = "global"
    min_group_size: int = 5
    flush_interval: int = 3
    max_render_points: int = 500
    context_sample_size: int = 20
    max_categories: int = 50
    suggestion_side_effect_weight: float = 1.0
    preview_sample_rows: int = 1000
    seed: int = 7

    def __post_init__(self) -> None:
        if self.outlier_sigma <= 0:
            raise ValueError("outlier_sigma must be positive")
        if self.outlier_scope not in ("global", "group"):
            raise ValueError("outlier_scope must be 'global' or 'group'")
        if self.min_group_size < 1:
            raise ValueError("min_group_size must be at least 1")
        if self.flush_interval < 1:
            raise ValueError("flush_interval must be at least 1")
        if self.max_render_points < 1:
            raise ValueError("max_render_points must be at least 1")

    def with_overrides(self, **changes) -> "BuckarooConfig":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)


DEFAULT_CONFIG = BuckarooConfig()
"""A shared immutable-by-convention default configuration."""
