"""Parse a package (or individual files) into analyzable modules.

The loader is deliberately filesystem-only: modules are parsed with
:mod:`ast`, never imported, so analyzing a file can't run its side
effects and fixtures with deliberately broken invariants stay inert.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional


class Module:
    """One parsed source file."""

    __slots__ = ("path", "name", "tree", "source", "lines")

    def __init__(self, path: Path, name: str, tree: ast.Module, source: str):
        self.path = path
        self.name = name
        self.tree = tree
        self.source = source
        self.lines = source.splitlines()

    def line(self, lineno: int) -> str:
        """1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def __repr__(self) -> str:
        return f"Module({self.name!r})"


def _module_name(path: Path, root: Optional[Path]) -> str:
    """Dotted module name for *path* relative to *root* (or its stem)."""
    if root is not None:
        try:
            rel = path.relative_to(root)
        except ValueError:
            rel = Path(path.name)
        parts = list(rel.with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts = parts[:-1] or [root.name]
        return ".".join(parts) if parts else path.stem
    return path.stem


def load_file(path: Path, root: Optional[Path] = None) -> Module:
    """Parse a single ``.py`` file into a :class:`Module`."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return Module(path, _module_name(path, root), tree, source)


def load_paths(paths: Iterable[Path]) -> List[Module]:
    """Load every ``.py`` file under *paths* (files or directories).

    Directories are walked recursively; ``__pycache__`` and hidden
    directories are skipped.  Results are sorted by path so runs are
    deterministic.
    """
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                parts = child.relative_to(path).parts
                if any(p == "__pycache__" or p.startswith(".") for p in parts):
                    continue
                files.append((child, path))
        elif path.suffix == ".py":
            files.append((path, path.parent))
    modules = []
    seen = set()
    for file_path, root in sorted(files, key=lambda pair: str(pair[0])):
        resolved = file_path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        modules.append(load_file(file_path, root))
    return modules
