"""Run orchestration: load → summarize → check → filter → report."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.callgraph import CallGraph
from repro.analysis.findings import Baseline, Finding, Severity, is_suppressed
from repro.analysis.loader import Module, load_paths
from repro.analysis.summaries import PackageSummary


class Report:
    """Outcome of one analysis run."""

    def __init__(self, findings: List[Finding], suppressed: List[Finding],
                 baselined: List[Finding], modules: List[Module]):
        self.findings = findings
        self.suppressed = suppressed
        self.baselined = baselined
        self.modules = modules

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "modules": [str(m.path) for m in self.modules],
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
        }


class Analyzer:
    """Configurable front door: pick rules, baseline, then run."""

    def __init__(self, checkers: Optional[Sequence] = None,
                 baseline: Optional[Baseline] = None):
        if checkers is None:
            from repro.analysis.checkers import ALL_CHECKERS
            checkers = [cls() for cls in ALL_CHECKERS]
        self.checkers = list(checkers)
        self.baseline = baseline or Baseline()

    def run(self, paths: Iterable[Path]) -> Report:
        modules = load_paths(paths)
        return self.run_modules(modules)

    def run_modules(self, modules: List[Module]) -> Report:
        package = PackageSummary(modules)
        graph = CallGraph(package)
        raw: List[Finding] = []
        for checker in self.checkers:
            raw.extend(checker.check(package, graph))
        raw.sort(key=lambda f: (f.path, f.line, f.col,
                                Severity.ORDER.get(f.severity, 9), f.rule))
        by_path = {m.path: m for m in modules}
        findings: List[Finding] = []
        suppressed: List[Finding] = []
        baselined: List[Finding] = []
        for finding in raw:
            module = by_path.get(Path(finding.path))
            extra = _suppression_lines(module, finding, package)
            if module is not None and is_suppressed(
                    finding, module.lines, extra):
                suppressed.append(finding)
            elif self.baseline.contains(finding):
                baselined.append(finding)
            else:
                findings.append(finding)
        return Report(findings, suppressed, baselined, modules)


def _suppression_lines(module, finding: Finding,
                       package: PackageSummary) -> List[int]:
    """Besides the finding line, a suppression may sit on the ``def``
    line of the function the finding names."""
    if module is None or not finding.qualname:
        return []
    summary = package.summaries.get(module.name)
    if summary is None:
        return []
    return [fn.node.lineno for fn in summary.functions
            if fn.qualname == finding.qualname]


def analyze_paths(paths: Iterable[Path],
                  baseline: Optional[Baseline] = None,
                  checkers: Optional[Sequence] = None) -> Report:
    """One-call convenience used by tests and the CLI."""
    return Analyzer(checkers=checkers, baseline=baseline).run(paths)
