"""minicheck: AST static analysis enforcing minidb's runtime invariants.

PR 5's MVCC layer rests on invariants no test suite can exhaustively
cover — mutations happen under the single write lock, snapshot arguments
thread down to every helper that accepts one, lock-free readers touch
``rows`` before ``versions``, registered snapshots are released
exception-safely, every mutation path reaches the WAL, and streaming
operators stay generators.  This package machine-checks them:

* :mod:`repro.analysis.loader` parses a package into ASTs;
* :mod:`repro.analysis.summaries` distills each function into the facts
  the checkers consume (parameters, decorators, attribute accesses,
  calls, lock/finally context);
* :mod:`repro.analysis.callgraph` resolves calls by name and walks the
  graph to a bounded depth;
* :mod:`repro.analysis.findings` is the finding/severity model plus
  ``# minicheck: ignore[rule]`` suppressions and the committed baseline;
* :mod:`repro.analysis.engine` orchestrates a run;
* :mod:`repro.analysis.checkers` holds the six minidb rules.

``scripts/run_analysis.py`` is the CLI; CI runs it with ``--strict``.
"""

from repro.analysis.engine import Analyzer, Report, analyze_paths
from repro.analysis.findings import Baseline, Finding, Severity

__all__ = [
    "Analyzer",
    "Baseline",
    "Finding",
    "Report",
    "Severity",
    "analyze_paths",
]
