"""Name-based call resolution and a bounded interprocedural walk.

Python's dynamism rules out sound whole-program resolution, so this
layer is deliberately heuristic and *conservative in the direction the
checkers need*: a call it cannot resolve is reported as "unknown" and
checkers treat unknown as satisfying the rule (no false alarms from
dynamism), while a call it can resolve by bare name links to every
same-named function in the package (over-approximating reachability).

One refinement keeps the lock-discipline rule usable: a method call on a
receiver that is provably a *local builtin container* (assigned from a
dict/list/set literal or constructor in the same function) is never
resolved to package methods — ``columns.update(exact)`` on a local dict
must not match ``Table.update``.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.summaries import (
    FunctionInfo,
    ModuleSummary,
    PackageSummary,
    call_name,
)

_BUILTIN_CONTAINER_CALLS = {
    "dict", "list", "set", "tuple", "frozenset", "defaultdict",
    "OrderedDict", "Counter", "deque",
}
_LITERAL_NODES = (
    ast.Dict, ast.List, ast.Set, ast.Tuple, ast.ListComp, ast.SetComp,
    ast.DictComp,
)


def _local_container_names(fn: FunctionInfo) -> Set[str]:
    """Names bound in *fn* to builtin-container literals/constructors."""
    names: Set[str] = set()
    for node in fn.own_nodes():
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None:
            continue
        is_container = isinstance(value, _LITERAL_NODES) or (
            isinstance(value, ast.Call)
            and call_name(value) in _BUILTIN_CONTAINER_CALLS
        )
        if not is_container:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


class CallGraph:
    """Resolves calls by name and answers bounded reachability queries."""

    def __init__(self, package: PackageSummary):
        self.package = package
        self._container_locals: Dict[FunctionInfo, Set[str]] = {}
        self._edges: Dict[FunctionInfo, List[FunctionInfo]] = {}

    def _locals_of(self, fn: FunctionInfo) -> Set[str]:
        cached = self._container_locals.get(fn)
        if cached is None:
            cached = _local_container_names(fn)
            self._container_locals[fn] = cached
        return cached

    def resolve_call(self, fn: FunctionInfo,
                     call: ast.Call) -> Tuple[List[FunctionInfo], bool]:
        """Candidate targets of *call* made inside *fn*.

        Returns ``(candidates, resolved)``.  ``resolved`` is False when
        the call target is dynamic/external and the checkers should
        assume nothing about it.
        """
        func = call.func
        name = call_name(call)
        if not name:
            return [], False
        if isinstance(func, ast.Attribute):
            base = func.value
            # self-local builtin containers never dispatch to package code
            if (isinstance(base, ast.Name)
                    and base.id in self._locals_of(fn)):
                return [], False
            candidates = [
                target for target in self.package.lookup(name)
                if target.class_name is not None or target.module is fn.module
            ]
            return candidates, bool(candidates)
        # bare-name call: same module first, then imported names
        summary = self.package.summaries[fn.module.name]
        same_module = [
            target for target in self.package.lookup(name)
            if target.module is fn.module and target.class_name is None
        ]
        if same_module:
            return same_module, True
        if summary.imported_from(name) is not None:
            imported = [
                target for target in self.package.lookup(name)
                if target.class_name is None
            ]
            return imported, bool(imported)
        return [], False

    def callees(self, fn: FunctionInfo) -> List[FunctionInfo]:
        """All resolvable callees of *fn* (cached)."""
        cached = self._edges.get(fn)
        if cached is not None:
            return cached
        out: List[FunctionInfo] = []
        seen: Set[int] = set()
        for call in fn.calls:
            candidates, resolved = self.resolve_call(fn, call)
            if not resolved:
                continue
            for target in candidates:
                if id(target) not in seen:
                    seen.add(id(target))
                    out.append(target)
        self._edges[fn] = out
        return out

    def reaches(self, fn: FunctionInfo,
                predicate: Callable[[FunctionInfo], bool],
                max_depth: int = 3) -> bool:
        """Does any call chain from *fn* (depth-bounded) hit *predicate*?

        *fn* itself is tested first; nested functions count as depth-0
        extensions of their parent (defining a closure is not a call).
        """
        queue = deque([(fn, 0)])
        visited: Set[int] = set()
        while queue:
            current, depth = queue.popleft()
            if id(current) in visited:
                continue
            visited.add(id(current))
            if predicate(current):
                return True
            for nested in current.nested:
                queue.append((nested, depth))
            if depth >= max_depth:
                continue
            for callee in self.callees(current):
                queue.append((callee, depth + 1))
        return False

    def module_summary(self, fn: FunctionInfo) -> ModuleSummary:
        return self.package.summaries[fn.module.name]
