"""Per-function summaries: the facts the checkers consume.

Each function definition is distilled into a :class:`FunctionInfo` —
parameters, decorators, whether it is a generator, the calls and
attribute accesses in its *own* body (nested ``def``/``lambda`` bodies
get their own summaries) — and each module into a :class:`ModuleSummary`
that can answer structural questions (what function encloses this node?
is it under a ``with ...lock:``? inside a ``finally:``?).  A
:class:`PackageSummary` indexes every function by bare name and by
method name so the call-graph layer can resolve calls without importing
anything.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.analysis.loader import Module

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNC_NODES + (ast.Lambda,)


def decorator_name(node: ast.expr) -> str:
    """Last dotted segment of a decorator expression (``''`` if exotic).

    ``@holds_write_lock``, ``@invariants.holds_write_lock`` and
    ``@wal_exempt("reason")`` all reduce to their final attribute name.
    """
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def call_name(node: ast.Call) -> str:
    """Last dotted segment of a call target (``''`` if exotic)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _own_body_walk(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


class FunctionInfo:
    """Summary of one function (or method, or nested function)."""

    __slots__ = (
        "node", "module", "name", "qualname", "class_name", "params",
        "param_index", "decorators", "is_generator", "calls",
        "attr_loads", "attr_stores", "nested",
    )

    def __init__(self, node, module: Module, qualname: str,
                 class_name: Optional[str]):
        self.node = node
        self.module = module
        self.name = node.name
        self.qualname = qualname
        self.class_name = class_name
        args = node.args
        self.params: List[str] = [
            a.arg for a in
            getattr(args, "posonlyargs", []) + args.args + args.kwonlyargs
        ]
        if args.vararg:
            self.params.append(args.vararg.arg)
        if args.kwarg:
            self.params.append(args.kwarg.arg)
        # positional index for forwarding checks (posonly + regular only)
        positional = [a.arg for a in
                      getattr(args, "posonlyargs", []) + args.args]
        self.param_index: Dict[str, int] = {
            name: i for i, name in enumerate(positional)
        }
        self.decorators = [decorator_name(d) for d in node.decorator_list]
        self.is_generator = any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for n in _own_body_walk(node)
        )
        self.calls: List[ast.Call] = []
        self.attr_loads: List[ast.Attribute] = []
        self.attr_stores: List[ast.Attribute] = []
        for sub in _own_body_walk(node):
            if isinstance(sub, ast.Call):
                self.calls.append(sub)
            elif isinstance(sub, ast.Attribute):
                if isinstance(sub.ctx, ast.Load):
                    self.attr_loads.append(sub)
                else:
                    self.attr_stores.append(sub)
        self.calls.sort(key=lambda n: (n.lineno, n.col_offset))
        self.attr_loads.sort(key=lambda n: (n.lineno, n.col_offset))
        self.nested: List["FunctionInfo"] = []

    def has_decorator(self, name: str) -> bool:
        return name in self.decorators

    def own_nodes(self) -> Iterator[ast.AST]:
        """The function's own body, excluding nested scopes."""
        return _own_body_walk(self.node)

    def __repr__(self) -> str:
        return f"FunctionInfo({self.module.name}:{self.qualname})"


def _looks_like_lock(expr: ast.expr) -> bool:
    """``with <expr>:`` — does the context expression name a lock?"""
    node = expr
    if isinstance(node, ast.Call):
        node = node.func
    name = ""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    return "lock" in name.lower()


class ModuleSummary:
    """Structural index over one module's AST."""

    def __init__(self, module: Module):
        self.module = module
        self.parent: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(module.tree):
            for child in ast.iter_child_nodes(node):
                self.parent[child] = node
        self.functions: List[FunctionInfo] = []
        self._fn_by_node: Dict[ast.AST, FunctionInfo] = {}
        self._imported_names: Dict[str, str] = {}
        self._collect(module.tree, prefix="", class_name=None)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._imported_names[local] = node.module
        # wire lexical nesting (fn defined inside fn)
        for fn in self.functions:
            outer = self.enclosing_function(fn.node)
            if outer is not None:
                outer.nested.append(fn)

    def _collect(self, node: ast.AST, prefix: str,
                 class_name: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNC_NODES):
                qual = f"{prefix}{child.name}"
                info = FunctionInfo(child, self.module, qual, class_name)
                self.functions.append(info)
                self._fn_by_node[child] = info
                self._collect(child, prefix=f"{qual}.", class_name=class_name)
            elif isinstance(child, ast.ClassDef):
                self._collect(child, prefix=f"{child.name}.",
                              class_name=child.name)
            else:
                self._collect(child, prefix=prefix, class_name=class_name)

    def imported_from(self, name: str) -> Optional[str]:
        """Module a name was ``from X import``-ed from, if any."""
        return self._imported_names.get(name)

    def function_for(self, node: ast.AST) -> Optional[FunctionInfo]:
        return self._fn_by_node.get(node)

    def enclosing_function(self, node: ast.AST) -> Optional[FunctionInfo]:
        """Innermost function whose body contains *node* (not node itself)."""
        cur = self.parent.get(node)
        while cur is not None:
            info = self._fn_by_node.get(cur)
            if info is not None:
                return info
            cur = self.parent.get(cur)
        return None

    def in_lock(self, node: ast.AST) -> bool:
        """Is *node* under a ``with ...lock...:`` in its own function?

        Also recognizes the manual ``lock.acquire()`` / ``try/finally:
        lock.release()`` idiom: a node inside a ``try`` whose ``finally``
        calls ``...release()`` on a lock-named object counts as covered.
        """
        cur = node
        parent = self.parent.get(cur)
        while parent is not None:
            if isinstance(parent, _SCOPE_NODES):
                return False
            if isinstance(parent, (ast.With, ast.AsyncWith)):
                for item in parent.items:
                    if _looks_like_lock(item.context_expr):
                        return True
            if isinstance(parent, ast.Try) and parent.finalbody:
                for stmt in parent.finalbody:
                    for sub in ast.walk(stmt):
                        if (isinstance(sub, ast.Call)
                                and isinstance(sub.func, ast.Attribute)
                                and sub.func.attr == "release"
                                and _looks_like_lock(sub.func.value)):
                            # only if cur is in the try body, not the finally
                            if any(cur is b or self._contains(b, cur)
                                   for b in parent.body):
                                return True
            cur = parent
            parent = self.parent.get(cur)
        return False

    def _contains(self, root: ast.AST, target: ast.AST) -> bool:
        for sub in ast.walk(root):
            if sub is target:
                return True
        return False

    def in_finally(self, node: ast.AST) -> bool:
        """Is *node* inside some ``finally:`` block (within its function)?"""
        cur = node
        parent = self.parent.get(cur)
        while parent is not None:
            if isinstance(parent, _SCOPE_NODES):
                return False
            if isinstance(parent, ast.Try):
                if any(cur is b or self._contains(b, cur)
                       for b in parent.finalbody):
                    return True
            cur = parent
            parent = self.parent.get(cur)
        return False


class PackageSummary:
    """All modules of a run, with name-based function indexes."""

    def __init__(self, modules: List[Module]):
        self.modules = modules
        self.summaries: Dict[str, ModuleSummary] = {}
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        for module in modules:
            summary = ModuleSummary(module)
            self.summaries[module.name] = summary
            for fn in summary.functions:
                self.by_name.setdefault(fn.name, []).append(fn)

    def functions(self) -> Iterator[FunctionInfo]:
        for summary in self.summaries.values():
            for fn in summary.functions:
                yield fn

    def lookup(self, name: str) -> List[FunctionInfo]:
        """Every function/method in the package with this bare name."""
        return self.by_name.get(name, [])
