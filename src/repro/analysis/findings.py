"""Finding/severity model, inline suppressions, and the baseline file.

A finding is keyed by a stable digest of ``rule|path|qualname|message``
(line numbers excluded, so unrelated edits above a known finding don't
churn the baseline).  Suppressions are source comments::

    table.rows.clear()  # minicheck: ignore[lock-discipline]
    def legacy_path(...):  # minicheck: ignore  (all rules)

checked on the finding's line and on the ``def`` line of its enclosing
function.  The baseline is a committed JSON file of accepted digests —
``--write-baseline`` snapshots today's findings, ``--strict`` fails only
on findings that are neither suppressed nor baselined.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Set


class Severity:
    ERROR = "error"
    WARNING = "warning"

    ORDER = {ERROR: 0, WARNING: 1}


class Finding:
    """One rule violation at one source location."""

    __slots__ = ("rule", "severity", "path", "line", "col", "message",
                 "qualname")

    def __init__(self, rule: str, severity: str, path: str, line: int,
                 col: int, message: str, qualname: str = ""):
        self.rule = rule
        self.severity = severity
        self.path = path
        self.line = line
        self.col = col
        self.message = message
        self.qualname = qualname

    def key(self) -> str:
        """Stable identity for baselining (line-number independent)."""
        raw = "|".join((self.rule, self.path, self.qualname, self.message))
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "qualname": self.qualname,
            "key": self.key(),
        }

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"[{self.rule}] {self.severity}: {self.message}")

    def __repr__(self) -> str:
        return f"Finding({self.format()!r})"


_SUPPRESS_RE = re.compile(
    r"#\s*minicheck:\s*ignore(?:\[(?P<rules>[\w\-, ]+)\])?")


def suppressed_rules(line: str) -> Optional[Set[str]]:
    """Rules suppressed by a source line's comment.

    ``None`` means no suppression; an empty set means *all* rules.
    """
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return set()
    return {part.strip() for part in rules.split(",") if part.strip()}


def is_suppressed(finding: Finding, lines: List[str],
                  extra_lines: Optional[List[int]] = None) -> bool:
    """Is *finding* suppressed on its line or any of *extra_lines*?"""
    candidates = [finding.line]
    if extra_lines:
        candidates.extend(extra_lines)
    for lineno in candidates:
        if not (1 <= lineno <= len(lines)):
            continue
        rules = suppressed_rules(lines[lineno - 1])
        if rules is None:
            continue
        if not rules or finding.rule in rules:
            return True
    return False


class Baseline:
    """Committed set of accepted finding digests."""

    VERSION = 1

    def __init__(self, keys: Optional[Set[str]] = None):
        self.keys: Set[str] = set(keys or ())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        text = path.read_text(encoding="utf-8")
        if not text.strip():  # blank file (or /dev/null) == empty baseline
            return cls()
        data = json.loads(text)
        entries = data.get("findings", [])
        keys = {e["key"] if isinstance(e, dict) else str(e) for e in entries}
        return cls(keys)

    def save(self, path: Path, findings: List[Finding]) -> None:
        entries = sorted(
            (
                {
                    "key": f.key(),
                    "rule": f.rule,
                    "path": f.path,
                    "qualname": f.qualname,
                    "message": f.message,
                }
                for f in findings
            ),
            key=lambda e: (e["path"], e["rule"], e["qualname"], e["key"]),
        )
        payload: Dict[str, object] = {
            "version": self.VERSION,
            "findings": entries,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")
        self.keys = {e["key"] for e in entries}

    def contains(self, finding: Finding) -> bool:
        return finding.key() in self.keys

    def __len__(self) -> int:
        return len(self.keys)
