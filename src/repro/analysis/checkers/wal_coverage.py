"""wal-coverage: every durable mutation path reaches the WAL.

Recovery replays the WAL; a mutation that never logs is silently lost
on restart.  Any function that mutates row storage (``rows``) or the
catalog (``tables``/``index_catalog``) must, within a bounded call-graph
walk, reach a logging call (``log_event``/``log_commit``/``log_ddl``)
or the change-notification hook ``_notify`` (which owners route into
the WAL), or carry an explicit ``@wal_exempt("why")`` marker.

Index/version structures are deliberately out of scope: they are
derived state, rebuilt from row data on replay.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.callgraph import CallGraph
from repro.analysis.checkers.base import WAL_EXEMPT, Checker, marked
from repro.analysis.findings import Finding, Severity
from repro.analysis.summaries import FunctionInfo, PackageSummary, call_name

#: Durable state: current rows and the catalog.
WAL_ATTRS = {"rows", "tables", "index_catalog"}

#: A call to any of these counts as reaching the log.
LOG_CALLS = {"_notify", "log_event", "log_commit", "log_ddl", "record"}


def _mutates_wal_attr(fn: FunctionInfo) -> Optional[ast.AST]:
    for node in fn.own_nodes():
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr in WAL_ATTRS):
                    return node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr in WAL_ATTRS):
                    return node
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("pop", "clear", "setdefault", "update")
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr in WAL_ATTRS):
                return node
    return None


def _calls_logger(fn: FunctionInfo) -> bool:
    return any(call_name(c) in LOG_CALLS for c in fn.calls)


class WalCoverageChecker(Checker):
    rule = "wal-coverage"
    severity = Severity.ERROR
    description = ("catalog/data mutation paths must log a WAL event or "
                   "be @wal_exempt")

    def check(self, package: PackageSummary,
              graph: CallGraph) -> Iterator[Finding]:
        for fn in package.functions():
            if fn.name == "__init__":
                continue
            site = _mutates_wal_attr(fn)
            if site is None:
                continue
            if marked(fn, package, WAL_EXEMPT):
                continue
            # the function itself, a nested closure, or a bounded chain
            # of callees must hit a logging call
            if graph.reaches(fn, _calls_logger, max_depth=2):
                continue
            yield self.finding(
                fn, site,
                "mutates durable state without reaching a WAL log call "
                "(log the event, call _notify, or mark @wal_exempt "
                "with a reason)")
