"""snapshot-release: registered snapshots are released exception-safely.

An outstanding snapshot pins the GC horizon — leak one and superseded
row versions accumulate forever.  Two obligations:

1. A function that registers a snapshot (``read_snapshot()`` /
   ``retain()``) must either release it in a ``finally:``, or package
   the release into a closure/lambda whose body calls ``.release(...)``
   (the ownership-transfer idiom: the factory hands its caller a
   release callback and the obligation moves with it).

2. A function that *receives* the obligation — binds or takes a
   parameter named ``release`` — must call it inside a ``finally:``,
   forward it onward as an argument, or return it to its own caller.

3. A function that opens a streaming cursor (calls ``.stream(...)`` —
   each one holds a registered snapshot until exhausted or closed) must
   visibly move the obligation somewhere: return the cursor, store it
   into object state (attribute/subscript — a tracked-cursor table),
   hand it to another call (``track_stream``), consume it in place
   (chained call, ``with`` block), or ``.close()`` it in a
   finally/except cleanup.  A cursor bound to a local and merely read
   leaks its snapshot on the first exception.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallGraph
from repro.analysis.checkers.base import Checker
from repro.analysis.findings import Finding, Severity
from repro.analysis.summaries import FunctionInfo, PackageSummary, call_name

REGISTER_CALLS = {"read_snapshot", "retain"}
RELEASE_NAME = "release"
STREAM_CALL = "stream"

_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _is_release_call(node: ast.Call) -> bool:
    name = call_name(node)
    return name == RELEASE_NAME


def _lambda_releases(fn: FunctionInfo) -> bool:
    """Does *fn* build a closure whose body performs the release?"""
    for node in fn.own_nodes():
        if isinstance(node, ast.Lambda):
            for sub in ast.walk(node.body):
                if isinstance(sub, ast.Call) and _is_release_call(sub):
                    return True
    for nested in fn.nested:
        if any(isinstance(c, ast.Call) and _is_release_call(c)
               for c in ast.walk(nested.node)):
            return True
    return False


class SnapshotReleaseChecker(Checker):
    rule = "snapshot-release"
    severity = Severity.ERROR
    description = ("every registered snapshot must be released in a "
                   "finally block or handed off as a release callback")

    def check(self, package: PackageSummary,
              graph: CallGraph) -> Iterator[Finding]:
        for fn in package.functions():
            summary = package.summaries[fn.module.name]
            register_sites = [
                c for c in fn.calls if call_name(c) in REGISTER_CALLS
            ]
            if register_sites:
                ok = (
                    self._releases_in_finally(fn, summary)
                    or _lambda_releases(fn)
                )
                if not ok:
                    yield self.finding(
                        fn, register_sites[0],
                        "registers a snapshot but has no finally-block "
                        "release and no release callback hand-off; a "
                        "leaked snapshot pins the GC horizon")
            # obligation receivers: a `release` binding must be honoured
            if self._binds_release(fn) and not self._discharges(fn, summary):
                yield self.finding(
                    fn, fn.node,
                    "binds a 'release' callback but neither calls it in "
                    "a finally block, forwards it, nor returns it")
            # streaming cursors: each .stream() call holds a snapshot
            for site in self._stream_leaks(fn, summary):
                yield self.finding(
                    fn, site,
                    "opens a streaming cursor but neither returns it, "
                    "stores it, hands it off, nor closes it in a cleanup "
                    "block; an abandoned cursor pins the GC horizon")

    def _releases_in_finally(self, fn: FunctionInfo, summary) -> bool:
        return any(
            isinstance(node, ast.Call) and _is_release_call(node)
            and summary.in_finally(node)
            for node in fn.own_nodes()
        )

    def _binds_release(self, fn: FunctionInfo) -> bool:
        if RELEASE_NAME in fn.params:
            return True
        for node in fn.own_nodes():
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and target.id == RELEASE_NAME):
                        return True
                    if isinstance(target, ast.Tuple):
                        for elt in target.elts:
                            if (isinstance(elt, ast.Name)
                                    and elt.id == RELEASE_NAME):
                                return True
        return False

    def _discharges(self, fn: FunctionInfo, summary) -> bool:
        for node in fn.own_nodes():
            # release() called under finally
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == RELEASE_NAME
                    and summary.in_finally(node)):
                return True
            # forwarded onward: f(..., release=release) or f(release)
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (isinstance(kw.value, ast.Name)
                            and kw.value.id == RELEASE_NAME):
                        return True
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id == RELEASE_NAME:
                        return True
            # returned to the caller (possibly inside a tuple)
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if (isinstance(sub, ast.Name)
                            and sub.id == RELEASE_NAME):
                        return True
            # stored on an object (self._release = release): the
            # obligation moves into object state, discharged by the
            # owner's close path
            if isinstance(node, ast.Assign):
                for sub in ast.walk(node.value):
                    if (isinstance(sub, ast.Name)
                            and sub.id == RELEASE_NAME
                            and isinstance(sub.ctx, ast.Load)):
                        if any(isinstance(t, ast.Attribute)
                               or (isinstance(t, ast.Tuple)
                                   and any(isinstance(e, ast.Attribute)
                                           for e in t.elts))
                               for t in node.targets):
                            return True
        # a nested closure may own the release (generator cleanup idiom)
        for nested in fn.nested:
            for sub in nested.own_nodes():
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == RELEASE_NAME):
                    nested_summary = summary
                    if nested_summary.in_finally(sub):
                        return True
        return False

    # -- streaming-cursor obligations -----------------------------------------

    def _stream_leaks(self, fn: FunctionInfo, summary) -> list[ast.Call]:
        """``.stream(...)`` call sites whose cursor visibly goes nowhere."""
        sites = {
            id(c): c for c in fn.calls
            if isinstance(c.func, ast.Attribute) and c.func.attr == STREAM_CALL
        }
        if not sites:
            return []
        discharged: set[int] = set()    # site ids handled directly
        bound: dict[str, list[int]] = {}  # local name -> site ids it holds
        names_ok: set[str] = set()      # locals whose obligation moved on
        # pass 1: which locals hold a cursor (own_nodes has no ordering
        # guarantee, so bindings must be known before the discharge scan)
        for node in fn.own_nodes():
            if isinstance(node, ast.Assign) and id(node.value) in sites:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.setdefault(target.id, []).append(id(node.value))
        # pass 2: where each cursor (or the local holding it) ends up
        for node in fn.own_nodes():
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if id(sub) in sites:
                        discharged.add(id(sub))
                    elif isinstance(sub, ast.Name) and sub.id in bound:
                        names_ok.add(sub.id)
            elif isinstance(node, ast.Assign):
                into_state = any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets)
                if id(node.value) in sites:
                    if into_state:
                        discharged.add(id(node.value))
                elif into_state:
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name) and sub.id in bound:
                            names_ok.add(sub.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if id(expr) in sites:
                        discharged.add(id(expr))
                    elif isinstance(expr, ast.Name) and expr.id in bound:
                        names_ok.add(expr.id)
            elif isinstance(node, ast.Call):
                func = node.func
                # chained consumption: conn.stream(...).materialize()
                if (isinstance(func, ast.Attribute)
                        and id(func.value) in sites):
                    discharged.add(id(func.value))
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if id(arg) in sites:
                        discharged.add(id(arg))  # handed to track_stream etc.
                    elif isinstance(arg, ast.Name) and arg.id in bound:
                        names_ok.add(arg.id)
                # name.close() on a cleanup path (finally / except)
                if (isinstance(func, ast.Attribute) and func.attr == "close"
                        and isinstance(func.value, ast.Name)
                        and func.value.id in bound
                        and self._in_cleanup(node, summary)):
                    names_ok.add(func.value.id)
        leaks = []
        for site_id, site in sites.items():
            if site_id in discharged:
                continue
            if any(site_id in ids and name in names_ok
                   for name, ids in bound.items()):
                continue
            leaks.append(site)
        return leaks

    @staticmethod
    def _in_cleanup(node: ast.AST, summary) -> bool:
        """Finally block or except handler — the teardown paths."""
        if summary.in_finally(node):
            return True
        cur = node
        parent = summary.parent.get(cur)
        while parent is not None:
            if isinstance(parent, _SCOPES):
                return False
            if isinstance(parent, ast.ExceptHandler):
                return True
            cur = parent
            parent = summary.parent.get(cur)
        return False
