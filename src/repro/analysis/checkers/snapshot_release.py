"""snapshot-release: registered snapshots are released exception-safely.

An outstanding snapshot pins the GC horizon — leak one and superseded
row versions accumulate forever.  Two obligations:

1. A function that registers a snapshot (``read_snapshot()`` /
   ``retain()``) must either release it in a ``finally:``, or package
   the release into a closure/lambda whose body calls ``.release(...)``
   (the ownership-transfer idiom: the factory hands its caller a
   release callback and the obligation moves with it).

2. A function that *receives* the obligation — binds or takes a
   parameter named ``release`` — must call it inside a ``finally:``,
   forward it onward as an argument, or return it to its own caller.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallGraph
from repro.analysis.checkers.base import Checker
from repro.analysis.findings import Finding, Severity
from repro.analysis.summaries import FunctionInfo, PackageSummary, call_name

REGISTER_CALLS = {"read_snapshot", "retain"}
RELEASE_NAME = "release"


def _is_release_call(node: ast.Call) -> bool:
    name = call_name(node)
    return name == RELEASE_NAME


def _lambda_releases(fn: FunctionInfo) -> bool:
    """Does *fn* build a closure whose body performs the release?"""
    for node in fn.own_nodes():
        if isinstance(node, ast.Lambda):
            for sub in ast.walk(node.body):
                if isinstance(sub, ast.Call) and _is_release_call(sub):
                    return True
    for nested in fn.nested:
        if any(isinstance(c, ast.Call) and _is_release_call(c)
               for c in ast.walk(nested.node)):
            return True
    return False


class SnapshotReleaseChecker(Checker):
    rule = "snapshot-release"
    severity = Severity.ERROR
    description = ("every registered snapshot must be released in a "
                   "finally block or handed off as a release callback")

    def check(self, package: PackageSummary,
              graph: CallGraph) -> Iterator[Finding]:
        for fn in package.functions():
            summary = package.summaries[fn.module.name]
            register_sites = [
                c for c in fn.calls if call_name(c) in REGISTER_CALLS
            ]
            if register_sites:
                ok = (
                    self._releases_in_finally(fn, summary)
                    or _lambda_releases(fn)
                )
                if not ok:
                    yield self.finding(
                        fn, register_sites[0],
                        "registers a snapshot but has no finally-block "
                        "release and no release callback hand-off; a "
                        "leaked snapshot pins the GC horizon")
            # obligation receivers: a `release` binding must be honoured
            if self._binds_release(fn) and not self._discharges(fn, summary):
                yield self.finding(
                    fn, fn.node,
                    "binds a 'release' callback but neither calls it in "
                    "a finally block, forwards it, nor returns it")

    def _releases_in_finally(self, fn: FunctionInfo, summary) -> bool:
        return any(
            isinstance(node, ast.Call) and _is_release_call(node)
            and summary.in_finally(node)
            for node in fn.own_nodes()
        )

    def _binds_release(self, fn: FunctionInfo) -> bool:
        if RELEASE_NAME in fn.params:
            return True
        for node in fn.own_nodes():
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and target.id == RELEASE_NAME):
                        return True
                    if isinstance(target, ast.Tuple):
                        for elt in target.elts:
                            if (isinstance(elt, ast.Name)
                                    and elt.id == RELEASE_NAME):
                                return True
        return False

    def _discharges(self, fn: FunctionInfo, summary) -> bool:
        for node in fn.own_nodes():
            # release() called under finally
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == RELEASE_NAME
                    and summary.in_finally(node)):
                return True
            # forwarded onward: f(..., release=release) or f(release)
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (isinstance(kw.value, ast.Name)
                            and kw.value.id == RELEASE_NAME):
                        return True
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id == RELEASE_NAME:
                        return True
            # returned to the caller (possibly inside a tuple)
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if (isinstance(sub, ast.Name)
                            and sub.id == RELEASE_NAME):
                        return True
            # stored on an object (self._release = release): the
            # obligation moves into object state, discharged by the
            # owner's close path
            if isinstance(node, ast.Assign):
                for sub in ast.walk(node.value):
                    if (isinstance(sub, ast.Name)
                            and sub.id == RELEASE_NAME
                            and isinstance(sub.ctx, ast.Load)):
                        if any(isinstance(t, ast.Attribute)
                               or (isinstance(t, ast.Tuple)
                                   and any(isinstance(e, ast.Attribute)
                                           for e in t.elts))
                               for t in node.targets):
                            return True
        # a nested closure may own the release (generator cleanup idiom)
        for nested in fn.nested:
            for sub in nested.own_nodes():
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == RELEASE_NAME):
                    nested_summary = summary
                    if nested_summary.in_finally(sub):
                        return True
        return False
