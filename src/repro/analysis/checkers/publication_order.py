"""publication-order: lock-free readers touch ``rows`` before ``versions``.

Writers publish a version chain *before* mutating ``rows`` so that a
reader which sees the new row state always finds the chain that lets it
reconstruct the old one.  The contract inverts for readers: read
``rows`` first, ``versions`` second.  A lock-free function whose first
``versions`` read precedes its first ``rows`` read can pair a stale
chain with fresh row state — a dirty read with no crash signature.

Functions running under the write lock (``with ...lock:`` around both
accesses, or ``@holds_write_lock``) are exempt: the lock serializes
them against writers, so ordering is irrelevant.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.callgraph import CallGraph
from repro.analysis.checkers.base import HOLDS_WRITE_LOCK, Checker, marked
from repro.analysis.findings import Finding, Severity
from repro.analysis.summaries import PackageSummary


class PublicationOrderChecker(Checker):
    rule = "publication-order"
    severity = Severity.ERROR
    description = ("lock-free readers must read 'rows' before 'versions'")

    def check(self, package: PackageSummary,
              graph: CallGraph) -> Iterator[Finding]:
        for fn in package.functions():
            if marked(fn, package, HOLDS_WRITE_LOCK):
                continue
            summary = package.summaries[fn.module.name]
            first_rows = None
            first_versions = None
            for node in fn.attr_loads:
                if node.attr not in ("rows", "versions"):
                    continue
                if summary.in_lock(node):
                    continue
                if node.attr == "rows" and first_rows is None:
                    first_rows = node
                elif node.attr == "versions" and first_versions is None:
                    first_versions = node
            if first_rows is None or first_versions is None:
                continue
            if ((first_versions.lineno, first_versions.col_offset)
                    < (first_rows.lineno, first_rows.col_offset)):
                yield self.finding(
                    fn, first_versions,
                    "reads 'versions' before 'rows' without the write "
                    "lock; lock-free readers must touch rows first to "
                    "pair row state with a chain at least as new")
