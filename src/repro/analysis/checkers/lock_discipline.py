"""lock-discipline: shared-structure writes only under the write lock.

``Table.rows``/``versions``, index buckets, and the B+tree are mutated
by many call paths but serialized by exactly one lock
(``TransactionManager.lock``).  A mutation is legal when it is
lexically under ``with ...lock:``, or inside a function marked
``@holds_write_lock`` (the caller-provides-the-lock contract), or in an
``__init__`` (construction precedes sharing).

The rule has two halves:

1. every *direct* mutation of a protected attribute must be covered;
2. every *call* to a ``@holds_write_lock`` function must itself come
   from a covered context, so the marker's contract is checked at each
   call site instead of trusted blindly.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.callgraph import CallGraph
from repro.analysis.checkers.base import (
    HOLDS_WRITE_LOCK,
    Checker,
    attr_chain,
    marked,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.summaries import FunctionInfo, PackageSummary, call_name

#: Attributes holding structures shared across threads/transactions.
PROTECTED_ATTRS = {
    "rows", "versions", "indexes", "null_rowids", "_buckets", "_tree",
    "tables", "index_catalog",
}

#: Method names that mutate their receiver in place.
MUTATING_METHODS = {
    "pop", "popitem", "clear", "append", "add", "discard", "insert",
    "remove", "update", "setdefault", "extend",
}


def _protected_base(node: ast.expr) -> Optional[str]:
    """If *node* is (a subscript of) a protected attribute, its name."""
    cur = node
    while isinstance(cur, ast.Subscript):
        cur = cur.value
    if isinstance(cur, ast.Attribute) and cur.attr in PROTECTED_ATTRS:
        return cur.attr
    return None


class LockDisciplineChecker(Checker):
    rule = "lock-discipline"
    severity = Severity.ERROR
    description = ("writes to shared MVCC structures must hold the write "
                   "lock or be marked @holds_write_lock")

    def check(self, package: PackageSummary,
              graph: CallGraph) -> Iterator[Finding]:
        for fn in package.functions():
            if fn.name == "__init__":
                continue
            covered_fn = marked(fn, package, HOLDS_WRITE_LOCK)
            summary = package.summaries[fn.module.name]

            def covered(node: ast.AST) -> bool:
                return covered_fn or summary.in_lock(node)

            for node in fn.own_nodes():
                # half 1: direct mutations of protected structures
                target = self._mutation_target(fn, graph, node)
                if target is not None and not covered(node):
                    yield self.finding(
                        fn, node,
                        f"mutation of protected '{target}' outside the "
                        f"write lock (wrap in 'with txn.lock:' or mark "
                        f"the function @holds_write_lock)")
                # half 2: calls into @holds_write_lock functions
                if isinstance(node, ast.Call):
                    callee = self._marked_callee(fn, graph, package, node)
                    if callee is not None and not covered(node):
                        yield self.finding(
                            fn, node,
                            f"call to @holds_write_lock function "
                            f"'{callee}' without holding the write lock")

    def _mutation_target(self, fn: FunctionInfo, graph: CallGraph,
                         node: ast.AST) -> Optional[str]:
        """Name of the protected attribute *node* mutates, if any."""
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                # rebinding the attribute itself, or item assignment
                if isinstance(target, ast.Subscript):
                    name = _protected_base(target)
                    if name:
                        return name
                elif isinstance(target, ast.Attribute):
                    if target.attr in PROTECTED_ATTRS:
                        return target.attr
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                name = _protected_base(target)
                if name:
                    return name
                if (isinstance(target, ast.Attribute)
                        and target.attr in PROTECTED_ATTRS):
                    return target.attr
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS):
                name = _protected_base(func.value)
                if name:
                    return name
        return None

    def _marked_callee(self, fn: FunctionInfo, graph: CallGraph,
                       package: PackageSummary,
                       call: ast.Call) -> Optional[str]:
        name = call_name(call)
        if not name:
            return None
        candidates, resolved = graph.resolve_call(fn, call)
        if not resolved:
            return None
        hits = [c for c in candidates
                if c.has_decorator(HOLDS_WRITE_LOCK)]
        if not hits:
            return None
        # ambiguous resolution: only flag when *every* candidate demands
        # the lock, otherwise the call may dispatch to an unmarked one
        # (e.g. list.insert vs BTree.insert can't be told apart by name).
        if len(hits) != len(candidates):
            base = call.func
            if isinstance(base, ast.Attribute):
                chain = attr_chain(base.value)
                if not chain or chain[0] == "self":
                    pass  # self.insert(...) inside the index class: flag
                else:
                    return None
        return hits[0].qualname
