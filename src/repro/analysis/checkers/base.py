"""Checker protocol and shared helpers."""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.callgraph import CallGraph
from repro.analysis.findings import Finding, Severity
from repro.analysis.summaries import FunctionInfo, PackageSummary

# Marker decorators (defined in repro.minidb.invariants, detected by name
# so fixtures can declare their own no-op stand-ins).
HOLDS_WRITE_LOCK = "holds_write_lock"
WAL_EXEMPT = "wal_exempt"


class Checker:
    """One rule.  Subclasses set ``rule``/``severity`` and implement
    :meth:`check`, yielding findings over the whole package."""

    rule = "abstract"
    severity = Severity.ERROR
    description = ""

    def check(self, package: PackageSummary,
              graph: CallGraph) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, fn: FunctionInfo, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            rule=self.rule,
            severity=self.severity,
            path=str(fn.module.path),
            line=getattr(node, "lineno", fn.node.lineno),
            col=getattr(node, "col_offset", 0),
            message=message,
            qualname=fn.qualname,
        )


def marked(fn: FunctionInfo, package: PackageSummary,
           decorator: str = HOLDS_WRITE_LOCK) -> bool:
    """Is *fn* (or a lexically enclosing function) marked with *decorator*?"""
    if fn.has_decorator(decorator):
        return True
    summary = package.summaries[fn.module.name]
    outer = summary.enclosing_function(fn.node)
    while outer is not None:
        if outer.has_decorator(decorator):
            return True
        outer = summary.enclosing_function(outer.node)
    return False


def attr_chain(node: ast.expr) -> List[str]:
    """Dotted name parts of an attribute chain (``a.b.c`` → [a, b, c])."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    parts.reverse()
    return parts
