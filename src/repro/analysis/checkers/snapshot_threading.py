"""snapshot-threading: a held snapshot must flow into every callee.

A function that received a ``snapshot`` parameter is reading at a fixed
point in MVCC time; calling a snapshot-aware helper *without* forwarding
it silently re-reads at "latest committed" — an isolation break that
manifests only under concurrent writes.  The rule: inside any function
whose scope binds ``snapshot`` (own parameter or an enclosing
function's, for closures), every call that resolves exclusively to
snapshot-taking package functions must pass it — as ``snapshot=...``,
positionally past the parameter's index, or via ``*args``/``**kwargs``.
Calls with any non-snapshot-taking candidate are skipped (ambiguous
name resolution must not alarm).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.callgraph import CallGraph
from repro.analysis.checkers.base import Checker
from repro.analysis.findings import Finding, Severity
from repro.analysis.summaries import FunctionInfo, PackageSummary, call_name

PARAM = "snapshot"


def _scope_has_snapshot(fn: FunctionInfo,
                        package: PackageSummary) -> bool:
    if PARAM in fn.params:
        return True
    summary = package.summaries[fn.module.name]
    outer = summary.enclosing_function(fn.node)
    while outer is not None:
        if PARAM in outer.params:
            return True
        outer = summary.enclosing_function(outer.node)
    return False


def _passes_snapshot(call: ast.Call, callee: FunctionInfo,
                     is_method_call: bool) -> bool:
    for kw in call.keywords:
        if kw.arg == PARAM:
            return True
        if kw.arg is None:  # **kwargs — assume it's in there
            return True
    if any(isinstance(a, ast.Starred) for a in call.args):
        return True
    index = callee.param_index.get(PARAM)
    if index is None:
        return False
    # method call through an attribute: self/cls is bound implicitly
    if is_method_call and callee.params[:1] in (["self"], ["cls"]):
        index -= 1
    return len(call.args) > index


class SnapshotThreadingChecker(Checker):
    rule = "snapshot-threading"
    severity = Severity.ERROR
    description = ("a function holding a snapshot must forward it to "
                   "every snapshot-aware callee")

    def check(self, package: PackageSummary,
              graph: CallGraph) -> Iterator[Finding]:
        for fn in package.functions():
            if not _scope_has_snapshot(fn, package):
                continue
            for call in fn.calls:
                callee = self._snapshot_callee(fn, graph, call)
                if callee is None:
                    continue
                is_method = isinstance(call.func, ast.Attribute)
                if not _passes_snapshot(call, callee, is_method):
                    yield self.finding(
                        fn, call,
                        f"holds a snapshot but calls "
                        f"'{call_name(call)}' without forwarding it "
                        f"(pass snapshot= explicitly)")

    def _snapshot_callee(self, fn: FunctionInfo, graph: CallGraph,
                         call: ast.Call) -> Optional[FunctionInfo]:
        candidates, resolved = graph.resolve_call(fn, call)
        if not resolved:
            return None
        # don't second-guess recursion into ourselves via bare name --
        # still checked, recursion must thread the snapshot too.
        takers = [c for c in candidates if PARAM in c.params]
        if not takers or len(takers) != len(candidates):
            return None
        return takers[0]
