"""generator-hygiene: executor operators stream, never materialize.

The executor's promise is bounded memory: each node handler in
``_NODE_HANDLERS`` (and any ``_exec_*`` helper) yields rows on demand.
A handler that quietly returns ``list(...)``, a list comprehension, or
``sorted(...)`` materializes an unbounded intermediate and breaks
early-exit LIMIT semantics.

A handler passes when it is itself a generator, or every ``return``
value is provably lazy: a generator expression, a bare name, a call to
a lazy builtin (``islice``/``iter``/``map``/...), or a call to a
package function that is itself lazy (recursively, to a small depth —
this is how ``_limit_stream``-style wrappers are accepted).  Operators
that *must* materialize (sort, hash build sides) do so behind an
explicit ``# minicheck: ignore[generator-hygiene]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.callgraph import CallGraph
from repro.analysis.checkers.base import Checker
from repro.analysis.findings import Finding, Severity
from repro.analysis.summaries import FunctionInfo, PackageSummary, call_name

LAZY_BUILTINS = {
    "islice", "iter", "map", "filter", "zip", "enumerate", "reversed",
    "chain", "starmap", "takewhile", "dropwhile",
}
EAGER_CALLS = {"list", "sorted", "tuple", "set", "dict"}


#: dispatch-registry assignments whose dict values are node handlers —
#: the row pipeline's ``_NODE_HANDLERS``, the batch pipeline's
#: ``_BATCH_HANDLERS``, and the partition executor's
#: ``_PARALLEL_HANDLERS`` (both merged into the former at import time)
_REGISTRY_NAMES = {"_NODE_HANDLERS", "_BATCH_HANDLERS", "_PARALLEL_HANDLERS"}
#: handler-naming conventions picked up even off-registry
_HANDLER_PREFIXES = ("_exec_", "_batch_")


def _handler_functions(package: PackageSummary) -> Iterator[FunctionInfo]:
    """Streaming operators: registry values, ``_exec_*`` and ``_batch_*``.

    Batch handlers stream *batches* instead of rows, but the hygiene
    contract is identical — a handler that materializes every batch
    before yielding the first breaks bounded memory just the same.
    """
    seen: Set[int] = set()
    for summary in package.summaries.values():
        handler_names: Set[str] = set()
        for node in ast.walk(summary.module.tree):
            if not isinstance(node, ast.Assign):
                continue
            is_registry = any(
                isinstance(t, ast.Name) and t.id in _REGISTRY_NAMES
                for t in node.targets
            )
            if is_registry and isinstance(node.value, ast.Dict):
                for value in node.value.values:
                    if isinstance(value, ast.Name):
                        handler_names.add(value.id)
                    elif isinstance(value, ast.Attribute):
                        handler_names.add(value.attr)
        for fn in summary.functions:
            if fn.name in handler_names or fn.name.startswith(_HANDLER_PREFIXES):
                if id(fn) not in seen:
                    seen.add(id(fn))
                    yield fn


class GeneratorHygieneChecker(Checker):
    rule = "generator-hygiene"
    severity = Severity.ERROR
    description = ("executor node handlers must yield or return lazy "
                   "iterators, never materialized lists")

    def check(self, package: PackageSummary,
              graph: CallGraph) -> Iterator[Finding]:
        for fn in _handler_functions(package):
            offender = self._eager_site(fn, graph, set())
            if offender is not None:
                yield self.finding(
                    fn, offender,
                    "executor operator materializes its rows instead of "
                    "streaming them (yield, return a generator, or "
                    "suppress for a deliberate blocking operator)")

    def _eager_site(self, fn: FunctionInfo, graph: CallGraph,
                    visiting: Set[int]) -> Optional[ast.AST]:
        """First node proving *fn* is eager, or None when it is lazy."""
        if id(fn) in visiting or len(visiting) > 3:
            return None  # recursion / depth cap: assume lazy
        if fn.is_generator:
            return None
        visiting = visiting | {id(fn)}
        returns = [n for n in fn.own_nodes() if isinstance(n, ast.Return)]
        if not any(r.value is not None for r in returns):
            # no value-returning path: neither yields nor streams
            return fn.node
        for ret in returns:
            if ret.value is None:
                continue
            bad = self._eager_value(ret.value, fn, graph, visiting)
            if bad is not None:
                return bad
        return None

    def _eager_value(self, value: ast.expr, fn: FunctionInfo,
                     graph: CallGraph,
                     visiting: Set[int]) -> Optional[ast.AST]:
        if isinstance(value, (ast.GeneratorExp, ast.Name, ast.Lambda)):
            return None
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.DictComp,
                              ast.List, ast.Set, ast.Dict, ast.Tuple)):
            return value
        if isinstance(value, ast.IfExp):
            return (self._eager_value(value.body, fn, graph, visiting)
                    or self._eager_value(value.orelse, fn, graph, visiting))
        if isinstance(value, ast.Call):
            name = call_name(value)
            if name in EAGER_CALLS:
                return value
            if name in LAZY_BUILTINS:
                return None
            candidates, resolved = graph.resolve_call(fn, value)
            if not resolved:
                return None  # dynamic/external: assume lazy
            for target in candidates:
                bad = self._eager_site(target, graph, visiting)
                if bad is not None:
                    return value  # report at the call site in *fn*
            return None
        # attribute loads, subscripts, etc.: assume lazy handles
        return None
