"""The six minidb rules.  ``ALL_CHECKERS`` is the default rule set."""

from repro.analysis.checkers.base import Checker
from repro.analysis.checkers.generator_hygiene import GeneratorHygieneChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.publication_order import PublicationOrderChecker
from repro.analysis.checkers.snapshot_release import SnapshotReleaseChecker
from repro.analysis.checkers.snapshot_threading import SnapshotThreadingChecker
from repro.analysis.checkers.wal_coverage import WalCoverageChecker

ALL_CHECKERS = [
    LockDisciplineChecker,
    SnapshotThreadingChecker,
    PublicationOrderChecker,
    WalCoverageChecker,
    SnapshotReleaseChecker,
    GeneratorHygieneChecker,
]

RULES = {cls.rule: cls for cls in ALL_CHECKERS}

__all__ = ["ALL_CHECKERS", "RULES", "Checker"] + [
    cls.__name__ for cls in ALL_CHECKERS
]
