"""Buckaroo — scalable visual data wrangling via direct manipulation.

A complete from-scratch reproduction of the CIDR 2026 paper (Rezig et al.),
including every substrate: an embedded SQL engine (:mod:`repro.minidb`), a
columnar dataframe library (:mod:`repro.frame`), the wrangling core
(:mod:`repro.core`), anomaly-centric sampling (:mod:`repro.sampling`),
multi-layer pan/zoom navigation (:mod:`repro.zoom`), headless charts and UI
(:mod:`repro.charts`, :mod:`repro.ui`), differential snapshots
(:mod:`repro.snapshots`), script generation (:mod:`repro.codegen`), and the
paper's datasets (:mod:`repro.datasets`).

Quickstart::

    from repro import BuckarooSession, load_dataset

    frame, truth = load_dataset("stackoverflow", scale=0.01)
    session = BuckarooSession.from_frame(frame, backend="sql")
    session.generate_groups()
    summary = session.detect()
    worst = summary.groups[0].key
    best_fix = session.suggest(worst)[0]
    session.apply(best_fix)
    print(session.export_script())
"""

from repro.config import BuckarooConfig
from repro.core.session import BuckarooSession
from repro.core.types import (
    Anomaly,
    ApplyResult,
    ErrorType,
    Group,
    GroupKey,
    RepairPlan,
    RepairSuggestion,
)
from repro.datasets import load_dataset
from repro.errors import ReproError
from repro.frame import Column, DataFrame, read_csv, write_csv
from repro.minidb import Database

__version__ = "1.0.0"

__all__ = [
    "Anomaly",
    "ApplyResult",
    "BuckarooConfig",
    "BuckarooSession",
    "Column",
    "DataFrame",
    "Database",
    "ErrorType",
    "Group",
    "GroupKey",
    "RepairPlan",
    "RepairSuggestion",
    "ReproError",
    "load_dataset",
    "read_csv",
    "write_csv",
    "__version__",
]
