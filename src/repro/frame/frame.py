"""The :class:`DataFrame` — an immutable-by-convention columnar table.

Every transforming method returns a *new* frame, mimicking the functional
style of idiomatic pandas pipelines.  This copy-heavy computational model is
deliberate: the frame backend in Table 1 of the paper loses to the database
backend precisely because whole-column re-materialization is expensive, and
this class reproduces that cost profile honestly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import LengthMismatchError, MissingColumnError
from repro.frame import dtypes
from repro.frame.column import Column


class DataFrame:
    """An ordered collection of equal-length :class:`Column` objects."""

    __slots__ = ("_columns",)

    def __init__(self, columns: Sequence[Column]):
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names: {names}")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise LengthMismatchError(f"column lengths differ: {sorted(lengths)}")
        self._columns: dict[str, Column] = {c.name: c for c in columns}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable], dtypes_map: Mapping[str, str] | None = None) -> "DataFrame":
        """Build a frame from ``{name: values}`` with optional dtype overrides."""
        dtypes_map = dtypes_map or {}
        columns = [
            Column(name, values, dtype=dtypes_map.get(name))
            for name, values in data.items()
        ]
        return cls(columns)

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence], columns: Sequence[str]) -> "DataFrame":
        """Build a frame from row tuples plus column names."""
        transposed: list[list] = [[] for _ in columns]
        for row in rows:
            if len(row) != len(columns):
                raise LengthMismatchError(
                    f"row of width {len(row)} for {len(columns)} columns"
                )
            for i, value in enumerate(row):
                transposed[i].append(value)
        return cls([Column(name, values) for name, values in zip(columns, transposed)])

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "DataFrame":
        """A zero-row frame with the given column names."""
        return cls([Column(name, []) for name in columns])

    # -- shape & access ----------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def column_names(self) -> list[str]:
        """Column names in order."""
        return list(self._columns)

    @property
    def columns(self) -> list[Column]:
        """The column objects in order (do not mutate)."""
        return list(self._columns.values())

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise MissingColumnError(name, self.column_names) from None

    def __repr__(self) -> str:
        return f"DataFrame({self.n_rows} rows x {self.n_cols} cols: {', '.join(self.column_names)})"

    def row(self, position: int) -> tuple:
        """The row at ``position`` as a tuple of Python values."""
        return tuple(col[position] for col in self._columns.values())

    def iter_rows(self) -> Iterator[tuple]:
        """Iterate rows as tuples (missing cells are ``None``)."""
        iters = [iter(col) for col in self._columns.values()]
        return zip(*iters) if iters else iter(())

    def to_rows(self) -> list[tuple]:
        """Materialize all rows."""
        return list(self.iter_rows())

    def to_dict(self) -> dict[str, list]:
        """``{name: values}`` with ``None`` for missing cells."""
        return {name: col.to_list() for name, col in self._columns.items()}

    def head(self, n: int = 5) -> "DataFrame":
        """The first ``n`` rows."""
        n = min(n, self.n_rows)
        return self.take(np.arange(n))

    def equals(self, other: "DataFrame") -> bool:
        """Schema and value equality."""
        if self.column_names != other.column_names:
            return False
        return all(self[name].equals(other[name]) for name in self.column_names)

    # -- column-level transforms -------------------------------------------

    def select(self, names: Sequence[str]) -> "DataFrame":
        """New frame with only ``names``, in the given order."""
        return DataFrame([self[name] for name in names])

    def with_column(self, column: Column) -> "DataFrame":
        """New frame with ``column`` added, or replaced if the name exists."""
        if self._columns and len(column) != self.n_rows:
            raise LengthMismatchError(
                f"column of length {len(column)} for frame of {self.n_rows} rows"
            )
        new = dict(self._columns)
        new[column.name] = column
        return DataFrame(list(new.values()))

    def drop_column(self, name: str) -> "DataFrame":
        """New frame without column ``name``."""
        if name not in self._columns:
            raise MissingColumnError(name, self.column_names)
        return DataFrame([c for c in self._columns.values() if c.name != name])

    def rename_column(self, old: str, new: str) -> "DataFrame":
        """New frame with column ``old`` renamed to ``new``."""
        if old not in self._columns:
            raise MissingColumnError(old, self.column_names)
        return DataFrame([
            c.rename(new) if c.name == old else c for c in self._columns.values()
        ])

    # -- row-level transforms (each copies every column) ---------------------

    def filter(self, mask: np.ndarray) -> "DataFrame":
        """New frame keeping rows where ``mask`` is True (copies all columns)."""
        return DataFrame([col.mask_filter(mask) for col in self._columns.values()])

    def take(self, positions: Sequence[int] | np.ndarray) -> "DataFrame":
        """New frame with rows selected/reordered by ``positions``."""
        idx = np.asarray(positions, dtype=np.int64)
        return DataFrame([col.take(idx) for col in self._columns.values()])

    def drop_rows(self, positions: Sequence[int] | np.ndarray) -> "DataFrame":
        """New frame without the rows at ``positions``."""
        mask = np.ones(self.n_rows, dtype=bool)
        mask[np.asarray(list(positions), dtype=np.int64)] = False
        return self.filter(mask)

    def set_values(self, name: str, positions: Sequence[int] | np.ndarray, value) -> "DataFrame":
        """New frame with ``value`` written into column ``name`` at ``positions``."""
        updated = self[name].set_at(positions, value)
        return self.with_column(updated)

    def concat(self, other: "DataFrame") -> "DataFrame":
        """New frame with ``other``'s rows appended (schemas must match)."""
        if self.column_names != other.column_names:
            raise ValueError(
                f"schemas differ: {self.column_names} vs {other.column_names}"
            )
        return DataFrame([
            self[name].concat(other[name]) for name in self.column_names
        ])

    def sort_values(self, name: str, ascending: bool = True) -> "DataFrame":
        """New frame sorted by column ``name`` (missing values last)."""
        col = self[name]
        if col.dtype in dtypes.NUMERIC_DTYPES or col.dtype == dtypes.BOOL:
            values, ok, _ = col.to_numeric()
            keys = values.copy()
            keys[~ok] = np.inf  # ascending order, missing last
            order = np.argsort(keys, kind="stable")
            n_present = int(ok.sum())
        else:
            pairs = []
            for i, value in enumerate(col):
                missing = value is None
                pairs.append((missing, "" if missing else str(value), i))
            pairs.sort(key=lambda p: (p[0], p[1]))
            order = np.array([p[2] for p in pairs], dtype=np.int64)
            n_present = col.n_valid
        if not ascending and len(order):
            # reverse only the present prefix; missing rows stay last
            order = np.concatenate([order[:n_present][::-1], order[n_present:]])
        return self.take(order)

    # -- analytics ----------------------------------------------------------

    def groupby(self, name: str):
        """Group rows by the values of column ``name`` (see ``GroupBy``)."""
        from repro.frame.groupby import GroupBy

        return GroupBy(self, name)

    def categorical_columns(self, max_categories: int | None = None) -> list[str]:
        """Columns suitable as grouping attributes (string/bool/low-card int)."""
        result = []
        for col in self._columns.values():
            if col.dtype in (dtypes.STRING, dtypes.BOOL):
                if max_categories is None or len(col.unique()) <= max_categories:
                    result.append(col.name)
            elif col.dtype == dtypes.INT64:
                distinct = len(col.unique())
                if distinct <= (max_categories or 20):
                    result.append(col.name)
        return result

    def numerical_columns(self) -> list[str]:
        """Columns holding (possibly messy) numeric data.

        Includes ``mixed`` columns where most present values parse as
        numbers — exactly the dirty columns Buckaroo must handle.
        """
        result = []
        for col in self._columns.values():
            if col.dtype in dtypes.NUMERIC_DTYPES:
                result.append(col.name)
            elif col.dtype == dtypes.MIXED:
                _, ok, mismatch = col.to_numeric()
                present = ok.sum() + mismatch.sum()
                if present and ok.sum() / present >= 0.5:
                    result.append(col.name)
        return result

    def describe(self) -> dict[str, dict]:
        """Per-column summary: dtype, missing count, numeric stats when valid."""
        summary: dict[str, dict] = {}
        for col in self._columns.values():
            entry: dict = {
                "dtype": col.dtype,
                "count": len(col),
                "missing": col.n_missing,
            }
            if col.dtype in dtypes.NUMERIC_DTYPES:
                entry.update(
                    mean=col.mean(), std=col.std(), min=col.min(), max=col.max()
                )
            summary[col.name] = entry
        return summary
