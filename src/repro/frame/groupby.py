"""Group-by aggregation over a :class:`~repro.frame.frame.DataFrame`.

This provides the frame-backend implementation of the paper's group
abstraction (§2.1): projecting a numerical attribute onto a categorical
attribute yields one group per category value.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import MissingColumnError

_AGG_FUNCS: dict[str, Callable[[np.ndarray], float]] = {
    "count": lambda v: float(len(v)),
    "sum": lambda v: float(np.sum(v)) if len(v) else 0.0,
    "mean": lambda v: float(np.mean(v)) if len(v) else float("nan"),
    "median": lambda v: float(np.median(v)) if len(v) else float("nan"),
    "min": lambda v: float(np.min(v)) if len(v) else float("nan"),
    "max": lambda v: float(np.max(v)) if len(v) else float("nan"),
    "std": lambda v: float(np.std(v)) if len(v) else float("nan"),
}

SUPPORTED_AGGS = tuple(_AGG_FUNCS)
"""Aggregate function names accepted by :meth:`GroupBy.agg`."""


class GroupBy:
    """Lazily computed grouping of frame rows by a key column's values.

    Missing key values form their own group under the key ``None`` — in
    Buckaroo a missing *categorical* cell is itself an anomaly worth seeing.
    """

    def __init__(self, frame, key_column: str):
        if key_column not in frame:
            raise MissingColumnError(key_column, frame.column_names)
        self._frame = frame
        self.key_column = key_column
        self._groups: dict | None = None

    def groups(self) -> dict:
        """Map each key value to an int64 array of row positions."""
        if self._groups is None:
            buckets: dict = {}
            for position, value in enumerate(self._frame[self.key_column]):
                buckets.setdefault(value, []).append(position)
            self._groups = {
                key: np.asarray(positions, dtype=np.int64)
                for key, positions in buckets.items()
            }
        return self._groups

    def size(self) -> dict:
        """Map each key value to its group's row count."""
        return {key: len(positions) for key, positions in self.groups().items()}

    def keys(self) -> list:
        """Group key values in first-seen order."""
        return list(self.groups())

    def agg(self, value_column: str, funcs: Sequence[str]):
        """Aggregate ``value_column`` per group with the named functions.

        Returns a new :class:`DataFrame` with the key column plus one column
        per function (named ``<value_column>_<func>``).  Non-numeric and
        missing values are skipped; ``count`` counts usable numeric values.
        """
        from repro.frame.frame import DataFrame

        for func in funcs:
            if func not in _AGG_FUNCS:
                raise ValueError(
                    f"unsupported aggregate {func!r}; expected one of {SUPPORTED_AGGS}"
                )
        column = self._frame[value_column]
        values, ok, _ = column.to_numeric()
        keys = []
        out: dict[str, list] = {f"{value_column}_{f}": [] for f in funcs}
        for key, positions in self.groups().items():
            usable = values[positions][ok[positions]]
            keys.append(key)
            for func in funcs:
                out[f"{value_column}_{func}"].append(_AGG_FUNCS[func](usable))
        data: dict[str, list] = {self.key_column: keys}
        data.update(out)
        return DataFrame.from_dict(data)

    def missing_counts(self, value_column: str) -> dict:
        """Per-group count of missing cells in ``value_column``."""
        mask = self._frame[value_column].missing_mask
        return {
            key: int(mask[positions].sum())
            for key, positions in self.groups().items()
        }
