"""``repro.frame`` — a from-scratch columnar dataframe library.

This package is the reproduction's substitute for Pandas (see DESIGN.md §1).
It provides typed, missing-aware columns, an immutable-style ``DataFrame``,
group-by aggregation, and CSV I/O.  Its deliberately copy-heavy computational
model reproduces the cost profile the paper measures for the Pandas backend
in Table 1.
"""

from repro.frame import dtypes
from repro.frame.column import Column
from repro.frame.frame import DataFrame
from repro.frame.groupby import GroupBy
from repro.frame.io import read_csv, read_csv_text, write_csv, write_csv_text
from repro.frame.parsing import (
    MISSING_TOKENS,
    coerce_to_number,
    is_missing_token,
    parse_number_lenient,
    parse_number_strict,
)

__all__ = [
    "Column",
    "DataFrame",
    "GroupBy",
    "dtypes",
    "read_csv",
    "read_csv_text",
    "write_csv",
    "write_csv_text",
    "MISSING_TOKENS",
    "coerce_to_number",
    "is_missing_token",
    "parse_number_lenient",
    "parse_number_strict",
]
