"""Typed, missing-aware column — the unit of storage in :mod:`repro.frame`.

A :class:`Column` pairs a numpy array with a validity mask (Arrow-style):
``valid[i] is False`` means row ``i`` is missing, regardless of what the
storage array holds at that position.  All statistics skip missing values.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ColumnTypeError, LengthMismatchError
from repro.frame import dtypes
from repro.frame.parsing import coerce_to_number, parse_number_strict

_FILL = {
    dtypes.INT64: 0,
    dtypes.FLOAT64: float("nan"),
    dtypes.BOOL: False,
    dtypes.STRING: None,
    dtypes.MIXED: None,
}


class Column:
    """An immutable-by-convention named, typed vector with a validity mask.

    Mutating methods (``set_at``, ``fill_missing``) return *new* columns; the
    underlying arrays are never shared with callers after construction.
    """

    __slots__ = ("name", "dtype", "_data", "_valid")

    def __init__(self, name: str, values: Iterable, dtype: str | None = None):
        values = list(values) if not isinstance(values, (list, np.ndarray)) else values
        if dtype is None:
            dtype = dtypes.infer_dtype(values)
        dtypes.validate_dtype(dtype)
        self.name = name
        self.dtype = dtype
        self._data, self._valid = _build_storage(values, dtype)

    # -- construction ------------------------------------------------------

    @classmethod
    def _from_storage(cls, name: str, dtype: str, data: np.ndarray, valid: np.ndarray) -> "Column":
        """Internal: wrap pre-built storage arrays without copying."""
        col = object.__new__(cls)
        col.name = name
        col.dtype = dtype
        col._data = data
        col._valid = valid
        return col

    def copy(self, name: str | None = None) -> "Column":
        """Deep copy, optionally renamed."""
        return Column._from_storage(
            name if name is not None else self.name,
            self.dtype,
            self._data.copy(),
            self._valid.copy(),
        )

    def rename(self, name: str) -> "Column":
        """Same data, new name (storage shared — columns are read-only)."""
        return Column._from_storage(name, self.dtype, self._data, self._valid)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, position: int):
        """Return the Python value at ``position`` (``None`` when missing)."""
        if not self._valid[position]:
            return None
        return _to_python(self._data[position], self.dtype)

    def __iter__(self) -> Iterator:
        data, valid, dtype = self._data, self._valid, self.dtype
        for i in range(len(data)):
            yield _to_python(data[i], dtype) if valid[i] else None

    def __repr__(self) -> str:
        return f"Column({self.name!r}, dtype={self.dtype}, len={len(self)}, missing={self.n_missing})"

    def to_list(self) -> list:
        """Materialize Python values, with ``None`` for missing cells."""
        return list(self)

    def equals(self, other: "Column") -> bool:
        """Value equality: same length, same missing pattern, same values."""
        if len(self) != len(other):
            return False
        if not np.array_equal(self._valid, other._valid):
            return False
        for i in range(len(self)):
            if self._valid[i] and self[i] != other[i]:
                return False
        return True

    # -- missingness -------------------------------------------------------

    @property
    def valid_mask(self) -> np.ndarray:
        """Boolean array, ``True`` where a value is present (copy)."""
        return self._valid.copy()

    @property
    def missing_mask(self) -> np.ndarray:
        """Boolean array, ``True`` where the value is missing (copy)."""
        return ~self._valid

    @property
    def n_missing(self) -> int:
        """Number of missing cells."""
        return int((~self._valid).sum())

    @property
    def n_valid(self) -> int:
        """Number of present cells."""
        return int(self._valid.sum())

    def missing_positions(self) -> np.ndarray:
        """Positions (int64 array) of missing cells."""
        return np.flatnonzero(~self._valid)

    # -- transformation ----------------------------------------------------

    def take(self, positions: Sequence[int] | np.ndarray) -> "Column":
        """New column with rows reordered/selected by ``positions``."""
        idx = np.asarray(positions, dtype=np.int64)
        return Column._from_storage(self.name, self.dtype, self._data[idx].copy(), self._valid[idx].copy())

    def mask_filter(self, mask: np.ndarray) -> "Column":
        """New column keeping rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(self):
            raise LengthMismatchError(
                f"mask length {len(mask)} != column length {len(self)}"
            )
        return Column._from_storage(self.name, self.dtype, self._data[mask].copy(), self._valid[mask].copy())

    def set_at(self, positions: Sequence[int] | np.ndarray, value) -> "Column":
        """New column with ``value`` written at each of ``positions``.

        ``value`` may be a scalar (broadcast) or a sequence matching
        ``positions``; ``None`` entries mark cells missing.  If the written
        value does not fit the current dtype the column is widened to
        ``mixed``.
        """
        idx = np.asarray(positions, dtype=np.int64)
        scalars = [value] * len(idx) if not isinstance(value, (list, tuple, np.ndarray)) else list(value)
        if len(scalars) != len(idx):
            raise LengthMismatchError(
                f"{len(scalars)} values for {len(idx)} positions"
            )
        target_dtype = self.dtype
        for scalar in scalars:
            if scalar is not None and not _fits(scalar, target_dtype):
                target_dtype = _widen(target_dtype, scalar)
        if target_dtype != self.dtype:
            out = self.astype(target_dtype)
            data, valid = out._data, out._valid
        else:
            data, valid = self._data.copy(), self._valid.copy()
        for pos, scalar in zip(idx, scalars):
            if scalar is None:
                valid[pos] = False
                data[pos] = _FILL[target_dtype]
            else:
                valid[pos] = True
                data[pos] = _coerce_scalar(scalar, target_dtype)
        return Column._from_storage(self.name, target_dtype, data, valid)

    def fill_missing(self, value) -> "Column":
        """New column with every missing cell replaced by ``value``."""
        return self.set_at(self.missing_positions(), value)

    def astype(self, dtype: str) -> "Column":
        """New column converted to ``dtype``; unconvertible cells go missing.

        Converting a ``mixed``/``string`` column to ``float64`` uses strict
        numeric parsing — use the type-conversion wrangler for lenient
        repair of spellings like ``"12k"``.
        """
        dtypes.validate_dtype(dtype)
        if dtype == self.dtype:
            return self.copy()
        values = []
        for value in self:
            values.append(_convert(value, dtype))
        return Column(self.name, values, dtype=dtype)

    def concat(self, other: "Column") -> "Column":
        """New column with ``other``'s rows appended (dtypes widened)."""
        values = self.to_list() + other.to_list()
        return Column(self.name, values)

    # -- numeric views -----------------------------------------------------

    def to_numeric(self, lenient: bool = False) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Numeric view: ``(values, ok_mask, mismatch_mask)``.

        ``values`` is float64 with NaN where no number is available;
        ``ok_mask`` marks positions holding a usable number; ``mismatch_mask``
        marks *present* cells that could not be interpreted as numbers — the
        raw material of the type-mismatch detector.

        With ``lenient=True``, messy spellings (``"12k"``) parse successfully
        and are therefore not mismatches.
        """
        n = len(self)
        values = np.full(n, np.nan, dtype=np.float64)
        ok = np.zeros(n, dtype=bool)
        if self.dtype in dtypes.NUMERIC_DTYPES:
            values[self._valid] = self._data[self._valid].astype(np.float64)
            ok = self._valid.copy()
        elif self.dtype == dtypes.BOOL:
            values[self._valid] = self._data[self._valid].astype(np.float64)
            ok = self._valid.copy()
        else:
            for i in range(n):
                if not self._valid[i]:
                    continue
                raw = self._data[i]
                number = (
                    coerce_to_number(raw)
                    if lenient
                    else _strict_number(raw)
                )
                if number is not None:
                    values[i] = number
                    ok[i] = True
        mismatch = self._valid & ~ok
        return values, ok, mismatch

    # -- statistics (missing-aware) ------------------------------------------

    def unique(self) -> list:
        """Distinct present values, in first-seen order."""
        seen: dict = {}
        for value in self:
            if value is not None and value not in seen:
                seen[value] = None
        return list(seen)

    def value_counts(self) -> dict:
        """Map each distinct present value to its occurrence count."""
        counts: dict = {}
        for value in self:
            if value is None:
                continue
            counts[value] = counts.get(value, 0) + 1
        return counts

    def min(self):
        """Minimum present numeric value (``None`` when none exist)."""
        return self._reduce(np.min)

    def max(self):
        """Maximum present numeric value (``None`` when none exist)."""
        return self._reduce(np.max)

    def mean(self):
        """Mean of present numeric values (``None`` when none exist)."""
        return self._reduce(np.mean)

    def std(self):
        """Population standard deviation of present numeric values."""
        return self._reduce(np.std)

    def median(self):
        """Median of present numeric values (``None`` when none exist)."""
        return self._reduce(np.median)

    def sum(self):
        """Sum of present numeric values (0.0 when none exist)."""
        values, ok, _ = self.to_numeric()
        if not ok.any():
            return 0.0
        return float(values[ok].sum())

    def mode(self):
        """Most frequent present value (ties broken by first occurrence)."""
        counts = self.value_counts()
        if not counts:
            return None
        best = max(counts.values())
        for value, count in counts.items():
            if count == best:
                return value
        return None  # pragma: no cover - unreachable

    def _reduce(self, fn):
        if self.dtype in (dtypes.STRING,) and fn in (np.mean, np.std, np.median):
            raise ColumnTypeError(
                f"cannot compute numeric statistic on string column {self.name!r}"
            )
        values, ok, _ = self.to_numeric()
        if not ok.any():
            return None
        return float(fn(values[ok]))


def _build_storage(values, dtype: str) -> tuple[np.ndarray, np.ndarray]:
    storage = dtypes.storage_dtype(dtype)
    n = len(values)
    valid = np.ones(n, dtype=bool)
    if storage is object:
        data = np.empty(n, dtype=object)
        for i, value in enumerate(values):
            if value is None or _is_nan(value):
                valid[i] = False
                data[i] = None
            else:
                data[i] = str(value) if dtype == dtypes.STRING and not isinstance(value, str) else value
        return data, valid
    data = np.zeros(n, dtype=storage)
    fill = _FILL[dtype]
    for i, value in enumerate(values):
        if value is None or _is_nan(value):
            valid[i] = False
            data[i] = fill
        else:
            data[i] = value
    return data, valid


def _is_nan(value) -> bool:
    return isinstance(value, (float, np.floating)) and value != value


def _to_python(raw, dtype: str):
    if dtype == dtypes.INT64:
        return int(raw)
    if dtype == dtypes.FLOAT64:
        return float(raw)
    if dtype == dtypes.BOOL:
        return bool(raw)
    return raw


def _strict_number(raw) -> float | None:
    if isinstance(raw, bool):
        return None
    if isinstance(raw, (int, float, np.integer, np.floating)):
        value = float(raw)
        return None if value != value else value
    if isinstance(raw, str):
        return parse_number_strict(raw)
    return None


def _fits(value, dtype: str) -> bool:
    if dtype == dtypes.MIXED:
        return True
    if dtype == dtypes.INT64:
        return isinstance(value, (int, np.integer)) and not isinstance(value, bool)
    if dtype == dtypes.FLOAT64:
        return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(value, bool)
    if dtype == dtypes.BOOL:
        return isinstance(value, (bool, np.bool_))
    if dtype == dtypes.STRING:
        return isinstance(value, str)
    return False


def _widen(dtype: str, value) -> str:
    if dtype == dtypes.INT64 and isinstance(value, (float, np.floating)):
        return dtypes.FLOAT64
    return dtypes.MIXED


def _coerce_scalar(value, dtype: str):
    if dtype == dtypes.INT64:
        return int(value)
    if dtype == dtypes.FLOAT64:
        return float(value)
    if dtype == dtypes.BOOL:
        return bool(value)
    if dtype == dtypes.STRING:
        return value if isinstance(value, str) else str(value)
    return value


def _convert(value, dtype: str):
    if value is None:
        return None
    if dtype == dtypes.STRING:
        return value if isinstance(value, str) else str(value)
    if dtype == dtypes.MIXED:
        return value
    if dtype == dtypes.BOOL:
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "1", "yes"):
                return True
            if lowered in ("false", "0", "no"):
                return False
            return None
        if isinstance(value, (int, float)):
            return bool(value)
        return None
    # numeric targets
    number = _strict_number(value)
    if number is None:
        return None
    if dtype == dtypes.INT64:
        if number != int(number):
            return None
        return int(number)
    return float(number)
