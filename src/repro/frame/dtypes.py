"""Column dtype system for :mod:`repro.frame`.

The dataframe substrate supports five logical dtypes:

``int64``
    64-bit integers (numpy-backed, zeros under the missing mask).
``float64``
    64-bit floats (NaN under the missing mask).
``bool``
    booleans.
``string``
    text values, stored as Python ``str`` objects.
``mixed``
    heterogeneous values — the dtype real-world dirty columns land in,
    e.g. an income column containing ``50000`` alongside ``"12k"``.
    Buckaroo's type-mismatch detector (§3.1) targets these columns.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

INT64 = "int64"
FLOAT64 = "float64"
BOOL = "bool"
STRING = "string"
MIXED = "mixed"

ALL_DTYPES = (INT64, FLOAT64, BOOL, STRING, MIXED)

NUMERIC_DTYPES = (INT64, FLOAT64)

_STORAGE = {
    INT64: np.int64,
    FLOAT64: np.float64,
    BOOL: np.bool_,
    STRING: object,
    MIXED: object,
}


def is_numeric_dtype(dtype: str) -> bool:
    """True for dtypes whose values are machine numbers (int64/float64)."""
    return dtype in NUMERIC_DTYPES


def storage_dtype(dtype: str):
    """Return the numpy storage dtype backing a logical dtype."""
    try:
        return _STORAGE[dtype]
    except KeyError:
        raise ValueError(f"unknown dtype {dtype!r}; expected one of {ALL_DTYPES}") from None


def validate_dtype(dtype: str) -> str:
    """Return ``dtype`` if valid, raising ``ValueError`` otherwise."""
    if dtype not in _STORAGE:
        raise ValueError(f"unknown dtype {dtype!r}; expected one of {ALL_DTYPES}")
    return dtype


def infer_dtype(values: Iterable) -> str:
    """Infer the narrowest logical dtype holding every non-missing value.

    ``None`` (and float NaN) count as missing and do not influence the
    result.  An all-missing column defaults to ``float64``.

    >>> infer_dtype([1, 2, None])
    'int64'
    >>> infer_dtype([1, 2.5])
    'float64'
    >>> infer_dtype(["a", "b"])
    'string'
    >>> infer_dtype([1, "12k"])
    'mixed'
    """
    saw_int = saw_float = saw_bool = saw_str = saw_other = False
    saw_any = False
    for value in values:
        if value is None or _is_nan(value):
            continue
        saw_any = True
        if isinstance(value, bool) or isinstance(value, np.bool_):
            saw_bool = True
        elif isinstance(value, (int, np.integer)):
            saw_int = True
        elif isinstance(value, (float, np.floating)):
            saw_float = True
        elif isinstance(value, str):
            saw_str = True
        else:
            saw_other = True
    if not saw_any:
        return FLOAT64
    if saw_other:
        return MIXED
    kinds = sum([saw_bool, saw_int or saw_float, saw_str])
    if kinds > 1:
        return MIXED
    if saw_str:
        return STRING
    if saw_bool:
        return BOOL
    if saw_float:
        return FLOAT64
    return INT64


def _is_nan(value) -> bool:
    return isinstance(value, (float, np.floating)) and value != value
