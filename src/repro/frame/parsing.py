"""Text-to-number parsing used by type-mismatch detection and repair.

Two flavours:

* :func:`parse_number_strict` accepts only plain numeric literals and is used
  for dtype inference and CSV loading.
* :func:`parse_number_lenient` additionally understands the messy spellings
  Buckaroo's type-conversion wrangler must repair — the paper's running
  example is ``"12k"`` in a salary column (§3.1), and real data adds currency
  symbols, thousands separators and percent signs.
"""

from __future__ import annotations

import re

MISSING_TOKENS = frozenset(
    {"", "na", "n/a", "null", "none", "nan", "missing", "?", "-", "unknown"}
)
"""Spellings treated as a missing value when loading text data."""

_SUFFIX_MULTIPLIERS = {
    "k": 1e3,
    "m": 1e6,
    "b": 1e9,
}

_CURRENCY = "$€£¥"

_STRICT_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?$")


def is_missing_token(text: str) -> bool:
    """True when ``text`` is a conventional spelling of "no value"."""
    return text.strip().lower() in MISSING_TOKENS


def parse_number_strict(text: str) -> float | None:
    """Parse a plain numeric literal, returning ``None`` when not a number.

    >>> parse_number_strict("42")
    42.0
    >>> parse_number_strict("12k") is None
    True
    """
    text = text.strip()
    if not _STRICT_RE.match(text):
        return None
    return float(text)


def parse_number_lenient(text: str) -> float | None:
    """Parse messy numeric spellings; ``None`` when no number is recoverable.

    Handles currency symbols, thousands separators, magnitude suffixes
    (k/m/b, case-insensitive) and percent signs:

    >>> parse_number_lenient("12k")
    12000.0
    >>> parse_number_lenient("$1,200.50")
    1200.5
    >>> parse_number_lenient("15%")
    0.15
    >>> parse_number_lenient("twelve") is None
    True
    """
    text = text.strip()
    if not text or is_missing_token(text):
        return None
    negative = False
    if text.startswith("(") and text.endswith(")"):  # accounting negatives
        negative = True
        text = text[1:-1].strip()
    text = text.lstrip(_CURRENCY).rstrip(_CURRENCY).strip()
    percent = False
    if text.endswith("%"):
        percent = True
        text = text[:-1].strip()
    multiplier = 1.0
    if text and text[-1].lower() in _SUFFIX_MULTIPLIERS:
        multiplier = _SUFFIX_MULTIPLIERS[text[-1].lower()]
        text = text[:-1].strip()
    text = text.replace(",", "").replace("_", "")
    parsed = parse_number_strict(text)
    if parsed is None:
        return None
    value = parsed * multiplier
    if percent:
        value /= 100.0
    if negative:
        value = -value
    return value


def coerce_to_number(value) -> float | None:
    """Best-effort conversion of an arbitrary cell value to ``float``.

    Numbers pass through; strings go through the lenient parser; anything
    else (including ``None``/NaN and booleans) yields ``None``.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value != value:
            return None
        return float(value)
    if isinstance(value, str):
        return parse_number_lenient(value)
    return None
