"""CSV input/output for :mod:`repro.frame`.

A small, dependency-free loader with dtype inference: numeric-looking text
becomes int64/float64, conventional missing tokens become missing cells, and
columns mixing numbers with unparseable text land in the ``mixed`` dtype so
Buckaroo's type-mismatch detector can find them.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

from repro.frame.dtypes import FLOAT64, INT64
from repro.frame.frame import DataFrame
from repro.frame.parsing import is_missing_token, parse_number_strict


def read_csv(source, dtypes_map: dict[str, str] | None = None) -> DataFrame:
    """Load a CSV file (path, ``Path`` or file object) into a frame.

    Values are inferred cell-by-cell: strict numeric literals become numbers,
    missing tokens (``""``, ``"N/A"``...) become missing, everything else
    stays text.  ``dtypes_map`` forces specific columns to a logical dtype.
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="", encoding="utf-8") as handle:
            return _read(handle, dtypes_map)
    return _read(source, dtypes_map)


def read_csv_text(text: str, dtypes_map: dict[str, str] | None = None) -> DataFrame:
    """Load CSV from an in-memory string (convenience for tests/examples)."""
    return _read(io.StringIO(text), dtypes_map)


def _read(handle, dtypes_map: dict[str, str] | None) -> DataFrame:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("CSV source is empty (no header row)") from None
    columns: list[list] = [[] for _ in header]
    for row in reader:
        for i in range(len(header)):
            raw = row[i] if i < len(row) else ""
            columns[i].append(_parse_cell(raw))
    data = {name: values for name, values in zip(header, columns)}
    return DataFrame.from_dict(data, dtypes_map=dtypes_map)


def _parse_cell(raw: str):
    if is_missing_token(raw):
        return None
    number = parse_number_strict(raw)
    if number is not None:
        if number == int(number) and "e" not in raw.lower() and "." not in raw:
            return int(number)
        return number
    return raw


def write_csv(frame: DataFrame, target) -> None:
    """Write a frame to a CSV file (path, ``Path`` or file object).

    Missing cells are written as empty strings.
    """
    if isinstance(target, (str, Path)):
        with open(target, "w", newline="", encoding="utf-8") as handle:
            _write(frame, handle)
        return
    _write(frame, target)


def write_csv_text(frame: DataFrame) -> str:
    """Render a frame as a CSV string."""
    buffer = io.StringIO()
    _write(frame, buffer)
    return buffer.getvalue()


def _write(frame: DataFrame, handle) -> None:
    writer = csv.writer(handle)
    writer.writerow(frame.column_names)
    for row in frame.iter_rows():
        writer.writerow(["" if value is None else value for value in row])
