"""``repro.zoom`` — multi-layer pan/zoom navigation (the Hopara substitute).

Viewports, level-of-detail layers, SQL-backed region fetches with an LRU
tile cache, a quadtree for 2D scatter queries, and the bar-chart drill-down
application measured in the paper's §6.2 Hopara evaluation.
"""

from repro.zoom.engine import BarChartView, DrillDownApp, RegionData, ZoomEngine
from repro.zoom.layers import AGGREGATE, POINTS, LayerSpec, LayerStack, default_layers
from repro.zoom.quadtree import QuadTree
from repro.zoom.tiles import TileCache, TileGrid
from repro.zoom.viewport import Viewport

__all__ = [
    "AGGREGATE",
    "BarChartView",
    "DrillDownApp",
    "LayerSpec",
    "LayerStack",
    "POINTS",
    "QuadTree",
    "RegionData",
    "TileCache",
    "TileGrid",
    "Viewport",
    "ZoomEngine",
    "default_layers",
]
