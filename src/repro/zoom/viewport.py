"""Viewport algebra for pan-and-zoom navigation (§4.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import NavigationError


@dataclass(frozen=True)
class Viewport:
    """An axis-aligned view window.

    ``y0``/``y1`` are optional — one-dimensional charts (histograms, bar
    charts) only navigate along x.
    """

    x0: float
    x1: float
    y0: Optional[float] = None
    y1: Optional[float] = None

    def __post_init__(self):
        if self.x1 <= self.x0:
            raise NavigationError(f"empty viewport: x1 {self.x1} <= x0 {self.x0}")
        if (self.y0 is None) != (self.y1 is None):
            raise NavigationError("y bounds must both be set or both be None")
        if self.y0 is not None and self.y1 <= self.y0:
            raise NavigationError(f"empty viewport: y1 {self.y1} <= y0 {self.y0}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> Optional[float]:
        if self.y0 is None:
            return None
        return self.y1 - self.y0

    @property
    def has_y(self) -> bool:
        return self.y0 is not None

    def contains(self, x: float, y: Optional[float] = None) -> bool:
        """Point-in-viewport test (closed on the low edge, open on high)."""
        if not (self.x0 <= x < self.x1):
            return False
        if self.has_y and y is not None:
            return self.y0 <= y < self.y1
        return True

    def intersects(self, other: "Viewport") -> bool:
        """True when the two windows overlap."""
        if self.x1 <= other.x0 or other.x1 <= self.x0:
            return False
        if self.has_y and other.has_y:
            if self.y1 <= other.y0 or other.y1 <= self.y0:
                return False
        return True

    def pan(self, dx: float, dy: float = 0.0) -> "Viewport":
        """Shift the window without changing its size."""
        return Viewport(
            self.x0 + dx, self.x1 + dx,
            None if self.y0 is None else self.y0 + dy,
            None if self.y1 is None else self.y1 + dy,
        )

    def zoom(self, factor: float, center_x: Optional[float] = None,
             center_y: Optional[float] = None) -> "Viewport":
        """Scale around a center; ``factor < 1`` zooms in."""
        if factor <= 0:
            raise NavigationError("zoom factor must be positive")
        cx = center_x if center_x is not None else (self.x0 + self.x1) / 2
        half_w = self.width * factor / 2
        y0 = y1 = None
        if self.has_y:
            cy = center_y if center_y is not None else (self.y0 + self.y1) / 2
            half_h = self.height * factor / 2
            y0, y1 = cy - half_h, cy + half_h
        return Viewport(cx - half_w, cx + half_w, y0, y1)

    def clamp_to(self, bounds: "Viewport") -> "Viewport":
        """Slide the window back inside ``bounds`` (size-preserving)."""
        x0, x1 = self.x0, self.x1
        if x0 < bounds.x0:
            x1 += bounds.x0 - x0
            x0 = bounds.x0
        if x1 > bounds.x1:
            x0 -= x1 - bounds.x1
            x1 = bounds.x1
        x0 = max(x0, bounds.x0)
        y0, y1 = self.y0, self.y1
        if self.has_y and bounds.has_y:
            if y0 < bounds.y0:
                y1 += bounds.y0 - y0
                y0 = bounds.y0
            if y1 > bounds.y1:
                y0 -= y1 - bounds.y1
                y1 = bounds.y1
            y0 = max(y0, bounds.y0)
        return Viewport(x0, x1, y0, y1)
