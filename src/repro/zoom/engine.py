"""The pan-and-zoom engine (the Hopara substitute, §4.2).

Every region fetch is a parameterized SQL range query against the B+tree
index on the navigation axis; tiles are cached so panning re-uses work.
Two interaction modes mirror the paper:

* :class:`ZoomEngine` — continuous pan/zoom over a numeric axis with
  level-of-detail layers;
* :class:`DrillDownApp` — a bar-chart hierarchy over categorical attributes
  (the §6.2 Hopara evaluation removes rows from such a bar chart).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.backends.sql_backend import SQLBackend
from repro.errors import NavigationError
from repro.zoom.layers import AGGREGATE, POINTS, LayerStack
from repro.zoom.tiles import TileCache, TileGrid
from repro.zoom.viewport import Viewport


@dataclass
class RegionData:
    """The payload rendered for one fetched region."""

    level: int
    viewport: Viewport
    kind: str                       # 'aggregate' or 'points'
    buckets: list = field(default_factory=list)   # (x0, x1, count) for aggregates
    points: list = field(default_factory=list)    # (rowid, x[, y]) for points
    row_count: int = 0
    seconds: float = 0.0
    tiles_fetched: int = 0
    tiles_cached: int = 0


class ZoomEngine:
    """Multi-layer navigation over one numeric axis of a SQL backend."""

    def __init__(self, backend: SQLBackend, x_col: str,
                 y_col: Optional[str] = None,
                 layers: Optional[LayerStack] = None,
                 cache_capacity: int = 64, base_tiles: int = 4):
        self.backend = backend
        self.x_col = x_col
        self.y_col = y_col
        self.layers = layers or LayerStack()
        backend.ensure_index(x_col)
        if y_col is not None:
            backend.ensure_index(y_col)
        stats = backend.numeric_stats(x_col)
        if stats.count == 0:
            raise NavigationError(f"column {x_col!r} has no numeric values")
        span = (stats.max - stats.min) or 1.0
        self.bounds = Viewport(stats.min, stats.max + span * 1e-9)
        self.grid = TileGrid(self.bounds.x0, self.bounds.x1, base_tiles)
        self.cache = TileCache(cache_capacity)
        self.queries_run = 0

    # -- fetching ------------------------------------------------------------

    def full_view(self) -> Viewport:
        """The viewport covering the whole axis."""
        return self.bounds

    def fetch(self, viewport: Viewport, level: int = 0) -> RegionData:
        """Fetch one region at one layer, via cached per-tile SQL queries."""
        layer = self.layers.layer(level)
        start = time.perf_counter()
        tile_indexes = self.grid.tiles_for_range(viewport.x0, viewport.x1, level)
        fetched = cached = 0
        merged_buckets: list = []
        merged_points: list = []
        total = 0
        for index in tile_indexes:
            key = (level, layer.kind, index)
            payload = self.cache.get(key)
            if payload is None:
                payload = self._fetch_tile(layer, level, index)
                self.cache.put(key, payload)
                fetched += 1
            else:
                cached += 1
            if layer.kind == AGGREGATE:
                merged_buckets.extend(payload["buckets"])
                total += payload["count"]
            else:
                merged_points.extend(payload["points"])
                total += len(payload["points"])
        if layer.kind == POINTS:
            if viewport.has_y and self.y_col is not None:
                merged_points = [
                    p for p in merged_points
                    if viewport.contains(p[1])
                    and isinstance(p[2], (int, float))
                    and viewport.y0 <= p[2] < viewport.y1
                ]
            else:
                merged_points = [
                    p for p in merged_points if viewport.contains(p[1])
                ]
            total = len(merged_points)
        seconds = time.perf_counter() - start
        return RegionData(
            level=level, viewport=viewport, kind=layer.kind,
            buckets=merged_buckets, points=merged_points,
            row_count=total, seconds=seconds,
            tiles_fetched=fetched, tiles_cached=cached,
        )

    def _fetch_tile(self, layer, level: int, index: int) -> dict:
        x0, x1 = self.grid.tile_extent(index, level)
        table = self.backend.table_name
        col = self.x_col
        self.queries_run += 1
        if layer.kind == AGGREGATE:
            width = (x1 - x0) / layer.buckets or 1.0
            result = self.backend.db.execute(
                f'SELECT CAST(("{col}" - ?) / ? AS INT) AS bucket, COUNT(*) '
                f'FROM {table} WHERE "{col}" >= ? AND "{col}" < ? '
                f'AND typeof("{col}") <> \'text\' GROUP BY bucket',
                (x0, width, x0, x1),
            )
            buckets = []
            count = 0
            for bucket, n in sorted(result.rows, key=lambda r: r[0] or 0):
                if bucket is None:
                    continue
                b0 = x0 + bucket * width
                buckets.append((b0, b0 + width, n))
                count += n
            return {"buckets": buckets, "count": count}
        columns = f'rowid, "{col}"'
        if self.y_col is not None:
            columns += f', "{self.y_col}"'
        result = self.backend.db.execute(
            f'SELECT {columns} FROM {table} '
            f'WHERE "{col}" >= ? AND "{col}" < ? AND typeof("{col}") <> \'text\'',
            (x0, x1),
        )
        return {"points": list(result.rows)}

    # -- interaction ------------------------------------------------------------

    def drill_down(self, viewport: Viewport, level: int,
                   center_x: float) -> tuple[Viewport, int, RegionData]:
        """Zoom into a clicked region: halve the window, go one layer deeper."""
        new_level = self.layers.next_level(level)
        narrowed = viewport.zoom(0.5, center_x=center_x).clamp_to(self.bounds)
        return narrowed, new_level, self.fetch(narrowed, new_level)

    def pan(self, viewport: Viewport, level: int,
            fraction: float = 0.25) -> tuple[Viewport, RegionData]:
        """Shift the window by a fraction of its width (cache-friendly)."""
        moved = viewport.pan(viewport.width * fraction).clamp_to(self.bounds)
        return moved, self.fetch(moved, level)

    def invalidate(self) -> None:
        """Drop cached tiles after the underlying data changed."""
        self.cache.invalidate()


@dataclass
class BarChartView:
    """One level of the categorical drill-down: category -> count."""

    path: tuple                     # the (column, value) choices made so far
    column: str                     # the attribute charted at this level
    bars: list = field(default_factory=list)  # (category, count)
    seconds: float = 0.0


class DrillDownApp:
    """Hierarchical bar-chart navigation over categorical attributes.

    This is the §6.2 Hopara application shape: a bar chart backed by SQL
    GROUP BY queries; clicking a bar drills into that category; wrangling
    actions (row removal) run against the database and the visible chart
    refreshes immediately.
    """

    def __init__(self, backend: SQLBackend, hierarchy: Sequence[str]):
        if not hierarchy:
            raise NavigationError("drill-down needs at least one attribute")
        self.backend = backend
        self.hierarchy = list(hierarchy)
        for column in self.hierarchy:
            backend.ensure_index(column)
        self.path: list[tuple[str, object]] = []
        self.queries_run = 0

    @property
    def depth(self) -> int:
        """How many drill-down steps have been taken."""
        return len(self.path)

    def current_view(self) -> BarChartView:
        """The bar chart at the current drill path (one SQL aggregate)."""
        start = time.perf_counter()
        column = self.hierarchy[min(self.depth, len(self.hierarchy) - 1)]
        where, params = self._path_predicate()
        result = self.backend.db.execute(
            f'SELECT "{column}", COUNT(*) FROM {self.backend.table_name}'
            f'{where} GROUP BY "{column}" ORDER BY 2 DESC',
            params,
        )
        self.queries_run += 1
        return BarChartView(
            path=tuple(self.path), column=column,
            bars=list(result.rows),
            seconds=time.perf_counter() - start,
        )

    def drill_into(self, category) -> BarChartView:
        """Click a bar: restrict to that category, one level deeper."""
        if self.depth >= len(self.hierarchy) - 1:
            raise NavigationError("already at the deepest drill level")
        column = self.hierarchy[self.depth]
        self.path.append((column, category))
        return self.current_view()

    def roll_up(self) -> BarChartView:
        """Navigate one level back up."""
        if not self.path:
            raise NavigationError("already at the top level")
        self.path.pop()
        return self.current_view()

    def visible_row_ids(self, limit: Optional[int] = None) -> list[int]:
        """Row ids inside the current drill path."""
        where, params = self._path_predicate()
        limit_sql = f" LIMIT {int(limit)}" if limit is not None else ""
        result = self.backend.db.execute(
            f"SELECT rowid FROM {self.backend.table_name}{where}{limit_sql}",
            params,
        )
        self.queries_run += 1
        return result.scalars()

    def remove_row(self, row_id: int) -> tuple[BarChartView, float]:
        """The §6.2 measured interaction: delete one row, refresh the chart.

        Returns the refreshed view and the end-to-end latency in seconds.
        """
        start = time.perf_counter()
        self.backend.delete_rows([row_id])
        view = self.current_view()
        return view, time.perf_counter() - start

    def _path_predicate(self) -> tuple[str, tuple]:
        if not self.path:
            return "", ()
        clauses = []
        params = []
        for column, value in self.path:
            if value is None:
                clauses.append(f'"{column}" IS NULL')
            else:
                clauses.append(f'"{column}" = ?')
                params.append(value)
        return " WHERE " + " AND ".join(clauses), tuple(params)
