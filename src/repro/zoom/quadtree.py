"""A point quadtree for 2D scatter data.

Backs spatial range queries over scatterplots when navigating with a
two-dimensional viewport, complementing the B+tree-per-axis path used for
SQL region fetches.
"""

from __future__ import annotations

from repro.errors import NavigationError
from repro.zoom.viewport import Viewport


class _Node:
    __slots__ = ("x0", "y0", "x1", "y1", "points", "children")

    def __init__(self, x0: float, y0: float, x1: float, y1: float):
        self.x0, self.y0, self.x1, self.y1 = x0, y0, x1, y1
        self.points: list = []      # (x, y, payload)
        self.children: list | None = None

    def contains(self, x: float, y: float) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    def intersects(self, view: Viewport) -> bool:
        return not (
            self.x1 <= view.x0 or view.x1 <= self.x0
            or self.y1 <= view.y0 or view.y1 <= self.y0
        )


class QuadTree:
    """Fixed-extent quadtree with per-node capacity and max depth."""

    def __init__(self, x0: float, y0: float, x1: float, y1: float,
                 capacity: int = 16, max_depth: int = 12):
        if x1 <= x0 or y1 <= y0:
            raise NavigationError("quadtree extent must be non-empty")
        if capacity < 1:
            raise NavigationError("capacity must be at least 1")
        self.root = _Node(x0, y0, x1, y1)
        self.capacity = capacity
        self.max_depth = max_depth
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, x: float, y: float, payload) -> bool:
        """Insert one point; returns False when outside the extent."""
        if not self.root.contains(x, y):
            return False
        node, depth = self.root, 0
        while node.children is not None:
            node = node.children[self._quadrant(node, x, y)]
            depth += 1
        node.points.append((x, y, payload))
        self._count += 1
        if len(node.points) > self.capacity and depth < self.max_depth:
            self._split(node)
        return True

    def query(self, view: Viewport) -> list:
        """All ``(x, y, payload)`` points inside ``view``."""
        if not view.has_y:
            raise NavigationError("quadtree queries need a 2D viewport")
        out: list = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.intersects(view):
                continue
            if node.children is not None:
                stack.extend(node.children)
                continue
            for x, y, payload in node.points:
                if view.contains(x, y):
                    out.append((x, y, payload))
        return out

    def count_in(self, view: Viewport) -> int:
        """Number of points inside ``view`` (no materialization of payloads)."""
        return len(self.query(view))

    def nearest(self, x: float, y: float):
        """The stored point closest to ``(x, y)`` (None when empty).

        Linear over candidate leaves via best-first pruning.
        """
        best = None
        best_d2 = float("inf")
        stack = [self.root]
        while stack:
            node = stack.pop()
            # prune: minimal possible distance from (x, y) to the node box
            dx = max(node.x0 - x, 0, x - node.x1)
            dy = max(node.y0 - y, 0, y - node.y1)
            if dx * dx + dy * dy > best_d2:
                continue
            if node.children is not None:
                stack.extend(node.children)
                continue
            for px, py, payload in node.points:
                d2 = (px - x) ** 2 + (py - y) ** 2
                if d2 < best_d2:
                    best_d2 = d2
                    best = (px, py, payload)
        return best

    def _quadrant(self, node: _Node, x: float, y: float) -> int:
        mx = (node.x0 + node.x1) / 2
        my = (node.y0 + node.y1) / 2
        return (1 if x >= mx else 0) + (2 if y >= my else 0)

    def _split(self, node: _Node) -> None:
        mx = (node.x0 + node.x1) / 2
        my = (node.y0 + node.y1) / 2
        node.children = [
            _Node(node.x0, node.y0, mx, my),
            _Node(mx, node.y0, node.x1, my),
            _Node(node.x0, my, mx, node.y1),
            _Node(mx, my, node.x1, node.y1),
        ]
        for x, y, payload in node.points:
            node.children[self._quadrant(node, x, y)].points.append((x, y, payload))
        node.points = []
