"""Tile mathematics and the LRU tile cache.

Multi-layer navigation "ensures that only the visible portion of the data
is loaded and rendered at any given time" (§4.2): the x-range is cut into
tiles per zoom level (tile width halves per level) and fetched regions are
cached, so panning re-uses neighbouring fetches.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import NavigationError


class TileGrid:
    """Maps x-coordinates to integer tile indexes per zoom level."""

    def __init__(self, x_min: float, x_max: float, base_tiles: int = 4):
        if x_max <= x_min:
            raise NavigationError("tile grid extent must be non-empty")
        self.x_min = x_min
        self.x_max = x_max
        self.base_tiles = base_tiles

    def tile_width(self, level: int) -> float:
        """Width of one tile at ``level`` (halves with each level)."""
        return (self.x_max - self.x_min) / (self.base_tiles * (2 ** level))

    def tile_of(self, x: float, level: int) -> int:
        """The tile index containing ``x``."""
        width = self.tile_width(level)
        index = int((x - self.x_min) // width)
        max_index = self.base_tiles * (2 ** level) - 1
        return min(max(index, 0), max_index)

    def tile_extent(self, index: int, level: int) -> tuple[float, float]:
        """The ``[x0, x1)`` range of one tile."""
        width = self.tile_width(level)
        x0 = self.x_min + index * width
        return (x0, x0 + width)

    def tiles_for_range(self, x0: float, x1: float, level: int) -> list[int]:
        """Tile indexes intersecting ``[x0, x1)``."""
        if x1 <= x0:
            return []
        first = self.tile_of(max(x0, self.x_min), level)
        last = self.tile_of(min(x1, self.x_max) - 1e-12, level)
        return list(range(first, last + 1))


class TileCache:
    """LRU cache keyed by ``(level, tile_index)`` with hit statistics."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise NavigationError("cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        """The cached payload, or None (counts hit/miss)."""
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key, payload) -> None:
        """Insert/update, evicting the least recently used beyond capacity."""
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop everything (called after the data changes)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
