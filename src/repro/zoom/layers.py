"""Layer specifications for multi-layer navigation (§4.2).

Each layer describes how a region is rendered at one zoom depth: coarse
layers return SQL aggregates (bucket counts), deep layers return raw points
once the region is small enough.  "The Hopara engine automatically runs SQL
queries to fetch each region" — the layer decides which query shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NavigationError

AGGREGATE = "aggregate"
POINTS = "points"


@dataclass(frozen=True)
class LayerSpec:
    """One zoom layer.

    Attributes:
        level: depth (0 = coarsest).
        kind: ``aggregate`` (bucketed counts) or ``points`` (raw rows).
        buckets: number of x-buckets when aggregating.
        max_points: when a region holds fewer rows than this, the engine may
            descend to a points layer automatically.
    """

    level: int
    kind: str = AGGREGATE
    buckets: int = 32
    max_points: int = 1000

    def __post_init__(self):
        if self.kind not in (AGGREGATE, POINTS):
            raise NavigationError(f"unknown layer kind {self.kind!r}")
        if self.buckets < 1:
            raise NavigationError("buckets must be at least 1")


class LayerStack:
    """An ordered stack of layers, coarsest first."""

    def __init__(self, layers: list[LayerSpec] | None = None):
        if layers is None:
            layers = default_layers()
        if not layers:
            raise NavigationError("a layer stack needs at least one layer")
        ordered = sorted(layers, key=lambda l: l.level)
        if [l.level for l in ordered] != list(range(len(ordered))):
            raise NavigationError("layer levels must be consecutive from 0")
        self._layers = ordered

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self):
        return iter(self._layers)

    @property
    def deepest(self) -> LayerSpec:
        return self._layers[-1]

    def layer(self, level: int) -> LayerSpec:
        """The layer at ``level`` (raises when out of range)."""
        if not 0 <= level < len(self._layers):
            raise NavigationError(
                f"no layer at level {level} (stack has {len(self._layers)})"
            )
        return self._layers[level]

    def next_level(self, level: int) -> int:
        """The level reached by one drill-down (clamped to the deepest)."""
        return min(level + 1, len(self._layers) - 1)


def default_layers(depth: int = 4, buckets: int = 32,
                   max_points: int = 1000) -> list[LayerSpec]:
    """A standard stack: aggregate layers with a raw-points layer at the end."""
    layers = [
        LayerSpec(level, AGGREGATE, buckets, max_points)
        for level in range(depth - 1)
    ]
    layers.append(LayerSpec(depth - 1, POINTS, buckets, max_points))
    return layers
