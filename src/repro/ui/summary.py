"""The anomaly summary panel (§2.2, Figure 1's "Anomaly Summary")."""

from __future__ import annotations


class SummaryPanel:
    """Formats the ranked anomaly summary for display."""

    def __init__(self, session):
        self.session = session

    def lines(self, group_limit: int = 10) -> list[str]:
        """Render the panel as text lines (error types, then worst groups)."""
        summary = self.session.anomaly_summary(group_limit=group_limit)
        out = [f"Anomaly Summary — {summary.total} anomalies"]
        for entry in summary.error_types:
            out.append(f"  {entry.label}: {entry.count}")
        if summary.groups:
            out.append("Most erroneous groups:")
            for rank in summary.groups:
                out.append(
                    f"  {rank.key.describe()}: {rank.count} "
                    f"(dominant: {rank.dominant_code})"
                )
        return out

    def render(self, group_limit: int = 10) -> str:
        """The panel as one newline-joined string."""
        return "\n".join(self.lines(group_limit))
