"""User interaction events.

"All user interactions with the charts are handled by the backend
components" (Fig 2): the frontend emits these events; the app (or the
protocol server) dispatches them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.types import GroupKey


@dataclass(frozen=True)
class SelectGroup:
    """Click a chart mark / select a group for inspection."""

    key: GroupKey


@dataclass(frozen=True)
class RequestSuggestions:
    """Open the repair-kit sidebar for the selected group."""

    key: GroupKey
    error_code: Optional[str] = None
    limit: Optional[int] = None


@dataclass(frozen=True)
class PreviewRepair:
    """Hover a suggestion: compute its live chart preview."""

    suggestion_rank: int


@dataclass(frozen=True)
class ApplyRepair:
    """Commit a suggestion from the repair kit."""

    suggestion_rank: int


@dataclass(frozen=True)
class Undo:
    """Ctrl-Z."""


@dataclass(frozen=True)
class Redo:
    """Ctrl-Shift-Z."""


@dataclass(frozen=True)
class ExportScript:
    """Download the wrangling pipeline as a script."""

    target: str = "python"


@dataclass(frozen=True)
class DrillDown:
    """Click a bar in the multi-layer navigation view."""

    category: object


@dataclass(frozen=True)
class RollUp:
    """Navigate back up one drill level."""


@dataclass(frozen=True)
class RemoveVisibleRow:
    """Delete one row from the drill-down view (the §6.2 interaction)."""

    row_id: int


Event = object
"""Any of the dataclasses above."""
