"""JSON wire protocol between the (simulated) frontend and backend.

The production system runs the charts in a browser; every interaction
becomes a message to the backend (Fig 2).  This module defines the message
schema and the encoding of domain objects, so the in-process
:class:`~repro.ui.server.BuckarooServer` exercises the same round-trip a
networked deployment would.
"""

from __future__ import annotations

import json

from repro.core.types import GroupKey
from repro.errors import BuckarooError
from repro.ui import events

REQUEST_TYPES = (
    "select_group", "request_suggestions", "preview_repair", "apply_repair",
    "undo", "redo", "export_script", "drill_down", "roll_up", "remove_row",
    "summary", "chart",
)


def encode_group_key(key: GroupKey) -> dict:
    """GroupKey -> JSON-safe dict."""
    return {
        "categorical": key.categorical,
        "category": key.category,
        "numerical": key.numerical,
    }


def decode_group_key(payload: dict) -> GroupKey:
    """Inverse of :func:`encode_group_key`."""
    try:
        return GroupKey(
            payload["categorical"], payload["category"], payload["numerical"]
        )
    except (KeyError, TypeError) as exc:
        raise BuckarooError(f"malformed group key payload: {exc}") from exc


def decode_request(text: str):
    """Parse a JSON request into a UI event (or a query descriptor).

    Returns ``(kind, event_or_payload)`` where query-style requests
    (``summary``, ``chart``) pass their payload through.
    """
    try:
        message = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BuckarooError(f"request is not valid JSON: {exc}") from exc
    kind = message.get("type")
    if kind not in REQUEST_TYPES:
        raise BuckarooError(
            f"unknown request type {kind!r}; expected one of {REQUEST_TYPES}"
        )
    if kind == "select_group":
        return kind, events.SelectGroup(decode_group_key(message["key"]))
    if kind == "request_suggestions":
        return kind, events.RequestSuggestions(
            decode_group_key(message["key"]),
            message.get("error_code"),
            message.get("limit"),
        )
    if kind == "preview_repair":
        return kind, events.PreviewRepair(int(message["rank"]))
    if kind == "apply_repair":
        return kind, events.ApplyRepair(int(message["rank"]))
    if kind == "undo":
        return kind, events.Undo()
    if kind == "redo":
        return kind, events.Redo()
    if kind == "export_script":
        return kind, events.ExportScript(message.get("target", "python"))
    if kind == "drill_down":
        return kind, events.DrillDown(message["category"])
    if kind == "roll_up":
        return kind, events.RollUp()
    if kind == "remove_row":
        return kind, events.RemoveVisibleRow(int(message["row_id"]))
    return kind, message  # summary / chart queries


def encode_response(kind: str, payload, ok: bool = True) -> str:
    """Build the JSON response for a handled request."""
    return json.dumps({"type": kind, "ok": ok, "payload": payload}, default=str)


def encode_error(kind: str, error: Exception) -> str:
    """Build the JSON error response."""
    return json.dumps({
        "type": kind, "ok": False,
        "error": {"kind": type(error).__name__, "message": str(error)},
    })
