"""Standalone HTML session reports (the notebook deployment path).

Renders one self-contained HTML document from a session: dataset shape,
the ranked anomaly summary with the paper's colour coding, embedded SVG
charts for the most anomalous pairs, the applied wrangling history, and the
exported Python pipeline.  No external assets, so the file drops straight
into a notebook cell (``IPython.display.HTML``) or an email.
"""

from __future__ import annotations

from html import escape

from repro.charts.heatmap import HeatmapChart
from repro.charts.render_svg import render_svg
from repro.core.session import BuckarooSession

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 1.6rem; }
table { border-collapse: collapse; margin: .5rem 0; }
td, th { border: 1px solid #ddd; padding: .25rem .6rem; font-size: .85rem; }
th { background: #f5f5f5; text-align: left; }
.swatch { display: inline-block; width: .8em; height: .8em;
          border-radius: 2px; margin-right: .4em; vertical-align: middle; }
pre { background: #f8f8f8; border: 1px solid #eee; padding: .8rem;
      font-size: .75rem; overflow-x: auto; }
.charts { display: flex; flex-wrap: wrap; gap: 1rem; }
"""


def html_report(session: BuckarooSession, title: str = "Buckaroo session report",
                max_charts: int = 4, group_limit: int = 10) -> str:
    """Render the session as one self-contained HTML document."""
    summary = session.anomaly_summary(group_limit=group_limit)
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        f"<p>{session.backend.row_count()} rows &times; "
        f"{len(session.backend.column_names())} columns on the "
        f"<b>{escape(session.backend.kind)}</b> backend &mdash; "
        f"{summary.total} anomalies across "
        f"{len(session.groups())} groups.</p>",
    ]

    parts.append("<h2>Anomaly summary</h2><table>")
    parts.append("<tr><th>Error type</th><th>Count</th><th>Weighted</th></tr>")
    for entry in summary.error_types:
        parts.append(
            f"<tr><td><span class='swatch' style='background:{entry.color}'>"
            f"</span>{escape(entry.label)}</td>"
            f"<td>{entry.count}</td><td>{entry.weighted:.1f}</td></tr>"
        )
    parts.append("</table>")

    if summary.groups:
        parts.append("<h2>Most anomalous groups</h2><table>")
        parts.append("<tr><th>Group</th><th>Anomalies</th><th>Dominant</th></tr>")
        for rank in summary.groups:
            parts.append(
                f"<tr><td><code>{escape(rank.key.describe())}</code></td>"
                f"<td>{rank.count}</td><td>{escape(rank.dominant_code)}</td></tr>"
            )
        parts.append("</table>")

    parts.append("<h2>Charts</h2><div class='charts'>")
    worst_pairs = list(dict.fromkeys(
        rank.key.pair for rank in summary.groups
    )) or session.pairs()
    for cat, num in worst_pairs[:max_charts]:
        chart = HeatmapChart(session=session, categorical=cat, numerical=num)
        parts.append(f"<div>{render_svg(chart)}</div>")
    parts.append("</div>")

    records = session.history.records()
    parts.append("<h2>Applied wrangling operations</h2>")
    if records:
        parts.append("<ol>")
        for record in records:
            parts.append(f"<li>{escape(record.plan.description)}</li>")
        parts.append("</ol>")
        parts.append("<h2>Exported pipeline</h2>")
        parts.append(f"<pre>{escape(session.export_script('python'))}</pre>")
    else:
        parts.append("<p>(none yet)</p>")

    parts.append("</body></html>")
    return "\n".join(parts)
