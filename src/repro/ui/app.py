"""The headless Buckaroo application.

Wires a session, the chart matrix, the selection model, the repair kit, the
summary panel, and (optionally) a drill-down navigator into a single
event-driven facade — the full Figure 2 architecture minus pixels.
Every user story in the paper (Figure 1's narrative, Figure 3's
select/preview/apply loop, §6.2's drill-down removal) is a sequence of
:mod:`repro.ui.events` handled here.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.charts.matrix import ChartMatrix
from repro.charts.selection import SelectionModel
from repro.core.session import BuckarooSession
from repro.errors import BuckarooError
from repro.ui import events
from repro.ui.repair_kit import RepairKit
from repro.ui.summary import SummaryPanel
from repro.zoom.engine import DrillDownApp


class BuckarooApp:
    """Event-driven headless UI over one session."""

    def __init__(self, session: BuckarooSession,
                 drilldown_hierarchy: Optional[Sequence[str]] = None):
        self.session = session
        if not session.group_manager.groups:
            session.generate_groups()
            session.detect()
        self.matrix = ChartMatrix(session)
        self.selection = SelectionModel()
        self.repair_kit = RepairKit(session)
        self.summary = SummaryPanel(session)
        self.drilldown: Optional[DrillDownApp] = None
        if drilldown_hierarchy is not None:
            if session.backend.kind != "sql":
                raise BuckarooError(
                    "drill-down navigation requires the SQL backend"
                )
            self.drilldown = DrillDownApp(session.backend, drilldown_hierarchy)
        self.event_log: list = []

    # -- event dispatch ------------------------------------------------------

    def handle(self, event) -> object:
        """Dispatch one UI event; returns the handler's payload."""
        self.event_log.append(event)
        if isinstance(event, events.SelectGroup):
            self.selection.select_group(event.key)
            return event.key
        if isinstance(event, events.RequestSuggestions):
            self.selection.select_group(event.key)
            return self.repair_kit.open_for(event.key, event.error_code, event.limit)
        if isinstance(event, events.PreviewRepair):
            suggestion = self.repair_kit.suggestion(event.suggestion_rank)
            return self.session.preview(suggestion)
        if isinstance(event, events.ApplyRepair):
            suggestion = self.repair_kit.suggestion(event.suggestion_rank)
            result = self.session.apply(suggestion)
            self.repair_kit.close()
            self.selection.clear()
            return result
        if isinstance(event, events.Undo):
            return self.session.undo()
        if isinstance(event, events.Redo):
            return self.session.redo()
        if isinstance(event, events.ExportScript):
            return self.session.export_script(event.target)
        if isinstance(event, events.DrillDown):
            return self._drilldown().drill_into(event.category)
        if isinstance(event, events.RollUp):
            return self._drilldown().roll_up()
        if isinstance(event, events.RemoveVisibleRow):
            view, seconds = self._drilldown().remove_row(event.row_id)
            # keep the session's groups/index consistent with the deletion
            self.session.engine.index.drop_rows([event.row_id])
            return view, seconds
        raise BuckarooError(f"unknown event {type(event).__name__}")

    def _drilldown(self) -> DrillDownApp:
        if self.drilldown is None:
            raise BuckarooError("no drill-down hierarchy was configured")
        return self.drilldown

    # -- convenience views -----------------------------------------------------

    def summary_text(self, group_limit: int = 10) -> str:
        """The anomaly-summary panel as text."""
        return self.summary.render(group_limit)

    def chart_text(self, cat: str, num: str) -> str:
        """One matrix chart rendered as ASCII."""
        from repro.charts.render_text import render_text

        return render_text(self.matrix.chart(cat, num))
