"""The repair-kit sidebar (§2.2).

"The UI ... offers a repair kit sidebar to surface appropriate wrangling
options for selected groups."  The kit holds the ranked suggestions for the
current selection and resolves rank numbers back to plans when the user
applies one.
"""

from __future__ import annotations

from typing import Optional

from repro.core.types import GroupKey, RepairSuggestion
from repro.errors import BuckarooError


class RepairKit:
    """Ranked suggestions for the currently selected group."""

    def __init__(self, session):
        self.session = session
        self.key: Optional[GroupKey] = None
        self.suggestions: list[RepairSuggestion] = []

    @property
    def is_open(self) -> bool:
        return self.key is not None

    def open_for(self, key: GroupKey, error_code: Optional[str] = None,
                 limit: Optional[int] = None) -> list[RepairSuggestion]:
        """Populate the sidebar for a selection."""
        self.key = key
        self.suggestions = self.session.suggest(key, error_code, limit)
        return self.suggestions

    def suggestion(self, rank: int) -> RepairSuggestion:
        """Resolve a 1-based rank to its suggestion."""
        for suggestion in self.suggestions:
            if suggestion.rank == rank:
                return suggestion
        raise BuckarooError(
            f"no suggestion with rank {rank} "
            f"(kit has {len(self.suggestions)})"
        )

    def close(self) -> None:
        """Clear the sidebar."""
        self.key = None
        self.suggestions = []

    def describe(self) -> list[str]:
        """One display line per suggestion."""
        return [
            f"{s.rank}. {s.label} [score {s.score:+.1f}, "
            f"resolves {s.resolved}, side effects {s.introduced}]"
            for s in self.suggestions
        ]
