"""``repro.ui`` — the headless interactive frontend (§2.2, Fig 2 ①).

Events, the repair-kit sidebar, the anomaly-summary panel, the
:class:`BuckarooApp` facade, and a JSON protocol server simulating the
deployed frontend/backend split.
"""

from repro.ui import events
from repro.ui.app import BuckarooApp
from repro.ui.repair_kit import RepairKit
from repro.ui.report import html_report
from repro.ui.server import BuckarooServer
from repro.ui.summary import SummaryPanel

__all__ = [
    "BuckarooApp",
    "BuckarooServer",
    "RepairKit",
    "SummaryPanel",
    "events",
    "html_report",
]
