"""In-process protocol server: JSON in, JSON out.

Simulates the deployed client/server split without sockets: a frontend
sends :mod:`repro.ui.protocol` request strings; the server dispatches them
through a :class:`~repro.ui.app.BuckarooApp` and serializes the outcome.
"""

from __future__ import annotations

from repro.core.types import ApplyResult, RepairSuggestion
from repro.errors import ReproError
from repro.ui import protocol
from repro.ui.app import BuckarooApp


class BuckarooServer:
    """Stateful request handler over one app instance."""

    def __init__(self, app: BuckarooApp):
        self.app = app
        self.requests_served = 0

    def handle_request(self, text: str) -> str:
        """Process one JSON request; always returns a JSON response."""
        kind = "unknown"
        try:
            kind, event = protocol.decode_request(text)
            if kind == "summary":
                payload = self.app.summary.lines(
                    group_limit=int(event.get("limit", 10))
                )
            elif kind == "chart":
                payload = self.app.chart_text(event["cat"], event["num"])
            else:
                payload = self._serialize(self.app.handle(event))
            self.requests_served += 1
            return protocol.encode_response(kind, payload)
        except ReproError as exc:
            return protocol.encode_error(kind, exc)

    def _serialize(self, outcome):
        if isinstance(outcome, ApplyResult):
            return {
                "seq": outcome.seq,
                "rows_affected": outcome.rows_affected,
                "resolved": outcome.resolved,
                "introduced": outcome.introduced,
                "affected_groups": [
                    protocol.encode_group_key(key)
                    for key in outcome.affected_groups
                ],
                "backend_seconds": outcome.backend_seconds,
                "replot_seconds": outcome.replot_seconds,
            }
        if isinstance(outcome, list) and outcome and isinstance(outcome[0], RepairSuggestion):
            return [
                {
                    "rank": s.rank,
                    "label": s.label,
                    "score": s.score,
                    "resolved": s.resolved,
                    "introduced": s.introduced,
                    "wrangler": s.plan.wrangler_code,
                }
                for s in outcome
            ]
        if hasattr(outcome, "describe"):
            return outcome.describe()
        if isinstance(outcome, tuple) and len(outcome) == 2 and hasattr(outcome[0], "bars"):
            view, seconds = outcome
            return {
                "bars": [[str(c), n] for c, n in view.bars],
                "seconds": seconds,
            }
        if hasattr(outcome, "bars"):
            return {"bars": [[str(c), n] for c, n in outcome.bars]}
        return outcome if isinstance(outcome, (str, int, float, dict, list)) else str(outcome)
