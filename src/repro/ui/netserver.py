"""Buckaroo's protocol server over the real socket transport.

:class:`~repro.ui.server.BuckarooServer` simulates the deployed
client/server split in-process: JSON request strings in, JSON response
strings out.  This module deploys that split for real, carrying those
same strings over :mod:`repro.minidb.net`'s length-prefixed frame
protocol — same handshake, auth, admission control and graceful drain as
the SQL server, because both are :class:`~repro.minidb.net.server.
FrameServer` subclasses.

The app is shared by every connection (it is the single source of truth
for the dataset) and is not thread-safe, so dispatch serializes requests
under one lock; UI requests are short, so contention is the occasional
wait, not a throughput cliff.

Server::

    from repro.ui.netserver import BuckarooNetServer

    with BuckarooNetServer(BuckarooServer(app), port=7792) as srv:
        ...

Client::

    from repro.ui import netserver
    with netserver.connect("127.0.0.1", 7792) as ui:
        response = ui.request(protocol.encode_request("summary"))
"""

from __future__ import annotations

import threading

from repro.errors import ProtocolError
from repro.minidb.net import client as net_client
from repro.minidb.net.server import FrameServer


class BuckarooNetServer(FrameServer):
    """One :class:`BuckarooServer` behind the frame protocol.

    Speaks a single op, ``ui``, whose ``request`` field is exactly the
    JSON string :meth:`BuckarooServer.handle_request` takes; the reply's
    ``response`` field is exactly the string it returns.  Protocol-level
    errors (malformed ops) come back as error frames; application-level
    errors stay inside the response string, as in-process.
    """

    server_name = "buckaroo"

    def __init__(self, server, **kwargs):
        super().__init__(**kwargs)
        self.server = server
        self._app_lock = threading.Lock()

    def dispatch(self, client, frame: dict) -> dict:
        if frame.get("op") != "ui":
            raise ProtocolError(
                f"unknown op {frame.get('op')!r} (this server speaks 'ui')")
        request = frame.get("request")
        if not isinstance(request, str):
            raise ProtocolError("op 'ui' requires a 'request' string")
        with self._app_lock:  # the app is shared and not thread-safe
            response = self.server.handle_request(request)
        return {"response": response}


class BuckarooNetClient:
    """Blocking UI client: one request string out, one response back."""

    def __init__(self, connection: net_client.NetworkConnection):
        self._connection = connection

    def request(self, text: str) -> str:
        """Send one :mod:`repro.ui.protocol` request string; returns the
        server's JSON response string."""
        return self._connection._exchange(
            {"op": "ui", "request": text})["response"]

    @property
    def closed(self) -> bool:
        return self._connection.closed

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "BuckarooNetClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def connect(host: str, port: int, user: str | None = None,
            password: str | None = None,
            timeout: float | None = None) -> BuckarooNetClient:
    """Open and authenticate one UI connection (same handshake as the
    SQL client — the hello frame is transport-level, not op-level)."""
    return BuckarooNetClient(
        net_client.connect(host, port, user, password, timeout=timeout))
