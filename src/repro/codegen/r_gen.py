"""R script emission — the paper's stated next target language.

"Currently, Buckaroo only generates Python scripts, but we intend to
support other target languages such as R" (§2).  This emitter implements
that future-work item with dplyr-style pipelines.  Output is a string; R is
not executed by the test suite.
"""

from __future__ import annotations

from repro.core.history import ActionRecord
from repro.core.types import ERROR_MISSING, ERROR_OUTLIER, ERROR_TYPE_MISMATCH

HEADER = """# Wrangling pipeline exported from a Buckaroo session (R flavour).
library(dplyr)

wrangle <- function(df) {
"""


def generate_r(records: list[ActionRecord]) -> str:
    """Render the action log as an R script (string only)."""
    lines = [HEADER]
    if not records:
        lines.append("  # (no wrangling operations were applied)\n")
    for record in records:
        lines.append(f"  # step {record.seq}: {record.plan.description}\n")
        for statement in _statements(record):
            lines.append(f"  {statement}\n")
    lines.append("  df\n}\n")
    return "".join(lines)


def _r_value(value) -> str:
    if value is None:
        return "NA"
    if isinstance(value, str):
        escaped = value.replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)


def _group_expr(record: ActionRecord) -> str:
    key = record.plan.group_key
    if key is None:
        return "TRUE"
    if key.category is None:
        return f"is.na({key.categorical})"
    return f"{key.categorical} == {_r_value(key.category)}"


def _condition_expr(record: ActionRecord, column: str) -> str:
    code = record.plan.error_code
    params = record.plan.params
    numeric = f"suppressWarnings(as.numeric({column}))"
    if code == ERROR_MISSING:
        return f"is.na({column})"
    if code == ERROR_TYPE_MISMATCH:
        return f"(is.na({numeric}) & !is.na({column}))"
    if code == ERROR_OUTLIER and "low" in params:
        return (
            f"({numeric} < {_r_value(params['low'])} | "
            f"{numeric} > {_r_value(params['high'])})"
        )
    return "TRUE"


def _statements(record: ActionRecord) -> list[str]:
    plan = record.plan
    params = plan.params
    code = plan.wrangler_code
    column = plan.group_key.numerical if plan.group_key else "NULL"
    group = _group_expr(record)

    if code == "delete_rows":
        condition = _condition_expr(record, column)
        return [f"df <- df %>% filter(!(({group}) & ({condition})))"]
    if code in ("impute_mean", "impute_median", "impute_mode", "impute_constant"):
        condition = _condition_expr(record, column)
        if code == "impute_constant":
            fill = _r_value(params.get("fill"))
        else:
            fn = {"mean": "mean", "median": "median", "mode": "mode"}[
                params.get("statistic", "mean")
            ]
            if fn == "mode":
                fill = (
                    f"as.numeric(names(sort(table({column}), decreasing=TRUE))[1])"
                )
            else:
                fill = f"{fn}(suppressWarnings(as.numeric({column})), na.rm=TRUE)"
        return [
            f"df <- df %>% mutate({column} = ifelse(({group}) & ({condition}), "
            f"{fill}, {column}))"
        ]
    if code == "convert_type":
        return [
            f"df <- df %>% mutate({column} = ifelse({group}, "
            f"suppressWarnings(as.numeric(gsub('[$,]', '', "
            f"gsub('[kK]$', 'e3', {column})))), {column}))"
        ]
    if code == "clip_outliers":
        return [
            f"df <- df %>% mutate({column} = ifelse({group}, "
            f"pmin(pmax(suppressWarnings(as.numeric({column})), "
            f"{_r_value(params['low'])}), {_r_value(params['high'])}), {column}))"
        ]
    if code == "merge_small_group":
        key = plan.group_key
        return [
            f"df <- df %>% mutate({key.categorical} = ifelse("
            f"{key.categorical} == {_r_value(key.category)}, "
            f"{_r_value(params.get('target_category', 'Other'))}, "
            f"{key.categorical}))"
        ]
    return [f"# custom wrangler {code}: replay not supported in R flavour"]
