"""Pandas-flavoured script emission.

The paper's prototype exports Python for the pandas ecosystem; this emitter
renders the same pipeline in idiomatic pandas.  The output is a plain string
(pandas is not a dependency of this reproduction, so it is not executed by
the test suite — the executable target is :mod:`repro.codegen.python_gen`).
"""

from __future__ import annotations

from repro.core.history import ActionRecord
from repro.core.types import (
    ERROR_MISSING,
    ERROR_OUTLIER,
    ERROR_TYPE_MISMATCH,
)

HEADER = '''"""Wrangling pipeline exported from a Buckaroo session (pandas flavour)."""

import pandas as pd


def wrangle(df: "pd.DataFrame") -> "pd.DataFrame":
'''


def generate_pandas(records: list[ActionRecord]) -> str:
    """Render the action log as pandas code (string only)."""
    lines = [HEADER]
    if not records:
        lines.append("    # (no wrangling operations were applied)\n")
    for record in records:
        lines.append(f"    # step {record.seq}: {record.plan.description}\n")
        for statement in _statements(record):
            lines.append(f"    {statement}\n")
    lines.append("    return df\n")
    return "".join(lines)


def _group_expr(record: ActionRecord) -> str:
    key = record.plan.group_key
    if key is None:
        return "pd.Series(True, index=df.index)"
    if key.category is None:
        return f"df[{key.categorical!r}].isna()"
    return f"(df[{key.categorical!r}] == {key.category!r})"


def _condition_expr(record: ActionRecord, column: str) -> str:
    code = record.plan.error_code
    params = record.plan.params
    numeric = f"pd.to_numeric(df[{column!r}], errors='coerce')"
    if code == ERROR_MISSING:
        return f"df[{column!r}].isna()"
    if code == ERROR_TYPE_MISMATCH:
        return f"({numeric}.isna() & df[{column!r}].notna())"
    if code == ERROR_OUTLIER and "low" in params:
        return (
            f"(({numeric} < {params['low']!r}) | ({numeric} > {params['high']!r}))"
        )
    return "pd.Series(True, index=df.index)"


def _statements(record: ActionRecord) -> list[str]:
    plan = record.plan
    params = plan.params
    code = plan.wrangler_code
    column = plan.group_key.numerical if plan.group_key else None
    group = _group_expr(record)

    if code == "delete_rows":
        condition = _condition_expr(record, column)
        return [f"df = df[~({group} & {condition})]"]
    if code in ("impute_mean", "impute_median", "impute_mode"):
        statistic = params.get("statistic", "mean")
        condition = _condition_expr(record, column)
        fn = {"mean": "mean", "median": "median", "mode": "mode"}[statistic]
        source = (
            f"df.loc[{group}, {column!r}]" if params.get("scope") == "group"
            else f"df[{column!r}]"
        )
        fill = f"pd.to_numeric({source}, errors='coerce').{fn}()"
        if statistic == "mode":
            fill += ".iloc[0]"
        return [f"df.loc[{group} & {condition}, {column!r}] = {fill}"]
    if code == "impute_constant":
        condition = _condition_expr(record, column)
        return [
            f"df.loc[{group} & {condition}, {column!r}] = {params.get('fill')!r}"
        ]
    if code == "convert_type":
        return [
            f"converted = pd.to_numeric(df.loc[{group}, {column!r}]"
            f".astype(str).str.replace(',', '').str.replace("
            f"r'[kK]$', 'e3', regex=True), errors='coerce')",
            f"df.loc[{group}, {column!r}] = converted",
        ]
    if code == "clip_outliers":
        return [
            f"df.loc[{group}, {column!r}] = pd.to_numeric("
            f"df.loc[{group}, {column!r}], errors='coerce')"
            f".clip({params['low']!r}, {params['high']!r})"
        ]
    if code == "merge_small_group":
        key = plan.group_key
        return [
            f"df.loc[df[{key.categorical!r}] == {key.category!r}, "
            f"{key.categorical!r}] = {params.get('target_category', 'Other')!r}"
        ]
    return [f"# custom wrangler {code!r}: replay not supported in pandas flavour"]
