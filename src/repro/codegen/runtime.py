"""Runtime support for generated wrangling scripts.

Exported scripts (§2.2 'Script generation') are standalone: they import this
module and re-derive their target rows *by condition*, not by hard-coded row
ids, so they remain valid when re-run against fresh exports of the data.

Each function takes and returns a :class:`repro.frame.DataFrame`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.frame import DataFrame
from repro.frame.parsing import coerce_to_number


def _group_mask(frame: DataFrame, where: Optional[dict]) -> np.ndarray:
    """Boolean mask for rows matching the group filter ``{cat: value}``."""
    mask = np.ones(frame.n_rows, dtype=bool)
    if not where:
        return mask
    for column, expected in where.items():
        col = frame[column]
        if expected is None:
            mask &= col.missing_mask
        else:
            local = np.zeros(frame.n_rows, dtype=bool)
            for i, value in enumerate(col):
                if value == expected:
                    local[i] = True
            mask &= local
    return mask


def _condition_mask(frame: DataFrame, column: str, condition: str,
                    low: Optional[float] = None,
                    high: Optional[float] = None) -> np.ndarray:
    """Mask for the anomaly condition within ``column``."""
    col = frame[column]
    if condition == "missing":
        return col.missing_mask
    values, ok, mismatch = col.to_numeric()
    if condition == "type_mismatch":
        return mismatch
    if condition == "outlier":
        if low is None or high is None:
            raise ValueError("outlier condition requires low/high bounds")
        with np.errstate(invalid="ignore"):
            return ok & ((values < low) | (values > high))
    if condition == "all":
        return np.ones(frame.n_rows, dtype=bool)
    raise ValueError(f"unknown condition {condition!r}")


def delete_rows(frame: DataFrame, column: str, condition: str,
                where: Optional[dict] = None, low: Optional[float] = None,
                high: Optional[float] = None) -> DataFrame:
    """Delete rows matching ``condition`` on ``column`` within the group."""
    doomed = _group_mask(frame, where) & _condition_mask(
        frame, column, condition, low, high
    )
    return frame.filter(~doomed)


def impute(frame: DataFrame, column: str, condition: str,
           where: Optional[dict] = None, strategy: str = "mean",
           scope: str = "group", fill=None, low: Optional[float] = None,
           high: Optional[float] = None) -> DataFrame:
    """Replace matching cells using a statistic or constant."""
    group = _group_mask(frame, where)
    target = group & _condition_mask(frame, column, condition, low, high)
    positions = np.flatnonzero(target)
    if not len(positions):
        return frame
    if strategy == "constant":
        value = fill
    else:
        values, ok, _ = frame[column].to_numeric()
        source = ok & ~target & (group if scope == "group" else True)
        usable = values[source]
        if not len(usable):
            source = ok & ~target
            usable = values[source]
        if not len(usable):
            raise ValueError(f"no numeric values to impute {column!r} from")
        if strategy == "mean":
            value = float(np.mean(usable))
        elif strategy == "median":
            value = float(np.median(usable))
        elif strategy == "mode":
            uniques, counts = np.unique(usable, return_counts=True)
            value = float(uniques[np.argmax(counts)])
        else:
            raise ValueError(f"unknown imputation strategy {strategy!r}")
        value = round(value, 6)
    return frame.set_values(column, positions, value)


def convert_types(frame: DataFrame, column: str,
                  where: Optional[dict] = None,
                  on_fail: str = "null") -> DataFrame:
    """Leniently parse text values in a numeric column ('12k' -> 12000)."""
    group = _group_mask(frame, where)
    _, _, mismatch = frame[column].to_numeric()
    target = group & mismatch
    positions = []
    new_values = []
    delete_positions = []
    col = frame[column]
    for position in np.flatnonzero(target):
        number = coerce_to_number(col[position])
        if number is not None:
            positions.append(int(position))
            new_values.append(number)
        elif on_fail == "null":
            positions.append(int(position))
            new_values.append(None)
        elif on_fail == "delete":
            delete_positions.append(int(position))
    out = frame
    if positions:
        out = out.set_values(column, positions, new_values)
    if delete_positions:
        out = out.drop_rows(delete_positions)
    return out


def clip_outliers(frame: DataFrame, column: str, low: float, high: float,
                  where: Optional[dict] = None) -> DataFrame:
    """Clip numeric values in the group to ``[low, high]``."""
    group = _group_mask(frame, where)
    values, ok, _ = frame[column].to_numeric()
    with np.errstate(invalid="ignore"):
        target = group & ok & ((values < low) | (values > high))
    positions = np.flatnonzero(target)
    if not len(positions):
        return frame
    clipped = [float(min(max(values[p], low), high)) for p in positions]
    return frame.set_values(column, positions, clipped)


def relabel_category(frame: DataFrame, column: str, category,
                     target_category: str = "Other") -> DataFrame:
    """Merge one categorical value into a catch-all label."""
    mask = _group_mask(frame, {column: category})
    positions = np.flatnonzero(mask)
    if not len(positions):
        return frame
    return frame.set_values(column, positions, target_category)


def set_cells(frame: DataFrame, column: str, where: Optional[dict],
              value) -> DataFrame:
    """Write ``value`` into ``column`` for every row in the group."""
    positions = np.flatnonzero(_group_mask(frame, where))
    if not len(positions):
        return frame
    return frame.set_values(column, positions, value)
