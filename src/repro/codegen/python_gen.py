"""Python script generation (§2.2 'Script generation').

"After users reach a satisfactory data state, Buckaroo compiles the full
sequence of wrangling actions into a Python script.  This script preserves
provenance, supports reproducibility, and allows users to integrate their
visually authored cleaning pipeline into downstream analytical workflows."

Generated scripts are *executable*: they call :mod:`repro.codegen.runtime`
and re-derive target rows by condition (group filter + anomaly predicate),
so they work on fresh exports of the data, not just the session's rowids.
"""

from __future__ import annotations

from repro.core.history import ActionRecord
from repro.core.types import (
    ERROR_MISSING,
    ERROR_OUTLIER,
    ERROR_SMALL_GROUP,
    ERROR_TYPE_MISMATCH,
)
from repro.errors import CodegenError

_CONDITIONS = {
    ERROR_MISSING: "missing",
    ERROR_TYPE_MISMATCH: "type_mismatch",
    ERROR_OUTLIER: "outlier",
    ERROR_SMALL_GROUP: "all",
}

HEADER = '''"""Wrangling pipeline exported from a Buckaroo session.

Re-run with:  python this_script.py <input.csv> <output.csv>
"""

from repro.codegen import runtime
from repro.frame import read_csv, write_csv


def wrangle(df):
    """Apply the recorded wrangling operations in order."""
'''

FOOTER = '''    return df


if __name__ == "__main__":
    import sys

    if len(sys.argv) != 3:
        raise SystemExit("usage: python script.py <input.csv> <output.csv>")
    frame = read_csv(sys.argv[1])
    frame = wrangle(frame)
    write_csv(frame, sys.argv[2])
'''


def generate_python(records: list[ActionRecord]) -> str:
    """Render the action log as a standalone Python script."""
    lines = [HEADER]
    if not records:
        lines.append("    # (no wrangling operations were applied)\n")
    for record in records:
        lines.append(f"    # step {record.seq}: {record.plan.description}\n")
        lines.append("    " + _statement(record) + "\n")
    lines.append(FOOTER)
    return "".join(lines)


def _where_of(record: ActionRecord) -> dict | None:
    key = record.plan.group_key
    if key is None:
        return None
    return {key.categorical: key.category}


def _condition_of(record: ActionRecord) -> str:
    code = record.plan.error_code
    if code is None:
        return "all"
    return _CONDITIONS.get(code, "all")


def _statement(record: ActionRecord) -> str:
    plan = record.plan
    params = plan.params
    where = _where_of(record)
    code = plan.wrangler_code

    if code == "delete_rows":
        args = [
            f"column={plan.group_key.numerical!r}" if plan.group_key else "column=None",
            f"condition={_condition_of(record)!r}",
            f"where={where!r}",
        ]
        if "low" in params:
            args.append(f"low={params['low']!r}, high={params['high']!r}")
        return f"df = runtime.delete_rows(df, {', '.join(args)})"

    if code in ("impute_mean", "impute_median", "impute_mode", "impute_constant"):
        strategy = params.get("statistic", "constant")
        args = [
            f"column={plan.group_key.numerical!r}",
            f"condition={_condition_of(record)!r}",
            f"where={where!r}",
            f"strategy={strategy!r}",
        ]
        if strategy == "constant":
            args.append(f"fill={params.get('fill')!r}")
        else:
            args.append(f"scope={params.get('scope', 'group')!r}")
        if "low" in params:
            args.append(f"low={params['low']!r}, high={params['high']!r}")
        return f"df = runtime.impute(df, {', '.join(args)})"

    if code == "convert_type":
        return (
            f"df = runtime.convert_types(df, column={plan.group_key.numerical!r}, "
            f"where={where!r}, on_fail={params.get('on_fail', 'null')!r})"
        )

    if code == "clip_outliers":
        return (
            f"df = runtime.clip_outliers(df, column={plan.group_key.numerical!r}, "
            f"low={params['low']!r}, high={params['high']!r}, where={where!r})"
        )

    if code == "merge_small_group":
        return (
            f"df = runtime.relabel_category(df, column={plan.group_key.categorical!r}, "
            f"category={plan.group_key.category!r}, "
            f"target_category={params.get('target_category', 'Other')!r})"
        )

    # custom wranglers cannot be regenerated mechanically; emit a stub that
    # reproduces the recorded effect as literal cell writes
    return _literal_replay(record)


def _literal_replay(record: ActionRecord) -> str:
    """Fallback: replay the recorded delta as explicit group-scoped writes."""
    plan = record.plan
    where = _where_of(record)
    statements = []
    for op in plan.ops:
        if op.kind == "delete_rows":
            statements.append(
                f"df = runtime.delete_rows(df, column="
                f"{(plan.group_key.numerical if plan.group_key else None)!r}, "
                f"condition='all', where={where!r})"
            )
        else:
            value = op.value if op.values is None else list(op.values)
            statements.append(
                f"df = runtime.set_cells(df, column={op.column!r}, "
                f"where={where!r}, value={value!r})"
            )
    if not statements:
        raise CodegenError(
            f"cannot generate code for custom wrangler {plan.wrangler_code!r}"
        )
    return "\n    ".join(statements)
