"""``repro.codegen`` — wrangling script generation (§2.2).

Targets: ``python`` (executable against :mod:`repro.codegen.runtime`),
``pandas`` (idiomatic pandas, string only), and ``r`` (dplyr pipeline — the
paper's stated future-work target).
"""

from __future__ import annotations

from repro.codegen import runtime
from repro.codegen.pandas_gen import generate_pandas
from repro.codegen.python_gen import generate_python
from repro.codegen.r_gen import generate_r
from repro.errors import CodegenError

TARGETS = ("python", "pandas", "r")


def generate_script(records, target: str = "python") -> str:
    """Compile an action log into a script for ``target``."""
    if target == "python":
        return generate_python(records)
    if target == "pandas":
        return generate_pandas(records)
    if target == "r":
        return generate_r(records)
    raise CodegenError(
        f"unknown codegen target {target!r}; expected one of {TARGETS}"
    )


__all__ = [
    "CodegenError",
    "TARGETS",
    "generate_pandas",
    "generate_python",
    "generate_r",
    "generate_script",
    "runtime",
]
