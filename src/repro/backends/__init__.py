"""``repro.backends`` — the two storage backends Table 1 compares.

:class:`SQLBackend` runs detectors as SQL with indexed, localized access
(the Postgres path); :class:`FrameBackend` recomputes over whole columns
(the Pandas path).  Both implement the same :class:`Backend` protocol, so a
:class:`~repro.core.session.BuckarooSession` is backend-agnostic.
"""

from repro.backends.base import Backend
from repro.backends.frame_backend import FrameBackend
from repro.backends.sql_backend import SQLBackend


def make_backend(frame, kind: str = "sql") -> Backend:
    """Build a backend of ``kind`` ('sql' or 'frame') from a DataFrame."""
    if kind == "sql":
        return SQLBackend.from_frame(frame)
    if kind == "frame":
        return FrameBackend.from_frame(frame)
    raise ValueError(f"unknown backend kind {kind!r}; expected 'sql' or 'frame'")


__all__ = ["Backend", "FrameBackend", "SQLBackend", "make_backend"]
