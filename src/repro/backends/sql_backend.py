"""The database-backed storage backend (the paper's Postgres path).

Every detector capability is a SQL query; every group lookup hits an index;
repairs are point DELETEs/UPDATEs by rowid.  This backend embodies the
locality argument behind Table 1: work is proportional to the rows touched,
not to the dataset size.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.types import Stats
from repro.errors import BuckarooError
from repro.frame import DataFrame, dtypes
from repro.minidb import Database, connect
from repro.snapshots.delta import DeltaSnapshot

from repro.backends.base import Backend
from repro.backends.stats_cache import GroupStatsCache

_SQL_TYPES = {
    dtypes.INT64: "BIGINT",
    dtypes.FLOAT64: "DOUBLE PRECISION",
    dtypes.BOOL: "INT",
    dtypes.STRING: "TEXT",
    dtypes.MIXED: "REAL",  # numeric affinity keeps numbers; dirty text survives
}


class SQLBackend(Backend):
    """Buckaroo storage on :mod:`repro.minidb` (Postgres stand-in)."""

    kind = "sql"

    def __init__(self, db: Database, table: str = "data"):
        if not db.has_table(table):
            raise BuckarooError(f"database has no table {table!r}")
        self.db = db
        self.table_name = table
        self._table = db.table(table)
        self.stats_cache = GroupStatsCache(self._table)
        # the hot interactive queries (per-group, per-column shapes) run as
        # prepared statements: parse + plan once, rebind per call.  Keyed
        # by SQL text locally so backend statements never feel LRU pressure
        # from unrelated queries in the database-level cache.
        self._prepared: dict[str, object] = {}

    def _prepare(self, sql: str):
        prepared = self._prepared.get(sql)
        if prepared is None:
            prepared = self.db.prepare(sql)
            self._prepared[sql] = prepared
        return prepared

    def _query(self, sql: str, params: tuple = ()):
        """Execute ``sql`` through a backend-cached prepared statement."""
        return self._prepare(sql).execute(params)

    def register_chart_columns(self, cat_cols, num_cols) -> None:
        """Start incremental stats/error caching for the chart attributes.

        This is the §3.2 backend cache: one build scan, then O(changed
        cells) maintenance per mutation, making group statistics, missing/
        mismatch lookups, and re-plot aggregates O(1)/O(answer).
        """
        self.stats_cache.track(list(cat_cols), list(num_cols))

    @classmethod
    def from_frame(cls, frame: DataFrame, table: str = "data",
                   wal: bool = True,
                   path: str | None = None, **options) -> "SQLBackend":
        """Load a DataFrame into a fresh database (the §2 upload step).

        ``path`` opens a durable file-backed database (rows on pages
        behind a buffer pool, crash-safe WAL); the default is in-memory.
        Extra options (``pool_pages``, ``fsync``, ...) pass through to
        :func:`repro.minidb.connect`.
        """
        if path is not None:
            db = connect(path, **options)
        else:
            db = connect(wal=wal or None, **options)
        columns_sql = ", ".join(
            f'"{col.name}" {_SQL_TYPES[col.dtype]}' for col in frame.columns
        )
        db.execute(f"CREATE TABLE {table} ({columns_sql})")
        db.insert_rows(table, frame.iter_rows())
        if db.wal is not None:
            db.checkpoint()  # the initial load is not an undoable operation
        return cls(db, table)

    # -- schema ----------------------------------------------------------------

    def column_names(self) -> list[str]:
        return list(self._table.schema.column_names)

    def row_count(self) -> int:
        return self._table.n_rows

    def categorical_columns(self, max_categories: int = 50) -> list[str]:
        result = []
        for coldef in self._table.schema.columns:
            if coldef.affinity == "text":
                distinct = self._distinct_count_capped(coldef.name, max_categories)
                if distinct <= max_categories:
                    result.append(coldef.name)
            elif coldef.affinity == "integer":
                cap = min(max_categories, 20)
                distinct = self._distinct_count_capped(coldef.name, cap)
                if 0 < distinct <= cap:
                    result.append(coldef.name)
        return result

    def _distinct_count_capped(self, column: str, cap: int) -> int:
        """Distinct non-NULL values, capped at ``cap + 1``.

        Runs as a streaming ``DISTINCT ... LIMIT`` cursor, so a
        high-cardinality column stops scanning as soon as ``cap + 1``
        distinct values have been seen instead of aggregating the whole
        table just to learn "too many".
        """
        prepared = self._prepare(
            f'SELECT DISTINCT "{column}" FROM {self.table_name} '
            f'WHERE "{column}" IS NOT NULL LIMIT ?'
        )
        return sum(1 for _ in prepared.stream((cap + 1,)))

    def numerical_columns(self) -> list[str]:
        result = []
        for coldef in self._table.schema.columns:
            if coldef.affinity in ("integer", "real"):
                counts = self._query(
                    f'SELECT COUNT("{coldef.name}"), '
                    f'SUM(CASE WHEN typeof("{coldef.name}") = \'text\' '
                    f"THEN 1 ELSE 0 END) FROM {self.table_name}"
                ).first()
                present, text = counts
                text = text or 0
                if present and (present - text) / present >= 0.5:
                    result.append(coldef.name)
        return result

    # -- reads -----------------------------------------------------------------

    def all_row_ids(self) -> list[int]:
        return list(self._table.rows.keys())

    def row(self, row_id: int) -> dict:
        values = self._table.get(row_id)
        if values is None:
            raise BuckarooError(f"no row {row_id}")
        return dict(zip(self._table.schema.column_names, values))

    def values(self, column: str, row_ids: Sequence[int]) -> list:
        # direct storage access — the "Python wrappers to access the
        # database" of Fig 2 ⑤ (equivalent to a rowid-keyed prepared lookup)
        position = self._table.schema.position(column)
        rows = self._table.rows
        return [rows[row_id][position] for row_id in row_ids]

    def distinct_values(self, column: str) -> list:
        result = self._query(
            f'SELECT DISTINCT "{column}" FROM {self.table_name} '
            f'WHERE "{column}" IS NOT NULL'
        )
        return result.scalars()

    def group_row_ids(self, cat_col: str, category) -> list[int]:
        if category is None:
            result = self._query(
                f'SELECT rowid FROM {self.table_name} WHERE "{cat_col}" IS NULL'
            )
        else:
            result = self._query(
                f'SELECT rowid FROM {self.table_name} WHERE "{cat_col}" = ?',
                (category,),
            )
        return result.scalars()

    def group_sizes(self, cat_col: str) -> dict:
        result = self._query(
            f'SELECT "{cat_col}", COUNT(*) FROM {self.table_name} GROUP BY "{cat_col}"'
        )
        return {key: count for key, count in result.rows}

    def numeric_stats(self, num_col: str, cat_col: Optional[str] = None,
                      category=None) -> Stats:
        if self.stats_cache.tracks_pair(num_col, cat_col):
            return self.stats_cache.stats(num_col, cat_col, category)
        where, params = self._numeric_scope(num_col, cat_col, category)
        row = self._query(
            f'SELECT COUNT("{num_col}"), AVG("{num_col}"), STDDEV("{num_col}"), '
            f'MIN("{num_col}"), MAX("{num_col}") FROM {self.table_name} WHERE {where}',
            params,
        ).first()
        count, mean, std, lo, hi = row
        return Stats(count or 0, mean, std, lo, hi)

    # -- detector capabilities (SQL, per §3.1) -----------------------------------

    def missing_row_ids(self, num_col: str, cat_col: Optional[str] = None,
                        category=None) -> list[int]:
        if self.stats_cache.tracks_numeric(num_col):
            rows = self.stats_cache.missing_rows(num_col)
            return self._filter_by_group(rows, cat_col, category)
        where, params = self._group_scope(cat_col, category)
        sql = (
            f'SELECT rowid FROM {self.table_name} '
            f'WHERE "{num_col}" IS NULL{where}'
        )
        return self._query(sql, params).scalars()

    def mismatch_row_ids(self, num_col: str, cat_col: Optional[str] = None,
                         category=None) -> list[int]:
        if self.stats_cache.tracks_numeric(num_col):
            rows = self.stats_cache.text_rows(num_col)
            return self._filter_by_group(rows, cat_col, category)
        where, params = self._group_scope(cat_col, category)
        sql = (
            f'SELECT rowid FROM {self.table_name} '
            f'WHERE typeof("{num_col}") = \'text\'{where}'
        )
        return self._query(sql, params).scalars()

    def out_of_range_row_ids(self, num_col: str, low: float, high: float,
                             cat_col: Optional[str] = None,
                             category=None) -> list[int]:
        btree = next(
            (ix for ix in self._table.indexes_on(num_col) if ix.kind == "btree"),
            None,
        )
        if btree is not None:
            # two tail scans over the value index: O(answer), not O(group)
            rows = set(btree.numeric_range(None, low, include_high=False))
            rows.update(btree.numeric_range(high, None, include_low=False))
            return self._filter_by_group(rows, cat_col, category)
        where, params = self._group_scope(cat_col, category)
        sql = (
            f'SELECT rowid FROM {self.table_name} '
            f'WHERE typeof("{num_col}") <> \'text\' AND "{num_col}" IS NOT NULL '
            f'AND ("{num_col}" < ? OR "{num_col}" > ?){where}'
        )
        return self._query(sql, (low, high, *params)).scalars()

    def _filter_by_group(self, row_ids, cat_col: Optional[str],
                         category) -> list[int]:
        """Narrow candidate rowids to one group via direct row access."""
        if cat_col is None:
            return sorted(row_ids)
        position = self._table.schema.position(cat_col)
        rows = self._table.rows
        if category is None:
            return sorted(
                rid for rid in row_ids if rows[rid][position] is None
            )
        return sorted(
            rid for rid in row_ids if rows[rid][position] == category
        )

    def _group_scope(self, cat_col: Optional[str], category) -> tuple[str, tuple]:
        if cat_col is None:
            return "", ()
        if category is None:
            return f' AND "{cat_col}" IS NULL', ()
        return f' AND "{cat_col}" = ?', (category,)

    def _numeric_scope(self, num_col: str, cat_col: Optional[str],
                       category) -> tuple[str, tuple]:
        base = f'typeof("{num_col}") <> \'text\' AND "{num_col}" IS NOT NULL'
        scope, params = self._group_scope(cat_col, category)
        return base + scope, params

    # -- writes -----------------------------------------------------------------

    def delete_rows(self, row_ids: Sequence[int]) -> DeltaSnapshot:
        names = self._table.schema.column_names
        delta = DeltaSnapshot(label="delete_rows")
        for row_id in row_ids:
            values = self._table.get(row_id)
            if values is not None:
                delta.deleted[row_id] = dict(zip(names, values))
        self.db.executemany(
            f"DELETE FROM {self.table_name} WHERE rowid = ?",
            [(row_id,) for row_id in delta.deleted],
        )
        return delta

    def set_cells(self, column: str, row_ids: Sequence[int], value=None,
                  values: Optional[Sequence] = None) -> DeltaSnapshot:
        position = self._table.schema.position(column)
        new_values = list(values) if values is not None else [value] * len(row_ids)
        delta = DeltaSnapshot(label=f"set_cells({column})")
        rows = self._table.rows
        pairs = []
        for row_id, new in zip(row_ids, new_values):
            stored = rows.get(row_id)
            if stored is None:
                continue
            old = stored[position]
            coerced = self._table.coerce(position, new)
            if old == coerced and type(old) is type(coerced):
                continue
            delta.updated[row_id] = {column: (old, coerced)}
            # send the *coerced* value: the snapshot must record exactly what
            # the UPDATE stores, or undo/redo replays diverge from the table
            pairs.append((coerced, row_id))
        self.db.executemany(
            f'UPDATE {self.table_name} SET "{column}" = ? WHERE rowid = ?', pairs
        )
        return delta

    def apply_delta(self, delta: DeltaSnapshot) -> None:
        names = self._table.schema.column_names
        for row_id in delta.deleted:
            self._table.delete(row_id)
        for row_id, content in delta.inserted.items():
            self._table.insert([content.get(name) for name in names], rowid=row_id)
        for row_id, cells in delta.updated.items():
            changes = {
                self._table.schema.position(column): new
                for column, (_old, new) in cells.items()
            }
            self._table.update(row_id, changes)

    # -- infrastructure -----------------------------------------------------------

    def ensure_index(self, column: str) -> None:
        """Index ``column``: hash for text attributes, B+tree for numerics.

        Implements "Buckaroo also creates Postgres indexes for all the
        attribute combinations in the charts" (§2).
        """
        index_name = f"idx_{self.table_name}_{column}"
        if index_name in self.db.index_catalog:
            return
        affinity = self._table.schema.column(column).affinity
        kind = "hash" if affinity == "text" else "btree"
        self.db.execute(
            f'CREATE INDEX IF NOT EXISTS {index_name} '
            f'ON {self.table_name} ("{column}") USING {kind}'
        )

    def flush(self) -> int:
        return self.db.checkpoint()

    def to_frame(self, include_row_ids: bool = False) -> DataFrame:
        names = self._table.schema.column_names
        data: dict[str, list] = {}
        if include_row_ids:
            data["_row_id"] = list(self._table.rows.keys())
        for i, name in enumerate(names):
            data[name] = [row[i] for row in self._table.rows.values()]
        return DataFrame.from_dict(data)
