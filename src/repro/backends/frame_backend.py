"""The dataframe-backed storage backend (the paper's Pandas path).

This backend deliberately follows the Pandas computational model: every
mutation re-materializes whole columns, and there are no secondary indexes —
group membership and detector scans recompute over the full column after any
change.  That is the cost profile Table 1 measures against Postgres, and
reproducing it honestly is the point of this class (see DESIGN.md §1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.types import Stats
from repro.errors import BuckarooError
from repro.frame import DataFrame
from repro.snapshots.delta import DeltaSnapshot

from repro.backends.base import Backend


class FrameBackend(Backend):
    """Buckaroo storage on :mod:`repro.frame` (Pandas stand-in)."""

    kind = "frame"

    def __init__(self, frame: DataFrame):
        self._frame = frame
        self._ids = np.arange(1, frame.n_rows + 1, dtype=np.int64)
        self._next_id = frame.n_rows + 1
        self._position_cache: dict[int, int] | None = None
        self._group_cache: dict[str, dict] = {}
        # numeric views (values/ok/mismatch) of each column, recomputed in
        # full after every mutation — the pandas cost model: any change to
        # the frame forces downstream derivations to re-run over the column
        self._numeric_cache: dict[str, tuple] = {}

    @classmethod
    def from_frame(cls, frame: DataFrame) -> "FrameBackend":
        """Wrap a DataFrame (named for symmetry with SQLBackend)."""
        return cls(frame)

    @property
    def frame(self) -> DataFrame:
        """The current dataframe state."""
        return self._frame

    # -- internals ------------------------------------------------------------

    def _positions(self) -> dict[int, int]:
        if self._position_cache is None:
            self._position_cache = {
                int(row_id): position for position, row_id in enumerate(self._ids)
            }
        return self._position_cache

    def _invalidate(self) -> None:
        """After any mutation the pandas-style caches must be rebuilt."""
        self._position_cache = None
        self._group_cache.clear()
        self._numeric_cache.clear()

    def _numeric_view(self, column: str) -> tuple:
        """Cached ``(values, ok, mismatch)`` for one column."""
        cached = self._numeric_cache.get(column)
        if cached is None:
            cached = self._frame[column].to_numeric()
            self._numeric_cache[column] = cached
        return cached

    def _position_of(self, row_id: int) -> int:
        try:
            return self._positions()[row_id]
        except KeyError:
            raise BuckarooError(f"no row {row_id}") from None

    # -- schema ----------------------------------------------------------------

    def column_names(self) -> list[str]:
        return self._frame.column_names

    def row_count(self) -> int:
        return self._frame.n_rows

    def categorical_columns(self, max_categories: int = 50) -> list[str]:
        return self._frame.categorical_columns(max_categories)

    def numerical_columns(self) -> list[str]:
        return self._frame.numerical_columns()

    # -- reads -----------------------------------------------------------------

    def all_row_ids(self) -> list[int]:
        return [int(row_id) for row_id in self._ids]

    def row(self, row_id: int) -> dict:
        position = self._position_of(row_id)
        return dict(zip(self._frame.column_names, self._frame.row(position)))

    def values(self, column: str, row_ids: Sequence[int]) -> list:
        col = self._frame[column]
        positions = self._positions()
        return [col[positions[row_id]] for row_id in row_ids]

    def distinct_values(self, column: str) -> list:
        return self._frame[column].unique()

    def group_row_ids(self, cat_col: str, category) -> list[int]:
        groups = self._group_index(cat_col)
        return list(groups.get(category, []))

    def group_sizes(self, cat_col: str) -> dict:
        return {
            category: len(ids)
            for category, ids in self._group_index(cat_col).items()
        }

    def _group_index(self, cat_col: str) -> dict:
        cached = self._group_cache.get(cat_col)
        if cached is None:
            # full-column groupby, recomputed from scratch after any mutation
            cached = {}
            ids = self._ids
            for position, value in enumerate(self._frame[cat_col]):
                cached.setdefault(value, []).append(int(ids[position]))
            self._group_cache[cat_col] = cached
        return cached

    def numeric_stats(self, num_col: str, cat_col: Optional[str] = None,
                      category=None) -> Stats:
        values, ok, _ = self._numeric_view(num_col)
        mask = ok & self._scope_mask(cat_col, category)
        usable = values[mask]
        if not len(usable):
            return Stats(0, None, None, None, None)
        return Stats(
            int(len(usable)),
            float(np.mean(usable)),
            float(np.std(usable)),
            float(np.min(usable)),
            float(np.max(usable)),
        )

    def _scope_mask(self, cat_col: Optional[str], category) -> np.ndarray:
        if cat_col is None:
            return np.ones(self._frame.n_rows, dtype=bool)
        if category is None:
            return self._frame[cat_col].missing_mask
        mask = np.zeros(self._frame.n_rows, dtype=bool)
        positions_map = self._positions()
        for row_id in self._group_index(cat_col).get(category, ()):
            mask[positions_map[row_id]] = True
        return mask

    # -- detector capabilities (full-column numpy scans) --------------------------

    def missing_row_ids(self, num_col: str, cat_col: Optional[str] = None,
                        category=None) -> list[int]:
        mask = self._frame[num_col].missing_mask & self._scope_mask(cat_col, category)
        return [int(row_id) for row_id in self._ids[mask]]

    def mismatch_row_ids(self, num_col: str, cat_col: Optional[str] = None,
                         category=None) -> list[int]:
        _, _, mismatch = self._numeric_view(num_col)
        mask = mismatch & self._scope_mask(cat_col, category)
        return [int(row_id) for row_id in self._ids[mask]]

    def out_of_range_row_ids(self, num_col: str, low: float, high: float,
                             cat_col: Optional[str] = None,
                             category=None) -> list[int]:
        values, ok, _ = self._numeric_view(num_col)
        with np.errstate(invalid="ignore"):
            outside = ok & ((values < low) | (values > high))
        mask = outside & self._scope_mask(cat_col, category)
        return [int(row_id) for row_id in self._ids[mask]]

    # -- writes -----------------------------------------------------------------

    def delete_rows(self, row_ids: Sequence[int]) -> DeltaSnapshot:
        positions = self._positions()
        names = self._frame.column_names
        delta = DeltaSnapshot(label="delete_rows")
        doomed_positions = []
        for row_id in row_ids:
            position = positions.get(row_id)
            if position is None:
                continue
            delta.deleted[row_id] = dict(zip(names, self._frame.row(position)))
            doomed_positions.append(position)
        keep = np.ones(self._frame.n_rows, dtype=bool)
        keep[doomed_positions] = False
        # pandas-style: rebuilds every column
        self._frame = self._frame.filter(keep)
        self._ids = self._ids[keep]
        self._invalidate()
        return delta

    def set_cells(self, column: str, row_ids: Sequence[int], value=None,
                  values: Optional[Sequence] = None) -> DeltaSnapshot:
        positions_map = self._positions()
        col = self._frame[column]
        new_values = list(values) if values is not None else [value] * len(row_ids)
        delta = DeltaSnapshot(label=f"set_cells({column})")
        write_positions = []
        write_values = []
        for row_id, new in zip(row_ids, new_values):
            position = positions_map.get(row_id)
            if position is None:
                continue
            old = col[position]
            if old == new and type(old) is type(new):
                continue
            delta.updated[row_id] = {column: (old, new)}
            write_positions.append(position)
            write_values.append(new)
        if write_positions:
            # pandas-style: copies the whole column
            self._frame = self._frame.set_values(column, write_positions, write_values)
            self._invalidate()
        return delta

    def apply_delta(self, delta: DeltaSnapshot) -> None:
        if delta.deleted:
            positions_map = self._positions()
            keep = np.ones(self._frame.n_rows, dtype=bool)
            for row_id in delta.deleted:
                position = positions_map.get(row_id)
                if position is not None:
                    keep[position] = False
            self._frame = self._frame.filter(keep)
            self._ids = self._ids[keep]
            self._invalidate()
        if delta.inserted:
            names = self._frame.column_names
            rows = [
                tuple(content.get(name) for name in names)
                for content in delta.inserted.values()
            ]
            addition = DataFrame.from_rows(rows, names)
            self._frame = self._frame.concat(addition)
            self._ids = np.concatenate([
                self._ids, np.array(list(delta.inserted.keys()), dtype=np.int64)
            ])
            self._next_id = max(self._next_id, int(self._ids.max()) + 1)
            self._invalidate()
        if delta.updated:
            by_column: dict[str, tuple[list, list]] = {}
            positions_map = self._positions()
            for row_id, cells in delta.updated.items():
                position = positions_map.get(row_id)
                if position is None:
                    continue
                for column, (_old, new) in cells.items():
                    bucket = by_column.setdefault(column, ([], []))
                    bucket[0].append(position)
                    bucket[1].append(new)
            for column, (positions, new_values) in by_column.items():
                self._frame = self._frame.set_values(column, positions, new_values)
            self._invalidate()

    # -- infrastructure -----------------------------------------------------------

    def ensure_index(self, column: str) -> None:
        """No-op: dataframes have no secondary indexes (the point of Table 1)."""

    def flush(self) -> int:
        """No-op: the frame is already the only copy."""
        return 0

    def to_frame(self, include_row_ids: bool = False) -> DataFrame:
        if not include_row_ids:
            return self._frame
        data: dict[str, list] = {"_row_id": [int(i) for i in self._ids]}
        data.update(self._frame.to_dict())
        return DataFrame.from_dict(data)
