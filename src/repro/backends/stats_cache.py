"""The backend cache (§3.2): incrementally maintained group statistics.

"Following previous architectures, Buckaroo maintains a backend cache.
When a data group is modified, only the affected rows in the backend cache
are updated."  This module implements that cache for the SQL backend:

* per numeric chart attribute — count/sum/sum-of-squares (hence mean and
  std) globally and per category of every categorical chart attribute;
* the set of rows with NULL in each numeric attribute (missing values);
* the set of rows with text in each numeric attribute (type mismatches).

Every table mutation updates the cache in O(changed cells); detector and
re-plot queries that would otherwise scan a group become O(1) or
O(answer).  The frame backend deliberately has no such cache — it
recomputes from the full column, which is the cost asymmetry Table 1
measures.
"""

from __future__ import annotations

import math

from repro.core.types import Stats
from repro.minidb.hash_index import normalize_key
from repro.minidb.storage import Table


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class _Moments:
    """Incrementally maintained count/sum/sum-of-squares, *shifted*.

    The unshifted form cancels catastrophically once the mean dwarfs the
    spread: at mean ~1e9 and std ~1 the two ~1e18 terms of
    ``sumsq/n - mean**2`` agree to every stored digit, so the variance is
    pure rounding noise and long add/``remove`` edit sessions silently
    collapse the std to 0 (saved only from going imaginary by a clamp).
    Accumulating ``value - shift`` instead — with the first value seen as
    the shift — keeps the sums at the scale of the spread, where the
    subtraction is benign, while addition/subtraction still cancel exactly
    under removal for integer-valued data.

    No O(1)-memory accumulator survives *removing* a value that dominated
    the sums (the subtraction cancels nearly everything, leaving rounding
    noise — e.g. a far-outlier anchor value being repaired away).
    ``suspect`` detects that case by comparing the surviving second moment
    against the rounding floor of the high-water mark, and the cache
    responds by rebuilding the accumulator from the table.
    """

    __slots__ = ("n", "shift", "total", "sumsq", "peak")

    #: fraction of the sum-of-squares high-water mark below which the
    #: surviving second moment is indistinguishable from rounding noise
    _NOISE_FLOOR = 1e-12

    def __init__(self) -> None:
        self.n = 0
        self.shift: float | None = None
        self.total = 0.0
        self.sumsq = 0.0
        self.peak = 0.0  # high-water mark of sumsq since the last rebuild

    def add(self, value: float) -> None:
        if self.shift is None:
            self.shift = value
        centered = value - self.shift
        self.n += 1
        self.total += centered
        self.sumsq += centered * centered
        if self.sumsq > self.peak:
            self.peak = self.sumsq

    def remove(self, value: float) -> None:
        if self.n <= 1:
            # dropping the last value: reset so the next add re-anchors
            self.n = 0
            self.shift = None
            self.total = 0.0
            self.sumsq = 0.0
            self.peak = 0.0
            return
        centered = value - self.shift
        self.n -= 1
        self.total -= centered
        self.sumsq -= centered * centered

    @property
    def suspect(self) -> bool:
        """True when cancellation may have eaten the second moment."""
        if not self.n:
            return False
        m2 = self.sumsq - self.total * self.total / self.n
        return m2 < self._NOISE_FLOOR * self.peak

    @property
    def mean(self) -> float | None:
        return self.shift + self.total / self.n if self.n else None

    @property
    def std(self) -> float | None:
        if not self.n:
            return None
        variance = max(self.sumsq / self.n - (self.total / self.n) ** 2, 0.0)
        return math.sqrt(variance)


class _NumericCache:
    """All cached state for one tracked numeric column."""

    __slots__ = ("position", "missing", "text", "global_moments",
                 "per_cat", "min", "max", "range_dirty")

    def __init__(self, position: int):
        self.position = position
        self.missing: set[int] = set()
        self.text: set[int] = set()
        self.global_moments = _Moments()
        self.per_cat: dict[str, dict] = {}   # cat_col -> {category: _Moments}
        self.min: float | None = None
        self.max: float | None = None
        self.range_dirty = False


class GroupStatsCache:
    """Incremental statistics over the chart attributes of one table."""

    def __init__(self, table: Table):
        self.table = table
        self._numeric: dict[str, _NumericCache] = {}
        self._cat_positions: dict[str, int] = {}
        table.observers.append(self._on_change)

    # -- registration ------------------------------------------------------------

    def track(self, cat_cols: list[str], num_cols: list[str]) -> None:
        """Start (or extend) tracking; builds the cache in one table scan."""
        new_cats = [c for c in cat_cols if c not in self._cat_positions]
        new_nums = [c for c in num_cols if c not in self._numeric]
        for cat in new_cats:
            self._cat_positions[cat] = self.table.schema.position(cat)
        for num in new_nums:
            self._numeric[num] = _NumericCache(self.table.schema.position(num))
        # existing numeric caches need buckets for newly tracked categories
        rebuild_cats = new_cats if self._numeric else []
        if not new_nums and not rebuild_cats:
            return
        for num, cache in self._numeric.items():
            targets = (
                list(self._cat_positions) if num in new_nums else rebuild_cats
            )
            for cat in targets:
                cache.per_cat.setdefault(cat, {})
        for rowid, row in self.table.scan():
            for num, cache in self._numeric.items():
                fresh_nums = num in new_nums
                value = row[cache.position]
                if fresh_nums:
                    self._add_value(cache, rowid, row, value,
                                    cats=list(self._cat_positions))
                else:
                    # only fill the new categorical buckets
                    if _is_numeric(value):
                        self._add_to_buckets(cache, row, float(value),
                                             cats=rebuild_cats)

    def tracks_numeric(self, num_col: str) -> bool:
        return num_col in self._numeric

    def tracks_pair(self, num_col: str, cat_col: str | None) -> bool:
        if num_col not in self._numeric:
            return False
        return cat_col is None or cat_col in self._cat_positions

    # -- queries -------------------------------------------------------------------

    def stats(self, num_col: str, cat_col: str | None = None,
              category=None) -> Stats:
        """Cached statistics (min/max only available at global scope)."""
        cache = self._numeric[num_col]
        if cat_col is None:
            moments = cache.global_moments
            if moments.suspect:
                moments = self._rebuild_moments(cache, None, None)
                cache.global_moments = moments
            low, high = self._range_of(num_col, cache)
            return Stats(moments.n, moments.mean, moments.std, low, high)
        key = self._cat_key(category)
        bucket = cache.per_cat[cat_col].get(key)
        if bucket is None or not bucket.n:
            return Stats(0, None, None, None, None)
        if bucket.suspect:
            bucket = self._rebuild_moments(cache, cat_col, key)
            cache.per_cat[cat_col][key] = bucket
        return Stats(bucket.n, bucket.mean, bucket.std, None, None)

    def _rebuild_moments(self, cache: _NumericCache, cat_col: str | None,
                         cat_key) -> _Moments:
        """Recompute one accumulator from the table.

        Removing a value that dominated the sums (an extreme outlier being
        repaired away) leaves any O(1) accumulator holding rounding noise;
        this one-scan rebuild re-anchors it on the surviving data.
        """
        moments = _Moments()
        cat_position = (
            self._cat_positions[cat_col] if cat_col is not None else None
        )
        for row in self.table.rows.values():
            if cat_position is not None and self._cat_key(row[cat_position]) != cat_key:
                continue
            value = row[cache.position]
            if _is_numeric(value):
                moments.add(float(value))
        return moments

    def missing_rows(self, num_col: str) -> set[int]:
        """Rows whose tracked column is NULL (live view — do not mutate)."""
        return self._numeric[num_col].missing

    def text_rows(self, num_col: str) -> set[int]:
        """Rows whose tracked column holds text (type mismatches)."""
        return self._numeric[num_col].text

    def _range_of(self, num_col: str, cache: _NumericCache):
        if not cache.global_moments.n:
            return None, None
        if cache.range_dirty:
            cache.min, cache.max = self._recompute_range(num_col, cache)
            cache.range_dirty = False
        return cache.min, cache.max

    def _recompute_range(self, num_col: str, cache: _NumericCache):
        for index in self.table.indexes_on(num_col):
            if index.kind == "btree":
                return index.numeric_min(), index.numeric_max()
        low = high = None
        for row in self.table.rows.values():
            value = row[cache.position]
            if _is_numeric(value):
                value = float(value)
                low = value if low is None else min(low, value)
                high = value if high is None else max(high, value)
        return low, high

    # -- maintenance -------------------------------------------------------------

    def _cat_key(self, category):
        return normalize_key(category) if category is not None else None

    def _on_change(self, event: tuple) -> None:
        kind = event[0]
        if kind == "insert":
            _, _, rowid, values = event
            for cache in self._numeric.values():
                self._add_value(cache, rowid, values, values[cache.position],
                                cats=list(self._cat_positions))
        elif kind == "delete":
            _, _, rowid, values = event
            for cache in self._numeric.values():
                self._remove_value(cache, rowid, values, values[cache.position],
                                   cats=list(self._cat_positions))
        else:  # update
            _, _, rowid, old, new = event
            self._on_update(rowid, old, new)

    def _on_update(self, rowid: int, old: dict, new: dict) -> None:
        row = self.table.rows[rowid]  # post-update state

        def cat_value_before(cat: str):
            position = self._cat_positions[cat]
            return old[position] if position in old else row[position]

        changed_positions = set(new)
        # numeric columns whose value changed
        for num, cache in self._numeric.items():
            if cache.position not in changed_positions:
                continue
            old_value = old[cache.position]
            new_value = new[cache.position]
            old_cats = {cat: cat_value_before(cat) for cat in self._cat_positions}
            self._remove_with_cats(cache, rowid, old_value, old_cats)
            new_cats = {
                cat: row[self._cat_positions[cat]] for cat in self._cat_positions
            }
            self._add_with_cats(cache, rowid, new_value, new_cats)
        # categorical columns whose value changed move every *unchanged*
        # numeric value between buckets
        for cat, position in self._cat_positions.items():
            if position not in changed_positions:
                continue
            old_category = self._cat_key(old[position])
            new_category = self._cat_key(new[position])
            if old_category == new_category:
                continue
            for num, cache in self._numeric.items():
                if cache.position in changed_positions:
                    continue  # already rebucketed above
                value = row[cache.position]
                if not _is_numeric(value):
                    continue
                value = float(value)
                buckets = cache.per_cat[cat]
                source = buckets.get(old_category)
                if source is not None:
                    source.remove(value)
                buckets.setdefault(new_category, _Moments()).add(value)

    def _add_value(self, cache: _NumericCache, rowid: int, row, value,
                   cats: list[str]) -> None:
        if value is None:
            cache.missing.add(rowid)
            return
        if not _is_numeric(value):
            cache.text.add(rowid)
            return
        value = float(value)
        cache.global_moments.add(value)
        if cache.min is None or value < cache.min:
            cache.min = value
        if cache.max is None or value > cache.max:
            cache.max = value
        self._add_to_buckets(cache, row, value, cats)

    def _add_to_buckets(self, cache: _NumericCache, row, value: float,
                        cats: list[str]) -> None:
        for cat in cats:
            category = self._cat_key(row[self._cat_positions[cat]])
            cache.per_cat[cat].setdefault(category, _Moments()).add(value)

    def _remove_value(self, cache: _NumericCache, rowid: int, row, value,
                      cats: list[str]) -> None:
        if value is None:
            cache.missing.discard(rowid)
            return
        if not _is_numeric(value):
            cache.text.discard(rowid)
            return
        value = float(value)
        cache.global_moments.remove(value)
        if value == cache.min or value == cache.max:
            cache.range_dirty = True
        for cat in cats:
            category = self._cat_key(row[self._cat_positions[cat]])
            bucket = cache.per_cat[cat].get(category)
            if bucket is not None:
                bucket.remove(value)

    def _add_with_cats(self, cache: _NumericCache, rowid: int, value,
                       cat_values: dict) -> None:
        if value is None:
            cache.missing.add(rowid)
            return
        if not _is_numeric(value):
            cache.text.add(rowid)
            return
        value = float(value)
        cache.global_moments.add(value)
        if cache.min is None or value < cache.min:
            cache.min = value
        if cache.max is None or value > cache.max:
            cache.max = value
        for cat, raw in cat_values.items():
            category = self._cat_key(raw)
            cache.per_cat[cat].setdefault(category, _Moments()).add(value)

    def _remove_with_cats(self, cache: _NumericCache, rowid: int, value,
                          cat_values: dict) -> None:
        if value is None:
            cache.missing.discard(rowid)
            return
        if not _is_numeric(value):
            cache.text.discard(rowid)
            return
        value = float(value)
        cache.global_moments.remove(value)
        if value == cache.min or value == cache.max:
            cache.range_dirty = True
        for cat, raw in cat_values.items():
            category = self._cat_key(raw)
            bucket = cache.per_cat[cat].get(category)
            if bucket is not None:
                bucket.remove(value)
