"""The storage backend protocol Buckaroo's core is written against.

The paper's central runtime comparison (Table 1) is between a Postgres
backend and a Pandas backend doing the same wrangling work.  This module
defines the capability surface both must provide; the core never touches
storage directly.

Row identity: every row has a stable integer ``row_id`` that survives
updates and is never reused while the row exists.  All anomaly bookkeeping,
deltas, and undo are expressed in row ids.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.core.types import Stats
from repro.snapshots.delta import DeltaSnapshot


class Backend(ABC):
    """Abstract storage backend (see module docstring)."""

    kind: str = "abstract"

    # -- schema ----------------------------------------------------------------

    @abstractmethod
    def column_names(self) -> list[str]:
        """All column names, in order."""

    @abstractmethod
    def row_count(self) -> int:
        """Current number of rows."""

    @abstractmethod
    def categorical_columns(self, max_categories: int = 50) -> list[str]:
        """Columns usable as grouping attributes."""

    @abstractmethod
    def numerical_columns(self) -> list[str]:
        """Columns holding (possibly messy) numeric data."""

    # -- reads -----------------------------------------------------------------

    @abstractmethod
    def all_row_ids(self) -> list[int]:
        """Every live row id."""

    @abstractmethod
    def row(self, row_id: int) -> dict:
        """One row as ``{column: value}`` (raises on a dead row id)."""

    @abstractmethod
    def values(self, column: str, row_ids: Sequence[int]) -> list:
        """Cell values for ``column`` aligned with ``row_ids``."""

    @abstractmethod
    def distinct_values(self, column: str) -> list:
        """Distinct non-null values of ``column``."""

    @abstractmethod
    def group_row_ids(self, cat_col: str, category) -> list[int]:
        """Row ids where ``cat_col`` equals ``category`` (None -> IS NULL)."""

    @abstractmethod
    def group_sizes(self, cat_col: str) -> dict:
        """``category -> row count`` (a ``None`` key collects missing cells)."""

    @abstractmethod
    def numeric_stats(self, num_col: str, cat_col: Optional[str] = None,
                      category=None) -> Stats:
        """Stats over the *numeric* values of ``num_col``.

        Text contamination and NULLs are excluded.  With ``cat_col``, the
        scope narrows to one group.
        """

    # -- detector capabilities (each maps to one SQL query on the DB backend) --

    @abstractmethod
    def missing_row_ids(self, num_col: str, cat_col: Optional[str] = None,
                        category=None) -> list[int]:
        """Rows whose ``num_col`` cell is NULL (optionally within a group)."""

    @abstractmethod
    def mismatch_row_ids(self, num_col: str, cat_col: Optional[str] = None,
                         category=None) -> list[int]:
        """Rows whose ``num_col`` cell holds unparseable text."""

    @abstractmethod
    def out_of_range_row_ids(self, num_col: str, low: float, high: float,
                             cat_col: Optional[str] = None,
                             category=None) -> list[int]:
        """Rows whose numeric ``num_col`` value falls outside ``[low, high]``."""

    # -- writes -----------------------------------------------------------------

    @abstractmethod
    def delete_rows(self, row_ids: Sequence[int]) -> DeltaSnapshot:
        """Remove rows; returns the delta for undo."""

    @abstractmethod
    def set_cells(self, column: str, row_ids: Sequence[int], value=None,
                  values: Optional[Sequence] = None) -> DeltaSnapshot:
        """Write ``value`` (broadcast) or aligned ``values`` into ``column``."""

    @abstractmethod
    def apply_delta(self, delta: DeltaSnapshot) -> None:
        """Re-apply a delta (deletions, insertions, cell updates).

        ``apply_delta(delta.inverse())`` is undo.
        """

    # -- infrastructure -----------------------------------------------------------

    @abstractmethod
    def ensure_index(self, column: str) -> None:
        """Create a lookup index for ``column`` when the backend supports it."""

    @abstractmethod
    def flush(self) -> int:
        """Persist buffered changes; returns how many records were flushed."""

    @abstractmethod
    def to_frame(self, include_row_ids: bool = False):
        """Materialize the current data as a :class:`repro.frame.DataFrame`.

        With ``include_row_ids`` a leading ``_row_id`` column is added —
        custom detectors use it to report anomalies (§3.1).
        """

    # -- shared helpers ------------------------------------------------------------

    def register_chart_columns(self, cat_cols, num_cols) -> None:
        """Hint which attributes the charts project (§3.2 backend cache).

        The SQL backend builds its incremental group-statistics cache from
        this; the frame backend ignores it (pandas recomputes — the Table 1
        asymmetry).
        """

    def revert_delta(self, delta: DeltaSnapshot) -> None:
        """Undo a delta (convenience for ``apply_delta(delta.inverse())``)."""
        self.apply_delta(delta.inverse())
