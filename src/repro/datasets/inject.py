"""Ground-truth-tracking error injection.

Injects the paper's built-in error classes into a clean frame: missing
values, outliers, and type mismatches ("12k"-style spellings).  The
returned :class:`GroundTruth` records every corrupted cell, enabling the
recall measurements of the sampling ablation (A2) — something the paper's
real-world datasets cannot provide.

Row identity note: both backends assign row ids ``1..n`` in load order, so
ground-truth *positions* map to backend row ids as ``position + 1``
(:meth:`GroundTruth.row_id`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.types import ERROR_MISSING, ERROR_OUTLIER, ERROR_TYPE_MISMATCH
from repro.frame import DataFrame
from repro.frame.parsing import coerce_to_number

_MISMATCH_STYLES = ("suffix_k", "currency", "words")

_NUMBER_WORDS = ("twelve", "fifty", "about a hundred", "unknown amount")


@dataclass
class GroundTruth:
    """Every injected error: ``code -> {(position, column)}``."""

    cells: dict = field(default_factory=dict)

    def add(self, code: str, position: int, column: str) -> None:
        self.cells.setdefault(code, set()).add((position, column))

    def positions(self, code: str | None = None) -> set:
        """Corrupted row positions (optionally for one error code)."""
        if code is not None:
            return {position for position, _ in self.cells.get(code, ())}
        return {
            position
            for entries in self.cells.values()
            for position, _ in entries
        }

    def row_ids(self, code: str | None = None) -> set:
        """Corrupted rows as backend row ids (position + 1)."""
        return {position + 1 for position in self.positions(code)}

    def total(self) -> int:
        """Total corrupted cells."""
        return sum(len(entries) for entries in self.cells.values())

    def merge(self, other: "GroundTruth") -> "GroundTruth":
        """Union of two ground truths."""
        merged = GroundTruth()
        for source in (self, other):
            for code, entries in source.cells.items():
                merged.cells.setdefault(code, set()).update(entries)
        return merged


class ErrorInjector:
    """Seeded injector producing (dirty frame, ground truth) pairs."""

    def __init__(self, seed: int = 7):
        self._rng = np.random.default_rng(seed)

    def inject_missing(self, frame: DataFrame, columns: list[str],
                       fraction: float) -> tuple[DataFrame, GroundTruth]:
        """Blank a fraction of cells in each column."""
        truth = GroundTruth()
        for column in columns:
            positions = self._sample_positions(frame.n_rows, fraction)
            if not len(positions):
                continue
            frame = frame.set_values(column, positions, None)
            for position in positions:
                truth.add(ERROR_MISSING, int(position), column)
        return frame, truth

    def inject_outliers(self, frame: DataFrame, columns: list[str],
                        fraction: float,
                        magnitude: float = 8.0) -> tuple[DataFrame, GroundTruth]:
        """Push a fraction of cells ``magnitude`` standard deviations out."""
        truth = GroundTruth()
        for column in columns:
            col = frame[column]
            values, ok, _ = col.to_numeric()
            usable = values[ok]
            if len(usable) < 2:
                continue
            mean = float(np.mean(usable))
            std = float(np.std(usable)) or max(abs(mean), 1.0)
            candidates = np.flatnonzero(ok)
            positions = self._choose(candidates, fraction, frame.n_rows)
            if not len(positions):
                continue
            signs = self._rng.choice([-1.0, 1.0], size=len(positions))
            spread = self._rng.uniform(1.0, 2.0, size=len(positions))
            new_values = [
                round(mean + float(sign) * magnitude * float(s) * std, 2)
                for sign, s in zip(signs, spread)
            ]
            frame = frame.set_values(column, positions, new_values)
            for position in positions:
                truth.add(ERROR_OUTLIER, int(position), column)
        return frame, truth

    def inject_type_mismatches(self, frame: DataFrame, columns: list[str],
                               fraction: float) -> tuple[DataFrame, GroundTruth]:
        """Replace numeric cells with dirty text spellings ('12k', '$5,000')."""
        truth = GroundTruth()
        for column in columns:
            col = frame[column]
            _, ok, _ = col.to_numeric()
            candidates = np.flatnonzero(ok)
            positions = self._choose(candidates, fraction, frame.n_rows)
            if not len(positions):
                continue
            styles = self._rng.choice(len(_MISMATCH_STYLES), size=len(positions))
            new_values = []
            for position, style in zip(positions, styles):
                number = coerce_to_number(col[int(position)]) or 0.0
                new_values.append(self._spell(number, _MISMATCH_STYLES[style]))
            frame = frame.set_values(column, positions, new_values)
            for position in positions:
                truth.add(ERROR_TYPE_MISMATCH, int(position), column)
        return frame, truth

    def inject_profile(self, frame: DataFrame, numeric_columns: list[str],
                       missing: float = 0.01, outliers: float = 0.005,
                       mismatches: float = 0.005) -> tuple[DataFrame, GroundTruth]:
        """Apply the standard dirty-data profile used by the benchmarks."""
        frame, truth_outliers = self.inject_outliers(frame, numeric_columns, outliers)
        frame, truth_mismatch = self.inject_type_mismatches(
            frame, numeric_columns, mismatches
        )
        frame, truth_missing = self.inject_missing(frame, numeric_columns, missing)
        return frame, truth_outliers.merge(truth_mismatch).merge(truth_missing)

    # -- internals ---------------------------------------------------------------

    def _sample_positions(self, n_rows: int, fraction: float) -> np.ndarray:
        count = int(round(n_rows * fraction))
        if count < 1 and fraction > 0 and n_rows:
            count = 1
        count = min(count, n_rows)
        if not count:
            return np.array([], dtype=np.int64)
        return self._rng.choice(n_rows, size=count, replace=False)

    def _choose(self, candidates: np.ndarray, fraction: float,
                n_rows: int) -> np.ndarray:
        count = int(round(n_rows * fraction))
        if count < 1 and fraction > 0 and len(candidates):
            count = 1
        count = min(count, len(candidates))
        if not count:
            return np.array([], dtype=np.int64)
        return self._rng.choice(candidates, size=count, replace=False)

    def _spell(self, number: float, style: str) -> str:
        if style == "suffix_k":
            return f"{number / 1000:.0f}k" if abs(number) >= 1000 else f"{number:.0f}k"
        if style == "currency":
            return f"${number:,.0f}"
        index = int(self._rng.integers(0, len(_NUMBER_WORDS)))
        return _NUMBER_WORDS[index]
