"""``repro.datasets`` — seeded generators for the paper's three datasets.

Each generator matches the published shape (rows x columns) and takes a
``scale`` factor for fast tests.  ``dirty=True`` (default) injects the
standard error profile and returns the ground truth alongside the frame.
"""

from repro.datasets.adult import make_adult_income
from repro.datasets.chicago_crime import make_chicago_crime
from repro.datasets.inject import ErrorInjector, GroundTruth
from repro.datasets.stackoverflow import make_stackoverflow

DATASETS = {
    "stackoverflow": make_stackoverflow,
    "adult_income": make_adult_income,
    "chicago_crime": make_chicago_crime,
}

FULL_SHAPES = {
    "stackoverflow": (38_091, 21),
    "adult_income": (48_843, 15),
    "chicago_crime": (249_542, 17),
}


def load_dataset(name: str, scale: float | None = None, seed: int | None = None,
                 dirty: bool = True):
    """Generate one of the paper's datasets by name."""
    try:
        maker = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}"
        ) from None
    kwargs = {"scale": scale, "dirty": dirty}
    if seed is not None:
        kwargs["seed"] = seed
    return maker(**kwargs)


__all__ = [
    "DATASETS",
    "ErrorInjector",
    "FULL_SHAPES",
    "GroundTruth",
    "load_dataset",
    "make_adult_income",
    "make_chicago_crime",
    "make_stackoverflow",
]
