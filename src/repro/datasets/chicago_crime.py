"""Synthetic Chicago Crime dataset (249,542 rows x 17 columns).

Matches the shape of the City of Chicago crime extract the paper uses —
the large dataset of Table 1 and the natural fit for pan/zoom navigation
(coordinates + a categorical hierarchy).
"""

from __future__ import annotations

from repro.datasets.generators import integers, pick, rng_for, scaled
from repro.datasets.inject import ErrorInjector, GroundTruth
from repro.frame import DataFrame

N_ROWS = 249_542
N_COLS = 17

PRIMARY_TYPES = [
    "THEFT", "BATTERY", "CRIMINAL DAMAGE", "NARCOTICS", "ASSAULT",
    "BURGLARY", "MOTOR VEHICLE THEFT", "ROBBERY", "DECEPTIVE PRACTICE",
    "CRIMINAL TRESPASS", "WEAPONS VIOLATION", "OFFENSE INVOLVING CHILDREN",
]
_TYPE_WEIGHTS = [21, 18, 11, 10, 7, 6, 5, 4, 4, 3, 2, 1]
DESCRIPTIONS = [
    "SIMPLE", "OVER $500", "UNDER $500", "TO PROPERTY", "TO VEHICLE",
    "DOMESTIC BATTERY", "POSS: CANNABIS", "AGGRAVATED", "FORCIBLE ENTRY",
    "RETAIL THEFT",
]
LOCATIONS = [
    "STREET", "RESIDENCE", "APARTMENT", "SIDEWALK", "PARKING LOT",
    "RETAIL STORE", "ALLEY", "SCHOOL", "RESTAURANT", "VEHICLE",
]
MONTHS = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
]

NUMERIC_ERROR_COLUMNS = ["x_coordinate", "y_coordinate", "ward"]


def make_chicago_crime(scale: float | None = None, seed: int = 13,
                       dirty: bool = True,
                       error_rate: float = 0.01) -> tuple[DataFrame, GroundTruth]:
    """Generate the crime extract at ``scale`` (None = 249,542 rows)."""
    n = scaled(N_ROWS, scale)
    rng = rng_for(seed)
    years = integers(rng, n, 2018, 2024)
    data = {
        "id": [int(v) for v in rng.integers(10_000_000, 13_000_000, size=n)],
        "case_number": [f"JE{v:06d}" for v in rng.integers(0, 999_999, size=n)],
        "year": years,
        "month": pick(rng, MONTHS, n),
        "primary_type": pick(rng, PRIMARY_TYPES, n, _TYPE_WEIGHTS),
        "description": pick(rng, DESCRIPTIONS, n),
        "location_description": pick(rng, LOCATIONS, n),
        "arrest": pick(rng, ["true", "false"], n, [21, 79]),
        "domestic": pick(rng, ["true", "false"], n, [16, 84]),
        "beat": integers(rng, n, 111, 2535),
        "district": integers(rng, n, 1, 25),
        "ward": integers(rng, n, 1, 50),
        "community_area": integers(rng, n, 1, 77),
        "x_coordinate": [round(float(v), 1) for v in rng.normal(1_164_000, 17_000, size=n)],
        "y_coordinate": [round(float(v), 1) for v in rng.normal(1_885_000, 32_000, size=n)],
        "latitude": [round(float(v), 6) for v in rng.normal(41.84, 0.09, size=n)],
        "longitude": [round(float(v), 6) for v in rng.normal(-87.67, 0.06, size=n)],
    }
    frame = DataFrame.from_dict(data)
    assert frame.n_cols == N_COLS
    if not dirty:
        return frame, GroundTruth()
    injector = ErrorInjector(seed=seed + 1)
    return injector.inject_profile(
        frame, NUMERIC_ERROR_COLUMNS,
        missing=error_rate, outliers=error_rate / 2, mismatches=error_rate / 2,
    )
