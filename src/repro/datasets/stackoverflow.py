"""Synthetic StackOverflow developer survey (38,091 rows x 21 columns).

Matches the shape the paper reports for its StackOverflow dataset; the
compensation column is the Figure 1 running example (income grouped by
country and education).
"""

from __future__ import annotations

from repro.datasets.generators import (
    integers,
    lognormal,
    normals,
    pick,
    rng_for,
    scaled,
    sequential_ids,
)
from repro.datasets.inject import ErrorInjector, GroundTruth
from repro.frame import DataFrame

N_ROWS = 38_091
N_COLS = 21

COUNTRIES = [
    "United States", "India", "Germany", "United Kingdom", "Canada",
    "France", "Brazil", "Poland", "Netherlands", "Australia", "Spain",
    "Italy", "Sweden", "Bhutan", "Lesotho", "Nauru",
]
_COUNTRY_WEIGHTS = [
    20, 14, 9, 8, 6, 5, 5, 4, 4, 3, 3, 3, 2, 0.5, 0.4, 0.1,
]
DEGREES = ["BS", "MS", "PhD", "Associate", "Self-taught", "Bootcamp"]
_DEGREE_WEIGHTS = [38, 24, 7, 9, 17, 5]
DEV_TYPES = [
    "full-stack", "back-end", "front-end", "mobile", "data-science",
    "devops", "embedded", "qa",
]
EMPLOYMENT = ["full-time", "part-time", "freelance", "student", "unemployed"]
ORG_SIZES = ["1-9", "10-99", "100-999", "1000-9999", "10000+"]
REMOTE = ["remote", "hybrid", "in-person"]
VISIT_FREQ = ["daily", "weekly", "monthly", "rarely"]
SURVEY_EASE = ["easy", "neutral", "difficult"]
GENDERS = ["man", "woman", "non-binary", "undisclosed"]

_INCOME_MEDIAN = {
    "United States": 115_000, "India": 18_000, "Germany": 72_000,
    "United Kingdom": 76_000, "Canada": 80_000, "France": 55_000,
    "Brazil": 22_000, "Poland": 36_000, "Netherlands": 70_000,
    "Australia": 85_000, "Spain": 42_000, "Italy": 40_000,
    "Sweden": 62_000, "Bhutan": 9_000, "Lesotho": 7_000, "Nauru": 12_000,
}

NUMERIC_ERROR_COLUMNS = ["converted_comp_yearly", "years_code", "work_exp"]


def make_stackoverflow(scale: float | None = None, seed: int = 7,
                       dirty: bool = True,
                       error_rate: float = 0.01) -> tuple[DataFrame, GroundTruth]:
    """Generate the survey at ``scale`` (None = full 38,091 rows).

    With ``dirty=True`` the standard error profile is injected into the
    compensation/experience columns and the ground truth is returned.
    """
    n = scaled(N_ROWS, scale)
    rng = rng_for(seed)
    countries = pick(rng, COUNTRIES, n, _COUNTRY_WEIGHTS)
    ages = integers(rng, n, 18, 65)
    years_code = [max(0, age - 18 - int(rng.integers(0, 10))) for age in ages]
    incomes = []
    for country in countries:
        median = _INCOME_MEDIAN[country]
        incomes.append(float(rng.lognormal(mean=_log(median), sigma=0.45)))
    data = {
        "respondent": sequential_ids(n),
        "country": countries,
        "ed_level": pick(rng, DEGREES, n, _DEGREE_WEIGHTS),
        "dev_type": pick(rng, DEV_TYPES, n),
        "employment": pick(rng, EMPLOYMENT, n, [70, 8, 10, 8, 4]),
        "remote_work": pick(rng, REMOTE, n, [38, 42, 20]),
        "org_size": pick(rng, ORG_SIZES, n),
        "age": ages,
        "gender": pick(rng, GENDERS, n, [70, 22, 4, 4]),
        "years_code": years_code,
        "years_code_pro": [max(0, y - int(rng.integers(0, 6))) for y in years_code],
        "converted_comp_yearly": [round(v, 2) for v in incomes],
        "work_exp": [max(0, age - 22) for age in ages],
        "languages_num": integers(rng, n, 1, 12),
        "so_visit_freq": pick(rng, VISIT_FREQ, n, [45, 35, 15, 5]),
        "so_account_age": integers(rng, n, 0, 15),
        "job_sat": integers(rng, n, 0, 10),
        "survey_length_min": normals(rng, n, 21.0, 6.0),
        "survey_ease": pick(rng, SURVEY_EASE, n, [55, 35, 10]),
        "team_size": integers(rng, n, 1, 40),
        "uses_vcs": pick(rng, ["yes", "no"], n, [95, 5]),
    }
    frame = DataFrame.from_dict(data)
    assert frame.n_cols == N_COLS
    if not dirty:
        return frame, GroundTruth()
    injector = ErrorInjector(seed=seed + 1)
    return injector.inject_profile(
        frame, NUMERIC_ERROR_COLUMNS,
        missing=error_rate, outliers=error_rate / 2, mismatches=error_rate / 2,
    )


def _log(value: float) -> float:
    import math

    return math.log(value)
