"""Shared machinery for the synthetic dataset generators.

The paper evaluates on three public datasets (StackOverflow survey, Adult
Income, Chicago Crime).  Offline, we generate seeded synthetic datasets
matching each one's published shape — row/column counts, categorical
cardinalities, and plausible numeric marginals (see DESIGN.md §1 for why
this preserves the experiments' behaviour).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def rng_for(seed: int) -> np.random.Generator:
    """The canonical RNG for dataset generation."""
    return np.random.default_rng(seed)


def pick(rng: np.random.Generator, values: Sequence, n: int,
         weights: Sequence[float] | None = None) -> list:
    """Draw ``n`` values with optional (auto-normalized) weights."""
    if weights is not None:
        probabilities = np.asarray(weights, dtype=np.float64)
        probabilities = probabilities / probabilities.sum()
    else:
        probabilities = None
    indexes = rng.choice(len(values), size=n, p=probabilities)
    return [values[i] for i in indexes]


def lognormal(rng: np.random.Generator, n: int, median: float,
              sigma: float = 0.6, round_to: int = 1) -> list:
    """Right-skewed positive values (incomes, compensation)."""
    draws = rng.lognormal(mean=np.log(median), sigma=sigma, size=n)
    return [round(float(v), round_to) if round_to else float(v) for v in draws]


def integers(rng: np.random.Generator, n: int, low: int, high: int) -> list:
    """Uniform integers in ``[low, high]``."""
    return [int(v) for v in rng.integers(low, high + 1, size=n)]


def normals(rng: np.random.Generator, n: int, mean: float, std: float,
            round_to: int = 2) -> list:
    """Gaussian values."""
    draws = rng.normal(mean, std, size=n)
    return [round(float(v), round_to) for v in draws]


def sequential_ids(n: int, start: int = 1) -> list:
    """A monotonically increasing id column."""
    return list(range(start, start + n))


def scaled(n_rows: int, scale: float | None) -> int:
    """Apply an optional scale factor to a row count (at least 50 rows)."""
    if scale is None:
        return n_rows
    return max(50, int(round(n_rows * scale)))
