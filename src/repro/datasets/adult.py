"""Synthetic Adult Income dataset (48,843 rows x 15 columns).

Matches the shape of the UCI/Kaggle Adult Income dataset the paper uses.
"""

from __future__ import annotations

from repro.datasets.generators import integers, pick, rng_for, scaled
from repro.datasets.inject import ErrorInjector, GroundTruth
from repro.frame import DataFrame

N_ROWS = 48_843
N_COLS = 15

WORKCLASSES = [
    "Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
    "Local-gov", "State-gov", "Without-pay",
]
EDUCATIONS = [
    "HS-grad", "Some-college", "Bachelors", "Masters", "Assoc-voc",
    "11th", "Assoc-acdm", "10th", "7th-8th", "Prof-school", "9th",
    "Doctorate", "12th", "5th-6th", "1st-4th", "Preschool",
]
MARITAL = [
    "Married-civ-spouse", "Never-married", "Divorced", "Separated",
    "Widowed", "Married-spouse-absent",
]
OCCUPATIONS = [
    "Prof-specialty", "Craft-repair", "Exec-managerial", "Adm-clerical",
    "Sales", "Other-service", "Machine-op-inspct", "Transport-moving",
    "Handlers-cleaners", "Farming-fishing", "Tech-support",
    "Protective-serv", "Priv-house-serv", "Armed-Forces",
]
RELATIONSHIPS = [
    "Husband", "Not-in-family", "Own-child", "Unmarried", "Wife",
    "Other-relative",
]
RACES = ["White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"]
SEXES = ["Male", "Female"]
COUNTRIES = [
    "United-States", "Mexico", "Philippines", "Germany", "Canada",
    "Puerto-Rico", "El-Salvador", "India", "Cuba", "England", "China",
]

NUMERIC_ERROR_COLUMNS = ["capital_gain", "hours_per_week", "fnlwgt"]


def make_adult_income(scale: float | None = None, seed: int = 11,
                      dirty: bool = True,
                      error_rate: float = 0.01) -> tuple[DataFrame, GroundTruth]:
    """Generate the Adult Income dataset at ``scale`` (None = 48,843 rows)."""
    n = scaled(N_ROWS, scale)
    rng = rng_for(seed)
    ages = integers(rng, n, 17, 90)
    education = pick(rng, EDUCATIONS, n)
    education_num = [EDUCATIONS.index(e) + 1 for e in education]
    capital_gain = [
        0 if rng.random() < 0.92 else int(rng.lognormal(8.5, 1.0))
        for _ in range(n)
    ]
    capital_loss = [
        0 if rng.random() < 0.95 else int(rng.normal(1870, 380))
        for _ in range(n)
    ]
    data = {
        "age": ages,
        "workclass": pick(rng, WORKCLASSES, n, [74, 8, 4, 3, 7, 4, 0.2]),
        "fnlwgt": [int(v) for v in rng.lognormal(12.0, 0.55, size=n)],
        "education": education,
        "education_num": education_num,
        "marital_status": pick(rng, MARITAL, n, [46, 33, 14, 3, 3, 1]),
        "occupation": pick(rng, OCCUPATIONS, n),
        "relationship": pick(rng, RELATIONSHIPS, n, [40, 26, 15, 11, 5, 3]),
        "race": pick(rng, RACES, n, [85, 10, 3, 1, 1]),
        "sex": pick(rng, SEXES, n, [67, 33]),
        "capital_gain": capital_gain,
        "capital_loss": capital_loss,
        "hours_per_week": integers(rng, n, 1, 99),
        "native_country": pick(
            rng, COUNTRIES, n, [90, 2, 1, 1, 1, 1, 1, 1, 0.7, 0.7, 0.6]
        ),
        "income_bracket": pick(rng, ["<=50K", ">50K"], n, [76, 24]),
    }
    frame = DataFrame.from_dict(data)
    assert frame.n_cols == N_COLS
    if not dirty:
        return frame, GroundTruth()
    injector = ErrorInjector(seed=seed + 1)
    return injector.inject_profile(
        frame, NUMERIC_ERROR_COLUMNS,
        missing=error_rate, outliers=error_rate / 2, mismatches=error_rate / 2,
    )
