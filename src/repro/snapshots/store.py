"""Snapshot stores: differential vs. full-copy.

:class:`DifferentialStore` is what the session uses — it keeps one
:class:`~repro.snapshots.delta.DeltaSnapshot` per wrangling operation and can
persist them as JSON lines.  :class:`FullCopyStore` is the strawman the paper
argues against ("avoiding the overhead of storing full copies after each
repair", §6.3); it exists so the A3 ablation benchmark can measure the gap.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import SnapshotError
from repro.snapshots.delta import DeltaSnapshot


class DifferentialStore:
    """Ordered log of deltas with byte accounting and persistence."""

    kind = "differential"

    def __init__(self) -> None:
        self._deltas: list[DeltaSnapshot] = []

    def __len__(self) -> int:
        return len(self._deltas)

    def record(self, delta: DeltaSnapshot) -> None:
        """Append one operation's delta."""
        self._deltas.append(delta)

    def deltas(self) -> list[DeltaSnapshot]:
        """The recorded deltas, oldest first (do not mutate)."""
        return list(self._deltas)

    def total_bytes(self) -> int:
        """Total approximate storage for all recorded snapshots."""
        return sum(delta.size_bytes() for delta in self._deltas)

    def cumulative(self) -> DeltaSnapshot:
        """All recorded deltas composed into one."""
        combined = DeltaSnapshot()
        for delta in self._deltas:
            combined = combined.compose(delta)
        return combined

    def compact(self, keep_last: int = 0) -> int:
        """Merge all but the last ``keep_last`` deltas into one.

        Returns the number of deltas eliminated.  Compaction preserves the
        cumulative effect but individual undo steps inside the compacted
        prefix are no longer addressable — the session only compacts below
        its undo horizon.
        """
        if keep_last < 0:
            raise SnapshotError("keep_last must be non-negative")
        boundary = len(self._deltas) - keep_last
        if boundary <= 1:
            return 0
        head = self._deltas[:boundary]
        combined = DeltaSnapshot()
        for delta in head:
            combined = combined.compose(delta)
        removed = len(head) - 1
        self._deltas = [combined] + self._deltas[boundary:]
        return removed

    def save(self, path: str | Path) -> None:
        """Write the store as JSON lines."""
        with open(path, "w", encoding="utf-8") as handle:
            for delta in self._deltas:
                handle.write(json.dumps(delta.to_dict(), default=str) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "DifferentialStore":
        """Read a store back from JSON lines."""
        store = cls()
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    store.record(DeltaSnapshot.from_dict(json.loads(line)))
        return store


class FullCopyStore:
    """Stores a full copy of the dataset after every operation (baseline)."""

    kind = "full"

    def __init__(self) -> None:
        self._states: list[dict] = []

    def __len__(self) -> int:
        return len(self._states)

    def record_state(self, rows: dict) -> None:
        """Store a deep copy of ``row_id -> {column: value}``."""
        self._states.append({
            row_id: dict(values) for row_id, values in rows.items()
        })

    def state(self, index: int) -> dict:
        """The stored state at position ``index``."""
        return self._states[index]

    def total_bytes(self) -> int:
        """Total approximate storage for all stored copies."""
        return sum(
            len(json.dumps(state, default=str)) for state in self._states
        )
