"""Differential snapshots.

The paper's storage layer avoids "the overhead of storing full copies after
each repair" (§6.3) by recording, per wrangling operation, only the rows it
deleted, inserted, or updated.  A :class:`DeltaSnapshot` is exactly that
record; it is invertible (undo), composable (compaction), and
JSON-serializable (persistence).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import SnapshotError


@dataclass
class DeltaSnapshot:
    """The difference between two consecutive dataset states.

    Attributes:
        deleted: ``row_id -> {column: value}`` — full content of removed rows.
        inserted: ``row_id -> {column: value}`` — full content of added rows.
        updated: ``row_id -> {column: (old, new)}`` — changed cells.
        label: free-form provenance (usually the repair description).
    """

    deleted: dict = field(default_factory=dict)
    inserted: dict = field(default_factory=dict)
    updated: dict = field(default_factory=dict)
    label: str = ""

    # -- queries ---------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the delta records no change."""
        return not (self.deleted or self.inserted or self.updated)

    def row_ids(self) -> set:
        """Every row id the delta touches."""
        return set(self.deleted) | set(self.inserted) | set(self.updated)

    def size_bytes(self) -> int:
        """Approximate serialized size — the storage-efficiency metric."""
        return len(json.dumps(self.to_dict(), default=str))

    # -- algebra ---------------------------------------------------------------

    def inverse(self) -> "DeltaSnapshot":
        """The delta that undoes this one."""
        return DeltaSnapshot(
            deleted=dict(self.inserted),
            inserted=dict(self.deleted),
            updated={
                row_id: {col: (new, old) for col, (old, new) in cells.items()}
                for row_id, cells in self.updated.items()
            },
            label=f"undo({self.label})" if self.label else "undo",
        )

    def compose(self, later: "DeltaSnapshot") -> "DeltaSnapshot":
        """The single delta equivalent to applying ``self`` then ``later``.

        Used by snapshot compaction to merge runs of small deltas.
        """
        deleted = dict(self.deleted)
        inserted = dict(self.inserted)
        updated = {row: dict(cells) for row, cells in self.updated.items()}

        for row_id, cells in later.updated.items():
            if row_id in inserted:
                # row created by self, then modified: fold into the insert
                for col, (_old, new) in cells.items():
                    inserted[row_id][col] = new
            elif row_id in updated:
                for col, (old, new) in cells.items():
                    if col in updated[row_id]:
                        first_old = updated[row_id][col][0]
                        updated[row_id][col] = (first_old, new)
                    else:
                        updated[row_id][col] = (old, new)
            else:
                updated[row_id] = dict(cells)

        for row_id, values in later.deleted.items():
            if row_id in inserted:
                # created then destroyed within the window: net nothing
                del inserted[row_id]
                continue
            original = dict(values)
            if row_id in updated:
                # record the row as it was *before* self's updates
                for col, (old, _new) in updated.pop(row_id).items():
                    original[col] = old
            deleted[row_id] = original

        for row_id, values in later.inserted.items():
            if row_id in deleted:
                original = deleted.pop(row_id)
                changes = {
                    col: (original.get(col), value)
                    for col, value in values.items()
                    if original.get(col) != value
                }
                if changes:
                    updated[row_id] = changes
            else:
                inserted[row_id] = dict(values)

        label = " + ".join(part for part in (self.label, later.label) if part)
        return DeltaSnapshot(deleted, inserted, updated, label)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form for JSON storage."""
        return {
            "label": self.label,
            "deleted": {str(k): v for k, v in self.deleted.items()},
            "inserted": {str(k): v for k, v in self.inserted.items()},
            "updated": {
                str(row_id): {col: [old, new] for col, (old, new) in cells.items()}
                for row_id, cells in self.updated.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeltaSnapshot":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                deleted={int(k): dict(v) for k, v in data.get("deleted", {}).items()},
                inserted={int(k): dict(v) for k, v in data.get("inserted", {}).items()},
                updated={
                    int(row_id): {col: (pair[0], pair[1]) for col, pair in cells.items()}
                    for row_id, cells in data.get("updated", {}).items()
                },
                label=data.get("label", ""),
            )
        except (KeyError, ValueError, TypeError, IndexError) as exc:
            raise SnapshotError(f"malformed delta payload: {exc}") from exc

    def merge_disjoint(self, other: "DeltaSnapshot") -> "DeltaSnapshot":
        """Union of two deltas produced by one logical operation.

        Unlike :meth:`compose`, both deltas are relative to the *same* base
        state (e.g. a repair plan that deletes some rows and updates others).
        Row sets may overlap only between updates on different columns.
        """
        combined = DeltaSnapshot(
            deleted={**self.deleted, **other.deleted},
            inserted={**self.inserted, **other.inserted},
            updated={row: dict(cells) for row, cells in self.updated.items()},
            label=self.label or other.label,
        )
        for row_id, cells in other.updated.items():
            combined.updated.setdefault(row_id, {}).update(cells)
        return combined
