"""``repro.snapshots`` — differential snapshot storage (Fig 2 ⑤, §6.3).

Provides invertible, composable per-operation deltas
(:class:`~repro.snapshots.delta.DeltaSnapshot`), the session's
:class:`~repro.snapshots.store.DifferentialStore`, and the full-copy baseline
used by the storage ablation.
"""

from repro.snapshots.delta import DeltaSnapshot
from repro.snapshots.store import DifferentialStore, FullCopyStore

__all__ = ["DeltaSnapshot", "DifferentialStore", "FullCopyStore"]
