"""Histogram chart with anomaly overlay."""

from __future__ import annotations

from dataclasses import dataclass

from repro.charts.base import HISTOGRAM, ChartModel, Mark
from repro.sampling.aggregation import histogram


@dataclass
class HistogramChart(ChartModel):
    """Distribution of one numeric column; bins with errors are tinted."""

    session: object = None
    numerical: str = ""
    bins: int = 20

    def __post_init__(self):
        self.kind = HISTOGRAM
        self.x_label = self.numerical
        self.y_label = "count"
        self.title = f"distribution of {self.numerical}"
        self.refresh()

    def refresh(self) -> None:
        session = self.session
        backend = session.backend
        row_ids = backend.all_row_ids()
        values = backend.values(self.numerical, row_ids)
        error_rows = session.engine.index.rows_with_errors()
        mask = [row_id in error_rows for row_id in row_ids]
        binned = histogram(values, bins=self.bins, anomalous_mask=mask)
        marks = []
        for i in range(binned.n_bins):
            anomaly_count = binned.anomaly_counts[i]
            marks.append(Mark(
                x=(binned.edges[i] + binned.edges[i + 1]) / 2,
                y=binned.counts[i],
                color="#d62728" if anomaly_count else "#c7c7c7",
                size=float(binned.counts[i]),
                label=f"[{binned.edges[i]:.4g}, {binned.edges[i + 1]:.4g})",
                anomaly_count=anomaly_count,
            ))
        self.marks = marks
