"""SVG rendering of chart models (a minimal, dependency-free writer)."""

from __future__ import annotations

from repro.charts.base import ChartModel

_WIDTH = 480
_HEIGHT = 280
_PAD = 40


def render_svg(chart: ChartModel) -> str:
    """Render a chart as an SVG document string.

    Bars (heatmap/histogram marks) become rects scaled to the value range;
    scatter/line marks become circles.  Mark colours carry the anomaly
    colour coding.
    """
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">',
        f'<title>{_escape(chart.title)}</title>',
        f'<text x="{_PAD}" y="20" font-size="13">{_escape(chart.title)}</text>',
    ]
    marks = chart.marks
    if marks:
        magnitudes = [_magnitude(m) for m in marks]
        top = max((abs(v) for v in magnitudes), default=1.0) or 1.0
        usable_w = _WIDTH - 2 * _PAD
        usable_h = _HEIGHT - 2 * _PAD
        slot = usable_w / len(marks)
        if chart.kind in ("heatmap", "histogram"):
            for i, (mark, value) in enumerate(zip(marks, magnitudes)):
                bar_h = usable_h * abs(value) / top
                x = _PAD + i * slot
                y = _HEIGHT - _PAD - bar_h
                parts.append(
                    f'<rect x="{x:.1f}" y="{y:.1f}" width="{max(slot - 2, 1):.1f}" '
                    f'height="{bar_h:.1f}" fill="{mark.color}">'
                    f'<title>{_escape(mark.label)}</title></rect>'
                )
        else:
            xs = [float(m.x) for m in marks]
            ys = [float(m.y) for m in marks]
            x_lo, x_hi = min(xs), max(xs)
            y_lo, y_hi = min(ys), max(ys)
            x_span = (x_hi - x_lo) or 1.0
            y_span = (y_hi - y_lo) or 1.0
            for mark, x, y in zip(marks, xs, ys):
                px = _PAD + usable_w * (x - x_lo) / x_span
                py = _HEIGHT - _PAD - usable_h * (y - y_lo) / y_span
                radius = 4 if mark.is_anomalous else 2
                parts.append(
                    f'<circle cx="{px:.1f}" cy="{py:.1f}" r="{radius}" '
                    f'fill="{mark.color}"><title>{_escape(mark.label)}</title>'
                    f'</circle>'
                )
    parts.append("</svg>")
    return "\n".join(parts)


def _magnitude(mark) -> float:
    if isinstance(mark.y, (int, float)) and mark.y is not None:
        return float(mark.y)
    return float(mark.size)


def _escape(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
