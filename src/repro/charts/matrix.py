"""The chart matrix (§2.2).

"Buckaroo generates a chart matrix where data groups are represented in a
heat map" — one heatmap per (categorical, numerical) pair, kept in sync
with the session: applying a repair refreshes exactly the charts whose
pairs were affected.
"""

from __future__ import annotations

from repro.charts.heatmap import HeatmapChart


class ChartMatrix:
    """All pair charts for a session, refreshed incrementally."""

    def __init__(self, session):
        self.session = session
        self.charts: dict[tuple[str, str], HeatmapChart] = {}
        self.refreshes = 0
        for cat, num in session.pairs():
            self.charts[(cat, num)] = HeatmapChart(
                session=session, categorical=cat, numerical=num,
            )
        session.add_view_listener(self._on_replot)

    def __len__(self) -> int:
        return len(self.charts)

    def chart(self, cat: str, num: str) -> HeatmapChart:
        """The chart for one pair (raises KeyError when absent)."""
        return self.charts[(cat, num)]

    def pairs(self) -> list[tuple[str, str]]:
        """All pairs shown in the matrix."""
        return list(self.charts)

    def most_anomalous(self, limit: int = 5) -> list[HeatmapChart]:
        """Charts ordered by total anomalies shown (worst first)."""
        ordered = sorted(
            self.charts.values(),
            key=lambda c: -sum(m.anomaly_count for m in c.marks),
        )
        return ordered[:limit]

    def _on_replot(self, pairs) -> None:
        """Session callback: refresh only the affected charts."""
        for pair in pairs:
            chart = self.charts.get(tuple(pair))
            if chart is not None:
                chart.refresh()
                self.refreshes += 1
