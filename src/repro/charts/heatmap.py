"""Heatmap chart: the chart-matrix cell type (Figure 1 B).

One mark per group of the bound (categorical, numerical) pair, colour-coded
by the group's dominant anomaly type.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.charts.base import HEATMAP, ChartModel, Mark
from repro.core.ranking import dominant_error_color


@dataclass
class HeatmapChart(ChartModel):
    """Category x mean-value heatmap for one chart pair."""

    session: object = None
    categorical: str = ""
    numerical: str = ""

    def __post_init__(self):
        self.kind = HEATMAP
        self.x_label = self.categorical
        self.y_label = self.numerical
        self.title = f"{self.numerical} by {self.categorical}"
        self.refresh()

    def refresh(self) -> None:
        """Rebuild marks from the session's series and error index."""
        session = self.session
        series = session.series(self.categorical, self.numerical)
        index = session.engine.index
        registry = session.detectors
        marks = []
        for position, category in enumerate(series.categories):
            keys = [
                key for key in session.group_manager.keys_for_pair(
                    self.categorical, self.numerical)
                if key.category == category
            ]
            key = keys[0] if keys else None
            anomaly_count = len(index.anomalies(key)) if key else 0
            color = dominant_error_color(index, registry, key) if key else "#c7c7c7"
            marks.append(Mark(
                x=category,
                y=series.means[position],
                color=color,
                group=key,
                size=float(series.counts[position]),
                label=f"{category}: n={series.counts[position]}, "
                      f"errors={anomaly_count}",
                anomaly_count=anomaly_count,
            ))
        self.marks = marks
