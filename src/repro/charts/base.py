"""Headless chart model.

Buckaroo "supports 4 chart types: heatmaps, line charts, scatterplots, and
histograms" (Figure 1) and treats them as *active substrates*: marks carry
their group identity and anomaly colour so clicking a mark selects a group
for repair.  This module defines the mark/chart abstractions; rendering to
text or SVG lives in :mod:`repro.charts.render_text` / ``render_svg``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from repro.core.types import NO_ANOMALY_COLOR, GroupKey

HEATMAP = "heatmap"
HISTOGRAM = "histogram"
SCATTER = "scatter"
LINE = "line"

CHART_KINDS = (HEATMAP, HISTOGRAM, SCATTER, LINE)


@dataclass
class Mark:
    """One clickable visual element.

    ``group`` links the mark back to the data group it renders — the
    bidirectional coupling that lets a visual selection trigger a repair.
    """

    x: object
    y: object
    color: str = NO_ANOMALY_COLOR
    group: Optional[GroupKey] = None
    size: float = 1.0
    label: str = ""
    anomaly_count: int = 0

    @property
    def is_anomalous(self) -> bool:
        return self.anomaly_count > 0


@dataclass
class ChartModel(ABC):
    """A chart: a kind, axis bindings, and its current marks."""

    kind: str = ""
    x_label: str = ""
    y_label: str = ""
    marks: list = field(default_factory=list)
    title: str = ""

    @abstractmethod
    def refresh(self) -> None:
        """Recompute marks from the session's current state."""

    def mark_at(self, index: int) -> Mark:
        """The mark at ``index`` (click target resolution)."""
        return self.marks[index]

    def groups_shown(self) -> list[GroupKey]:
        """Groups with at least one mark, in mark order."""
        seen: dict = {}
        for mark in self.marks:
            if mark.group is not None and mark.group not in seen:
                seen[mark.group] = None
        return list(seen)

    def anomalous_marks(self) -> list[Mark]:
        """Marks carrying at least one anomaly."""
        return [mark for mark in self.marks if mark.is_anomalous]
