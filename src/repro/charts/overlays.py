"""Anomaly colour overlays and the chart legend (Figure 1's colour coding)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detectors import DetectorRegistry
from repro.core.types import NO_ANOMALY_COLOR


@dataclass(frozen=True)
class LegendEntry:
    """One legend swatch: an error class and its colour."""

    code: str
    label: str
    color: str


def build_legend(registry: DetectorRegistry) -> list[LegendEntry]:
    """The legend for all registered error types plus the clean colour."""
    entries = [
        LegendEntry(d.code, d.error_type.label, d.error_type.color)
        for d in registry.all()
    ]
    entries.append(LegendEntry("none", "No anomalies", NO_ANOMALY_COLOR))
    return entries


def severity_alpha(anomaly_count: int, group_size: int) -> float:
    """Opacity encoding anomaly density within a mark (0.2 .. 1.0)."""
    if group_size <= 0 or anomaly_count <= 0:
        return 0.2
    density = min(anomaly_count / group_size, 1.0)
    return 0.2 + 0.8 * density
