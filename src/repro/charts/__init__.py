"""``repro.charts`` — headless interactive charts (§2.2, Figure 1).

The four paper chart types (heatmap, histogram, scatter, line), the chart
matrix, anomaly colour overlays, the click-to-select model, and text/SVG
renderers.  Charts are *active substrates*: marks resolve back to groups so
selections drive repairs.
"""

from repro.charts.base import (
    CHART_KINDS,
    HEATMAP,
    HISTOGRAM,
    LINE,
    SCATTER,
    ChartModel,
    Mark,
)
from repro.charts.heatmap import HeatmapChart
from repro.charts.histogram import HistogramChart
from repro.charts.line import LineChart
from repro.charts.matrix import ChartMatrix
from repro.charts.overlays import LegendEntry, build_legend, severity_alpha
from repro.charts.render_svg import render_svg
from repro.charts.render_text import render_legend, render_text
from repro.charts.scatter import ScatterChart
from repro.charts.selection import SelectionModel

__all__ = [
    "CHART_KINDS", "ChartMatrix", "ChartModel", "HEATMAP", "HISTOGRAM",
    "HeatmapChart", "HistogramChart", "LINE", "LegendEntry", "LineChart",
    "Mark", "SCATTER", "ScatterChart", "SelectionModel", "build_legend",
    "render_legend", "render_svg", "render_text", "severity_alpha",
]
