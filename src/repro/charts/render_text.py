"""ASCII rendering of chart models (for examples and terminal demos)."""

from __future__ import annotations

from repro.charts.base import HEATMAP, HISTOGRAM, ChartModel

_BAR = "#"
_ANOMALY_BAR = "!"


def render_text(chart: ChartModel, width: int = 40) -> str:
    """Render a chart as fixed-width text with anomaly markers.

    Bars use ``#``; marks carrying anomalies use ``!`` so errors stay
    visible even without colour.
    """
    lines = [f"{chart.title}  [{chart.kind}]"]
    if not chart.marks:
        lines.append("  (no data)")
        return "\n".join(lines)
    max_size = max((abs(_magnitude(m)) for m in chart.marks), default=1.0) or 1.0
    for mark in chart.marks:
        magnitude = _magnitude(mark)
        bar_len = int(round(width * abs(magnitude) / max_size))
        glyph = _ANOMALY_BAR if mark.is_anomalous else _BAR
        bar = glyph * max(bar_len, 1 if magnitude else 0)
        label = _label(mark, chart)
        suffix = f"  ({mark.anomaly_count} errors)" if mark.is_anomalous else ""
        lines.append(f"  {label:<22} {bar}{suffix}")
    return "\n".join(lines)


def _magnitude(mark) -> float:
    if isinstance(mark.y, (int, float)) and mark.y is not None:
        return float(mark.y)
    return float(mark.size)


def _label(mark, chart: ChartModel) -> str:
    if chart.kind in (HEATMAP,):
        return str(mark.x)[:22]
    if chart.kind == HISTOGRAM:
        return mark.label[:22]
    return f"{mark.x!r:.22}"


def render_legend(entries) -> str:
    """Render a legend (from :func:`repro.charts.overlays.build_legend`)."""
    return "\n".join(
        f"  {entry.color}  {entry.label} ({entry.code})" for entry in entries
    )
