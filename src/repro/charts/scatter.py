"""Scatterplot chart over an error-first sample.

Plots two numeric columns; rows come from the error-first sampler so every
anomalous row is drawn even under a tight render budget (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.charts.base import SCATTER, ChartModel, Mark
from repro.core.types import NO_ANOMALY_COLOR
from repro.frame.parsing import coerce_to_number
from repro.sampling.error_first import ErrorFirstSampler


@dataclass
class ScatterChart(ChartModel):
    """x/y scatter with anomalous rows always included and coloured."""

    session: object = None
    x_col: str = ""
    y_col: str = ""
    budget: int = 500

    def __post_init__(self):
        self.kind = SCATTER
        self.x_label = self.x_col
        self.y_label = self.y_col
        self.title = f"{self.y_col} vs {self.x_col}"
        self.refresh()

    def refresh(self) -> None:
        session = self.session
        backend = session.backend
        index = session.engine.index
        sampler = ErrorFirstSampler(
            budget=self.budget,
            context_per_group=session.config.context_sample_size,
            seed=session.config.seed,
        )
        groups = [
            session.group_manager.group(key)
            for key in session.group_manager.keys()
        ]
        sample = sampler.sample_groups(groups, index) if groups else None
        row_ids = sample.row_ids if sample else backend.all_row_ids()[:self.budget]
        xs = backend.values(self.x_col, row_ids)
        ys = backend.values(self.y_col, row_ids)
        marks = []
        for row_id, raw_x, raw_y in zip(row_ids, xs, ys):
            x = coerce_to_number(raw_x)
            y = coerce_to_number(raw_y)
            if x is None or y is None:
                continue
            errors = index.row_errors(row_id)
            color = NO_ANOMALY_COLOR
            group = None
            if errors:
                code, group = next(iter(errors))
                color = session.detectors.error_type(code).color
            marks.append(Mark(
                x=x, y=y, color=color, group=group,
                label=f"row {row_id}", anomaly_count=len(errors),
            ))
        self.marks = marks
