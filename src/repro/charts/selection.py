"""Selection model: clicking marks signals repair intent (Figure 1).

"Users click marks to signal intent to fix" — a selection resolves to the
group key behind the mark, which the repair kit then builds suggestions for.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.charts.base import ChartModel, Mark
from repro.core.types import GroupKey
from repro.errors import BuckarooError


class SelectionModel:
    """Tracks the selected group and notifies subscribers."""

    def __init__(self) -> None:
        self.selected: Optional[GroupKey] = None
        self.selected_mark: Optional[Mark] = None
        self._listeners: list[Callable] = []

    def on_change(self, listener: Callable) -> None:
        """Subscribe to selection changes (called with the new key/None)."""
        self._listeners.append(listener)

    def select_mark(self, chart: ChartModel, mark_index: int) -> GroupKey:
        """Click a mark: selects the group it renders."""
        mark = chart.mark_at(mark_index)
        if mark.group is None:
            raise BuckarooError("this mark is not linked to a data group")
        self.selected = mark.group
        self.selected_mark = mark
        self._notify()
        return mark.group

    def select_group(self, key: GroupKey) -> None:
        """Programmatic selection by group key."""
        self.selected = key
        self.selected_mark = None
        self._notify()

    def clear(self) -> None:
        """Deselect."""
        self.selected = None
        self.selected_mark = None
        self._notify()

    def _notify(self) -> None:
        for listener in self._listeners:
            listener(self.selected)
