"""Line chart with min/max decimation for large series."""

from __future__ import annotations

from dataclasses import dataclass

from repro.charts.base import LINE, ChartModel, Mark
from repro.frame.parsing import coerce_to_number
from repro.sampling.aggregation import minmax_decimate


@dataclass
class LineChart(ChartModel):
    """y over x, decimated to ``max_points`` without losing extremes."""

    session: object = None
    x_col: str = ""
    y_col: str = ""
    max_points: int = 200

    def __post_init__(self):
        self.kind = LINE
        self.x_label = self.x_col
        self.y_label = self.y_col
        self.title = f"{self.y_col} over {self.x_col}"
        self.refresh()

    def refresh(self) -> None:
        backend = self.session.backend
        row_ids = backend.all_row_ids()
        xs, ys = [], []
        for raw_x, raw_y in zip(
            backend.values(self.x_col, row_ids),
            backend.values(self.y_col, row_ids),
        ):
            x = coerce_to_number(raw_x)
            y = coerce_to_number(raw_y)
            if x is not None and y is not None:
                xs.append(x)
                ys.append(y)
        xs, ys = minmax_decimate(xs, ys, self.max_points)
        self.marks = [Mark(x=x, y=y) for x, y in zip(xs, ys)]
