"""Hash and B+tree index wrappers used by minidb tables.

These are the structures behind the paper's claim that Buckaroo "creates
Postgres indexes for all the attribute combinations in the charts for
efficient data lookups" (§2): group membership queries
(``WHERE country = ?``) hit a hash or B+tree index instead of scanning.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import IntegrityError
from repro.minidb.btree import BTree
from repro.minidb.expressions import sort_key


def normalize_key(value):
    """Normalize a column value for index equality (1 == 1.0, bool as int)."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return value


class HashIndex:
    """Equality-only index: value -> set of rowids.  NULLs are not indexed."""

    kind = "hash"

    def __init__(self, name: str, column: str, position: int, unique: bool = False):
        self.name = name
        self.column = column
        self.position = position
        self.unique = unique
        self._buckets: dict = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def n_keys(self) -> int:
        """Number of distinct indexed values."""
        return len(self._buckets)

    def insert(self, value, rowid: int) -> None:
        """Index ``rowid`` under ``value`` (NULL is skipped)."""
        if value is None:
            return
        key = normalize_key(value)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {rowid}
            return
        if self.unique and bucket:
            raise IntegrityError(
                f"UNIQUE index {self.name}: duplicate value {value!r}"
            )
        bucket.add(rowid)

    def remove(self, value, rowid: int) -> None:
        """Drop the pair if present."""
        if value is None:
            return
        key = normalize_key(value)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(rowid)
        if not bucket:
            del self._buckets[key]

    def lookup(self, value) -> set:
        """Rowids whose column equals ``value`` (empty for NULL)."""
        if value is None:
            return set()
        return set(self._buckets.get(normalize_key(value), ()))

    def keys(self) -> list:
        """Distinct indexed values (normalized)."""
        return list(self._buckets)


class BTreeIndex:
    """Ordered index supporting equality and range scans. NULLs not indexed."""

    kind = "btree"

    def __init__(self, name: str, column: str, position: int, unique: bool = False,
                 order: int = 64):
        self.name = name
        self.column = column
        self.position = position
        self.unique = unique
        self._tree = BTree(order=order)

    def __len__(self) -> int:
        return len(self._tree)

    def insert(self, value, rowid: int) -> None:
        """Index ``rowid`` under ``value`` (NULL is skipped)."""
        if value is None:
            return
        key = sort_key(value)
        if self.unique and self._tree.search(key):
            raise IntegrityError(
                f"UNIQUE index {self.name}: duplicate value {value!r}"
            )
        self._tree.insert(key, rowid)

    def remove(self, value, rowid: int) -> None:
        """Drop the pair if present."""
        if value is None:
            return
        self._tree.remove(sort_key(value), rowid)

    def lookup(self, value) -> set:
        """Rowids whose column equals ``value``."""
        if value is None:
            return set()
        return self._tree.search(sort_key(value))

    def range(self, low=None, high=None, include_low: bool = True,
              include_high: bool = True) -> Iterator[int]:
        """Yield rowids with column values in the given range, in key order."""
        low_key = sort_key(low) if low is not None else None
        high_key = sort_key(high) if high is not None else None
        for _, rowids in self._tree.range_scan(low_key, high_key, include_low, include_high):
            yield from rowids

    def numeric_range(self, low=None, high=None, include_low: bool = True,
                      include_high: bool = True) -> Iterator[int]:
        """Like :meth:`range` but never crosses into text keys.

        Text sorts above every number, so an unbounded-high scan would
        otherwise sweep up contaminating text values.  The outlier detector
        uses this for its two tail scans.
        """
        low_key = sort_key(low) if low is not None else (1, float("-inf"))
        high_key = sort_key(high) if high is not None else (1, float("inf"))
        for _, rowids in self._tree.range_scan(low_key, high_key, include_low, include_high):
            yield from rowids

    def numeric_min(self):
        """The smallest numeric key, or None."""
        for key, _ in self._tree.range_scan((1, float("-inf")), (1, float("inf"))):
            return key[1]
        return None

    def numeric_max(self):
        """The largest numeric key, or None (O(keys) scan)."""
        last = None
        for key, _ in self._tree.range_scan((1, float("-inf")), (1, float("inf"))):
            last = key[1]
        return last
