"""Hash and B+tree index wrappers used by minidb tables.

These are the structures behind the paper's claim that Buckaroo "creates
Postgres indexes for all the attribute combinations in the charts for
efficient data lookups" (§2): group membership queries
(``WHERE country = ?``) hit a hash or B+tree index instead of scanning, and
two-attribute chart lookups (``WHERE cat = ? ORDER BY val LIMIT k``) walk a
single *composite* B+tree.

Both index kinds cover one **or more** columns:

* :class:`HashIndex` — equality only.  Keys are tuples of normalized
  values; rows with a NULL in any indexed column are skipped (SQL equality
  never matches NULL).
* :class:`BTreeIndex` — ordered.  Keys are NULL-aware sort-key tuples, so
  *every* row is indexed (NULLs sort first, matching ``ORDER BY``), and the
  rowids whose key contains a NULL are additionally tracked in
  :attr:`BTreeIndex.null_rowids`.  That full coverage is what lets the
  planner answer ``ORDER BY`` straight from a leaf walk even on nullable
  columns, forward or backward (DESC).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import IntegrityError, SerializationError
from repro.minidb.btree import BTree
from repro.minidb.invariants import holds_write_lock
from repro.minidb.expressions import sort_key

#: sorts above every real key component ((rank, primitive) with rank <= 2),
#: used to build the exclusive upper bound of a composite prefix scan
_ABOVE_ANY_COMPONENT = (3,)


def normalize_key(value):
    """Normalize a column value for index equality (1 == 1.0, bool as int)."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return value


def _as_columns(columns) -> tuple:
    """Accept a single column name or a sequence of them."""
    if isinstance(columns, str):
        return (columns,)
    return tuple(columns)


def _as_positions(positions) -> tuple:
    if isinstance(positions, int):
        return (positions,)
    return tuple(positions)


class _IndexBase:
    """Shared shape of both index kinds: columns, positions, row plumbing."""

    def __init__(self, name: str, columns, positions, unique: bool = False):
        self.name = name
        self.columns = _as_columns(columns)
        self.positions = _as_positions(positions)
        if len(self.columns) != len(self.positions):
            raise ValueError(
                f"index {name!r}: {len(self.columns)} columns for "
                f"{len(self.positions)} positions"
            )
        self.unique = unique
        # back-reference to the owning Table (set by Table.create_index);
        # lets UNIQUE enforcement distinguish live rows from dead MVCC
        # versions whose stale entries await garbage collection
        self.owner = None

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    @property
    def column(self) -> str:
        """First (or only) indexed column — legacy single-column accessor."""
        return self.columns[0]

    @property
    def position(self) -> int:
        """First (or only) indexed position — legacy single-column accessor."""
        return self.positions[0]

    def touches(self, changed_positions) -> bool:
        """True when an update to ``changed_positions`` affects this key."""
        return any(p in changed_positions for p in self.positions)

    def key_values(self, row: Sequence) -> tuple:
        """This index's key components extracted from a stored row."""
        return tuple(row[p] for p in self.positions)

    def entry_key(self, row: Sequence):
        """The normalized key this index files ``row`` under.

        Used by MVCC readers to re-check that a row *version* still
        matches the index entry it was reached through (stale entries of
        superseded versions stay until GC), and by GC itself to decide
        which entries died with a version.
        """
        return self._key(self.key_values(row))

    def probe_key(self, values: tuple):
        """The normalized key a probe for ``values`` targets (the expected
        entry key for an MVCC visible-version re-check)."""
        return self._key(values)

    def null_match(self, row: Sequence) -> bool:
        """True when ``row`` carries a NULL in any indexed column."""
        return any(row[p] is None for p in self.positions)

    @holds_write_lock
    def reindex_null(self, row: Sequence, rowid: int) -> None:
        """Re-assert NULL tracking for ``row`` (no-op for hash indexes).

        ``remove_values`` clears a rowid from the B+tree's NULL set even
        when another live version of the row still has a NULL key; undo
        and GC call this for each survivor to restore it.
        """

    def _values_of(self, value) -> tuple:
        """Normalize the legacy single-value API to a component tuple."""
        if self.n_columns == 1:
            return (value,)
        values = tuple(value)
        if len(values) != self.n_columns:
            raise ValueError(
                f"index {self.name!r} covers {self.n_columns} columns, "
                f"got {len(values)} values"
            )
        return values

    @holds_write_lock
    def _unique_conflict(self, existing, rowid: int, key):
        """Classify a UNIQUE key collision against MVCC liveness.

        ``existing`` are the rowids already filed under ``key``.  Returns
        ``(verdict, stale)`` where ``verdict`` is None (no violation),
        ``"dup"`` (another *current* row really holds the key), or
        ``"race"`` (the key is held or freed by another live transaction
        whose outcome is unknown — retryable), and ``stale`` lists the
        rowids whose entry under ``key`` belongs to a dead version
        awaiting GC — candidates for the targeted collection
        :meth:`_check_unique` runs.  Without an ``owner`` back-reference
        there is no liveness information and any other rowid is a
        duplicate (the strict pre-MVCC rule).
        """
        owner = self.owner
        if owner is None:
            dup = any(r != rowid for r in existing)
            return ("dup" if dup else None), []
        manager = owner.manager
        verdict = None
        stale = []
        own = owner.writing_txid
        for other in existing:
            if other == rowid:
                continue
            chain = owner.versions.get(other) if manager is not None else None
            if not chain:
                row = owner.rows.get(other)
                if row is not None and self.entry_key(row) == key:
                    return "dup", stale
                continue
            head = chain[-1]
            created, deleted = head.created, head.deleted
            if (created != own and manager.is_active(created)) or (
                deleted is not None and deleted != own
                and manager.is_active(deleted)
            ):
                # in flux by another live transaction: its abort could
                # resurface (or keep) the key — first-updater-wins
                verdict = "race"
                continue
            if deleted is not None:
                # deleted by us, or committed-deleted: a dead entry that
                # only GC will clear — remember it for targeted collection
                if deleted != own:
                    stale.append(other)
                continue
            if self.entry_key(head.values) == key:
                return "dup", stale
            # the head no longer carries this key: the entry under `key`
            # belongs to a superseded version of `other`
            stale.append(other)
        return verdict, stale

    @holds_write_lock
    def _check_unique(self, existing, rowid: int, values: tuple, key) -> None:
        verdict, stale = self._unique_conflict(existing, rowid, key)
        if stale:
            # Targeted GC: dead versions' stale entries under this key
            # would otherwise linger (and block) until a full pass whose
            # trigger — the last outstanding snapshot releasing — may be
            # long in coming.  We already hold the write lock; collect
            # exactly these rowids now.  gc_rowid respects the manager's
            # horizon, so versions an outstanding snapshot still sees
            # survive untouched.
            owner = self.owner
            manager = owner.manager if owner is not None else None
            if manager is not None:
                horizon = manager.horizon()
                for other in stale:
                    owner.gc_rowid(other, horizon, manager.is_active)
        if verdict == "dup":
            raise IntegrityError(
                f"UNIQUE index {self.name}: duplicate value "
                f"{values[0] if self.n_columns == 1 else values!r}"
            )
        if verdict == "race":
            raise SerializationError(
                f"UNIQUE index {self.name}: value "
                f"{values[0] if self.n_columns == 1 else values!r} is held "
                f"by a concurrent transaction"
            )

    # -- row-level maintenance (called by Table on every mutation) ----------

    @holds_write_lock
    def add_row(self, row: Sequence, rowid: int,
                check_unique: bool = True) -> None:
        self.insert_values(self.key_values(row), rowid,
                           check_unique=check_unique)

    @holds_write_lock
    def remove_row(self, row: Sequence, rowid: int) -> None:
        self.remove_values(self.key_values(row), rowid)

    # -- legacy single-value API (and tuple passthrough for composites) -----

    @holds_write_lock
    def insert(self, value, rowid: int) -> None:
        self.insert_values(self._values_of(value), rowid)

    @holds_write_lock
    def remove(self, value, rowid: int) -> None:
        self.remove_values(self._values_of(value), rowid)

    def lookup(self, value) -> set:
        return self.lookup_values(self._values_of(value))


class HashIndex(_IndexBase):
    """Equality-only index: value tuple -> set of rowids.  NULLs skipped."""

    kind = "hash"

    def __init__(self, name: str, columns, positions, unique: bool = False):
        super().__init__(name, columns, positions, unique)
        self._buckets: dict = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def n_keys(self) -> int:
        """Number of distinct indexed values."""
        return len(self._buckets)

    @holds_write_lock
    def insert_values(self, values: tuple, rowid: int,
                      check_unique: bool = True) -> None:
        """Index ``rowid`` under the component tuple (any NULL is skipped).

        ``check_unique=False`` skips UNIQUE enforcement — used when
        backfilling dead version-chain entries, whose keys may collide
        with live rows without constituting a violation.
        """
        if any(v is None for v in values):
            return
        key = self._key(values)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {rowid}
            return
        if self.unique and check_unique and bucket and bucket != {rowid}:
            # re-indexing the same rowid under its own key is never a
            # violation (MVCC updates may file a row twice transiently);
            # other rowids' entries count only if their version is live
            self._check_unique(bucket, rowid, values, key)
        # re-fetch: the targeted GC inside _check_unique may have emptied
        # and dropped the bucket we were holding
        self._buckets.setdefault(key, set()).add(rowid)

    @holds_write_lock
    def remove_values(self, values: tuple, rowid: int) -> None:
        """Drop the pair if present."""
        if any(v is None for v in values):
            return
        key = self._key(values)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(rowid)
        if not bucket:
            del self._buckets[key]

    def lookup_values(self, values: tuple) -> set:
        """Rowids whose columns equal ``values`` (empty when any is NULL)."""
        if any(v is None for v in values):
            return set()
        return set(self._buckets.get(self._key(values), ()))

    def keys(self) -> list:
        """Distinct indexed values (normalized; scalars for 1-column)."""
        if self.n_columns == 1:
            return [key[0] for key in self._buckets]
        return list(self._buckets)

    def _key(self, values: tuple) -> tuple:
        return tuple(normalize_key(v) for v in values)


class BTreeIndex(_IndexBase):
    """Ordered index: equality, ranges, and ordered walks in both directions.

    Every row is indexed.  Single-column keys are ``sort_key(value)``
    (preserving the ``(rank, primitive)`` shape older numeric helpers rely
    on); composite keys are tuples of those.  ``sort_key(None)`` ranks below
    every number and string, so NULLs occupy the front of the key space —
    exactly where ``ORDER BY`` puts them — and :attr:`null_rowids` records
    which rows carry a NULL in any indexed column.
    """

    kind = "btree"

    def __init__(self, name: str, columns, positions, unique: bool = False,
                 order: int = 64):
        super().__init__(name, columns, positions, unique)
        self._tree = BTree(order=order)
        self.null_rowids: set[int] = set()

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def n_keys(self) -> int:
        """Number of distinct keys currently stored."""
        return self._tree.n_keys

    def covers(self, n_rows: int) -> bool:
        """True when every one of ``n_rows`` table rows is in the tree —
        the precondition for serving ``ORDER BY`` from a leaf walk."""
        return len(self._tree) == n_rows

    # -- mutation ------------------------------------------------------------

    @holds_write_lock
    def insert_values(self, values: tuple, rowid: int,
                      check_unique: bool = True) -> None:
        """Index ``rowid`` under the component tuple (NULLs included).

        ``check_unique=False`` skips UNIQUE enforcement — used when
        backfilling dead version-chain entries, whose keys may collide
        with live rows without constituting a violation.
        """
        has_null = any(v is None for v in values)
        key = self._key(values)
        if self.unique and check_unique and not has_null:
            existing = self._tree.search(key)
            if existing and existing != {rowid}:
                # SQL semantics: NULLs never collide under UNIQUE; a rowid
                # re-filed under its own key (MVCC re-index) is fine, and
                # dead versions' stale entries do not count
                self._check_unique(existing, rowid, values, key)
        self._tree.insert(key, rowid)
        if has_null:
            self.null_rowids.add(rowid)

    @holds_write_lock
    def remove_values(self, values: tuple, rowid: int) -> None:
        """Drop the pair if present."""
        self._tree.remove(self._key(values), rowid)
        self.null_rowids.discard(rowid)

    @holds_write_lock
    def reindex_null(self, row: Sequence, rowid: int) -> None:
        if any(row[p] is None for p in self.positions):
            self.null_rowids.add(rowid)

    # -- point and prefix lookups --------------------------------------------

    def lookup_values(self, values: tuple) -> set:
        """Rowids whose columns equal ``values`` (empty when any is NULL)."""
        if any(v is None for v in values):
            return set()
        return self._tree.search(self._key(values))

    def lookup_null(self) -> set:
        """Rowids whose indexed key contains a NULL (``IS NULL`` scans)."""
        return set(self.null_rowids)

    def prefix_scan(self, values: tuple, reverse: bool = False,
                    low=None, high=None, include_low: bool = True,
                    include_high: bool = True) -> Iterator[int]:
        """Rowids whose first ``len(values)`` columns equal ``values``,
        ordered (asc, or desc with ``reverse``) by the remaining columns.

        ``low``/``high`` additionally bound the *next* index column after
        the equality prefix, so ``WHERE cat = ? AND val > ? ORDER BY val``
        on a ``(cat, val)`` index seeds the leaf walk at the range bound
        instead of filtering a residual.  A bounded walk never yields NULL
        suffix values (SQL comparisons never match NULL); an unbounded one
        keeps them (ORDER BY includes NULLs).

        Any NULL prefix component yields nothing — this implements SQL
        equality.
        """
        if any(v is None for v in values):
            return
        k = len(values)
        if k == self.n_columns and low is None and high is None:
            # full-key equality: order among duplicates is unconstrained
            yield from self.lookup_values(values)
            return
        prefix = tuple(sort_key(v) for v in values)
        # synthesized bounds compare against real keys without ever equaling
        # one, so the tree scan always runs [low_key, high_key)
        if low is not None:
            if include_low:
                low_key = prefix + (sort_key(low),)
            else:  # skip every key whose suffix component equals the bound
                low_key = prefix + (sort_key(low), _ABOVE_ANY_COMPONENT)
        elif high is not None:
            # range conjuncts exclude NULL suffix values; start past them
            low_key = prefix + (sort_key(None), _ABOVE_ANY_COMPONENT)
        else:
            low_key = prefix
        if high is not None:
            if include_high:
                high_key = prefix + (sort_key(high), _ABOVE_ANY_COMPONENT)
            else:
                high_key = prefix + (sort_key(high),)
        else:
            high_key = prefix + (_ABOVE_ANY_COMPONENT,)
        scan = self._tree.range_scan_desc if reverse else self._tree.range_scan
        for _key, rowids in scan(low_key, high_key, True, False):
            yield from rowids

    def ordered_groups(self) -> Iterator[tuple]:
        """``(sort_key, rowids)`` groups in ascending key order, skipping the
        NULL-key group — the pre-grouped stream a merge join consumes."""
        self._require_single("ordered_groups")
        for key, rowids in self._tree.range_scan(sort_key(None), None, False):
            yield key, rowids

    # -- snapshot-safe bounded walks (MVCC read path) -------------------------

    def order_bounds(self) -> tuple:
        """Tree-key bounds of a full ordered walk."""
        return (None, None, True, True)

    def merge_bounds(self) -> tuple:
        """Tree-key bounds of :meth:`ordered_groups` (NULL group skipped)."""
        self._require_single("merge_bounds")
        return (sort_key(None), None, False, True)

    def range_bounds(self, low=None, high=None, include_low: bool = True,
                     include_high: bool = True) -> tuple:
        """Tree-key bounds equivalent to :meth:`range`'s walk."""
        self._require_single("range_bounds")
        if low is None:
            low_key, include_low = sort_key(None), False
        else:
            low_key = sort_key(low)
        high_key = sort_key(high) if high is not None else None
        return (low_key, high_key, include_low, include_high)

    def prefix_bounds(self, values: tuple, low=None, high=None,
                      include_low: bool = True,
                      include_high: bool = True) -> tuple | None:
        """Tree-key bounds equivalent to :meth:`prefix_scan`'s walk, or
        None when the scan can match nothing (a NULL component)."""
        if any(v is None for v in values):
            return None
        if len(values) == self.n_columns and low is None and high is None:
            key = self._key(values)
            return (key, key, True, True)
        prefix = tuple(sort_key(v) for v in values)
        if low is not None:
            if include_low:
                low_key = prefix + (sort_key(low),)
            else:
                low_key = prefix + (sort_key(low), _ABOVE_ANY_COMPONENT)
        elif high is not None:
            low_key = prefix + (sort_key(None), _ABOVE_ANY_COMPONENT)
        else:
            low_key = prefix
        if high is not None:
            if include_high:
                high_key = prefix + (sort_key(high), _ABOVE_ANY_COMPONENT)
            else:
                high_key = prefix + (sort_key(high),)
        else:
            high_key = prefix + (_ABOVE_ANY_COMPONENT,)
        return (low_key, high_key, True, False)

    def group_walk(self, bounds: tuple, reverse: bool = False, lock=None,
                   batch: int = 64) -> Iterator[tuple]:
        """``(tree_key, rowids_tuple)`` groups between ``bounds``, safe
        under concurrent mutation.

        Up to ``batch`` groups are pulled per ``lock`` acquisition (the
        database's write lock), then the walk *re-seeks* past the last
        key with a fresh root descent — a writer splitting leaves between
        batches cannot tear the iteration, and the lock is never held
        while the consumer processes rows.  Snapshot readers pair this
        with a per-version key re-check, so duplicate or stale entries
        encountered across batches resolve to exactly-once results.
        """
        low_key, high_key, include_low, include_high = bounds
        while True:
            got: list[tuple] = []
            if lock is not None:
                lock.acquire()
            try:
                scan = (
                    self._tree.range_scan_desc if reverse
                    else self._tree.range_scan
                )
                for key, rowids in scan(low_key, high_key,
                                        include_low, include_high):
                    got.append((key, tuple(rowids)))
                    if len(got) >= batch:
                        break
            finally:
                if lock is not None:
                    lock.release()
            for item in got:
                yield item
            if len(got) < batch:
                return
            last_key = got[-1][0]
            if reverse:
                high_key, include_high = last_key, False
            else:
                low_key, include_low = last_key, False

    # -- ordered walks ---------------------------------------------------------

    def ordered_rowids(self, reverse: bool = False) -> Iterator[int]:
        """Every indexed rowid in full key order (reverse walks the leaf
        chain backward).  NULL keys come first ascending, last descending —
        matching the executor's sort-key semantics."""
        scan = self._tree.range_scan_desc if reverse else self._tree.range_scan
        for _key, rowids in scan(None, None):
            yield from rowids

    # -- legacy single-value range API ------------------------------------------

    def range(self, low=None, high=None, include_low: bool = True,
              include_high: bool = True, reverse: bool = False) -> Iterator[int]:
        """Yield rowids with column values in the given range, in key order
        (descending with ``reverse`` — the walk behind
        ``WHERE col > ? ORDER BY col DESC``).

        NULLs never satisfy a comparison, so an unbounded-low scan starts
        just past the NULL key instead of sweeping it up.
        """
        self._require_single("range")
        if low is None:
            low_key, include_low = sort_key(None), False
        else:
            low_key = sort_key(low)
        high_key = sort_key(high) if high is not None else None
        scan = self._tree.range_scan_desc if reverse else self._tree.range_scan
        for _, rowids in scan(low_key, high_key, include_low, include_high):
            yield from rowids

    def numeric_range(self, low=None, high=None, include_low: bool = True,
                      include_high: bool = True) -> Iterator[int]:
        """Like :meth:`range` but never crosses into text keys.

        Text sorts above every number, so an unbounded-high scan would
        otherwise sweep up contaminating text values.  The outlier detector
        uses this for its two tail scans.
        """
        self._require_single("numeric_range")
        low_key = sort_key(low) if low is not None else (1, float("-inf"))
        high_key = sort_key(high) if high is not None else (1, float("inf"))
        for _, rowids in self._tree.range_scan(low_key, high_key, include_low, include_high):
            yield from rowids

    def numeric_min(self):
        """The smallest numeric key, or None."""
        self._require_single("numeric_min")
        for key, _ in self._tree.range_scan((1, float("-inf")), (1, float("inf"))):
            return key[1]
        return None

    def numeric_max(self):
        """The largest numeric key, or None (O(log n) reverse walk)."""
        self._require_single("numeric_max")
        for key, _ in self._tree.range_scan_desc((1, float("-inf")), (1, float("inf"))):
            return key[1]
        return None

    # -- internals -------------------------------------------------------------

    def _key(self, values: tuple):
        if self.n_columns == 1:
            return sort_key(values[0])
        return tuple(sort_key(v) for v in values)

    def _require_single(self, what: str) -> None:
        if self.n_columns != 1:
            raise ValueError(
                f"{what}() applies to single-column indexes; "
                f"{self.name!r} covers {self.columns}"
            )
