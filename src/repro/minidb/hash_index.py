"""Hash and B+tree index wrappers used by minidb tables.

These are the structures behind the paper's claim that Buckaroo "creates
Postgres indexes for all the attribute combinations in the charts for
efficient data lookups" (§2): group membership queries
(``WHERE country = ?``) hit a hash or B+tree index instead of scanning, and
two-attribute chart lookups (``WHERE cat = ? ORDER BY val LIMIT k``) walk a
single *composite* B+tree.

Both index kinds cover one **or more** columns:

* :class:`HashIndex` — equality only.  Keys are tuples of normalized
  values; rows with a NULL in any indexed column are skipped (SQL equality
  never matches NULL).
* :class:`BTreeIndex` — ordered.  Keys are NULL-aware sort-key tuples, so
  *every* row is indexed (NULLs sort first, matching ``ORDER BY``), and the
  rowids whose key contains a NULL are additionally tracked in
  :attr:`BTreeIndex.null_rowids`.  That full coverage is what lets the
  planner answer ``ORDER BY`` straight from a leaf walk even on nullable
  columns, forward or backward (DESC).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import IntegrityError
from repro.minidb.btree import BTree
from repro.minidb.expressions import sort_key

#: sorts above every real key component ((rank, primitive) with rank <= 2),
#: used to build the exclusive upper bound of a composite prefix scan
_ABOVE_ANY_COMPONENT = (3,)


def normalize_key(value):
    """Normalize a column value for index equality (1 == 1.0, bool as int)."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return value


def _as_columns(columns) -> tuple:
    """Accept a single column name or a sequence of them."""
    if isinstance(columns, str):
        return (columns,)
    return tuple(columns)


def _as_positions(positions) -> tuple:
    if isinstance(positions, int):
        return (positions,)
    return tuple(positions)


class _IndexBase:
    """Shared shape of both index kinds: columns, positions, row plumbing."""

    def __init__(self, name: str, columns, positions, unique: bool = False):
        self.name = name
        self.columns = _as_columns(columns)
        self.positions = _as_positions(positions)
        if len(self.columns) != len(self.positions):
            raise ValueError(
                f"index {name!r}: {len(self.columns)} columns for "
                f"{len(self.positions)} positions"
            )
        self.unique = unique

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    @property
    def column(self) -> str:
        """First (or only) indexed column — legacy single-column accessor."""
        return self.columns[0]

    @property
    def position(self) -> int:
        """First (or only) indexed position — legacy single-column accessor."""
        return self.positions[0]

    def touches(self, changed_positions) -> bool:
        """True when an update to ``changed_positions`` affects this key."""
        return any(p in changed_positions for p in self.positions)

    def key_values(self, row: Sequence) -> tuple:
        """This index's key components extracted from a stored row."""
        return tuple(row[p] for p in self.positions)

    def _values_of(self, value) -> tuple:
        """Normalize the legacy single-value API to a component tuple."""
        if self.n_columns == 1:
            return (value,)
        values = tuple(value)
        if len(values) != self.n_columns:
            raise ValueError(
                f"index {self.name!r} covers {self.n_columns} columns, "
                f"got {len(values)} values"
            )
        return values

    # -- row-level maintenance (called by Table on every mutation) ----------

    def add_row(self, row: Sequence, rowid: int) -> None:
        self.insert_values(self.key_values(row), rowid)

    def remove_row(self, row: Sequence, rowid: int) -> None:
        self.remove_values(self.key_values(row), rowid)

    # -- legacy single-value API (and tuple passthrough for composites) -----

    def insert(self, value, rowid: int) -> None:
        self.insert_values(self._values_of(value), rowid)

    def remove(self, value, rowid: int) -> None:
        self.remove_values(self._values_of(value), rowid)

    def lookup(self, value) -> set:
        return self.lookup_values(self._values_of(value))


class HashIndex(_IndexBase):
    """Equality-only index: value tuple -> set of rowids.  NULLs skipped."""

    kind = "hash"

    def __init__(self, name: str, columns, positions, unique: bool = False):
        super().__init__(name, columns, positions, unique)
        self._buckets: dict = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def n_keys(self) -> int:
        """Number of distinct indexed values."""
        return len(self._buckets)

    def insert_values(self, values: tuple, rowid: int) -> None:
        """Index ``rowid`` under the component tuple (any NULL is skipped)."""
        if any(v is None for v in values):
            return
        key = self._key(values)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {rowid}
            return
        if self.unique and bucket:
            raise IntegrityError(
                f"UNIQUE index {self.name}: duplicate value {values!r}"
            )
        bucket.add(rowid)

    def remove_values(self, values: tuple, rowid: int) -> None:
        """Drop the pair if present."""
        if any(v is None for v in values):
            return
        key = self._key(values)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(rowid)
        if not bucket:
            del self._buckets[key]

    def lookup_values(self, values: tuple) -> set:
        """Rowids whose columns equal ``values`` (empty when any is NULL)."""
        if any(v is None for v in values):
            return set()
        return set(self._buckets.get(self._key(values), ()))

    def keys(self) -> list:
        """Distinct indexed values (normalized; scalars for 1-column)."""
        if self.n_columns == 1:
            return [key[0] for key in self._buckets]
        return list(self._buckets)

    def _key(self, values: tuple) -> tuple:
        return tuple(normalize_key(v) for v in values)


class BTreeIndex(_IndexBase):
    """Ordered index: equality, ranges, and ordered walks in both directions.

    Every row is indexed.  Single-column keys are ``sort_key(value)``
    (preserving the ``(rank, primitive)`` shape older numeric helpers rely
    on); composite keys are tuples of those.  ``sort_key(None)`` ranks below
    every number and string, so NULLs occupy the front of the key space —
    exactly where ``ORDER BY`` puts them — and :attr:`null_rowids` records
    which rows carry a NULL in any indexed column.
    """

    kind = "btree"

    def __init__(self, name: str, columns, positions, unique: bool = False,
                 order: int = 64):
        super().__init__(name, columns, positions, unique)
        self._tree = BTree(order=order)
        self.null_rowids: set[int] = set()

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def n_keys(self) -> int:
        """Number of distinct keys currently stored."""
        return self._tree.n_keys

    def covers(self, n_rows: int) -> bool:
        """True when every one of ``n_rows`` table rows is in the tree —
        the precondition for serving ``ORDER BY`` from a leaf walk."""
        return len(self._tree) == n_rows

    # -- mutation ------------------------------------------------------------

    def insert_values(self, values: tuple, rowid: int) -> None:
        """Index ``rowid`` under the component tuple (NULLs included)."""
        has_null = any(v is None for v in values)
        key = self._key(values)
        if self.unique and not has_null and self._tree.search(key):
            # SQL semantics: NULLs never collide under UNIQUE
            raise IntegrityError(
                f"UNIQUE index {self.name}: duplicate value "
                f"{values[0] if self.n_columns == 1 else values!r}"
            )
        self._tree.insert(key, rowid)
        if has_null:
            self.null_rowids.add(rowid)

    def remove_values(self, values: tuple, rowid: int) -> None:
        """Drop the pair if present."""
        self._tree.remove(self._key(values), rowid)
        self.null_rowids.discard(rowid)

    # -- point and prefix lookups --------------------------------------------

    def lookup_values(self, values: tuple) -> set:
        """Rowids whose columns equal ``values`` (empty when any is NULL)."""
        if any(v is None for v in values):
            return set()
        return self._tree.search(self._key(values))

    def lookup_null(self) -> set:
        """Rowids whose indexed key contains a NULL (``IS NULL`` scans)."""
        return set(self.null_rowids)

    def prefix_scan(self, values: tuple, reverse: bool = False,
                    low=None, high=None, include_low: bool = True,
                    include_high: bool = True) -> Iterator[int]:
        """Rowids whose first ``len(values)`` columns equal ``values``,
        ordered (asc, or desc with ``reverse``) by the remaining columns.

        ``low``/``high`` additionally bound the *next* index column after
        the equality prefix, so ``WHERE cat = ? AND val > ? ORDER BY val``
        on a ``(cat, val)`` index seeds the leaf walk at the range bound
        instead of filtering a residual.  A bounded walk never yields NULL
        suffix values (SQL comparisons never match NULL); an unbounded one
        keeps them (ORDER BY includes NULLs).

        Any NULL prefix component yields nothing — this implements SQL
        equality.
        """
        if any(v is None for v in values):
            return
        k = len(values)
        if k == self.n_columns and low is None and high is None:
            # full-key equality: order among duplicates is unconstrained
            yield from self.lookup_values(values)
            return
        prefix = tuple(sort_key(v) for v in values)
        # synthesized bounds compare against real keys without ever equaling
        # one, so the tree scan always runs [low_key, high_key)
        if low is not None:
            if include_low:
                low_key = prefix + (sort_key(low),)
            else:  # skip every key whose suffix component equals the bound
                low_key = prefix + (sort_key(low), _ABOVE_ANY_COMPONENT)
        elif high is not None:
            # range conjuncts exclude NULL suffix values; start past them
            low_key = prefix + (sort_key(None), _ABOVE_ANY_COMPONENT)
        else:
            low_key = prefix
        if high is not None:
            if include_high:
                high_key = prefix + (sort_key(high), _ABOVE_ANY_COMPONENT)
            else:
                high_key = prefix + (sort_key(high),)
        else:
            high_key = prefix + (_ABOVE_ANY_COMPONENT,)
        scan = self._tree.range_scan_desc if reverse else self._tree.range_scan
        for _key, rowids in scan(low_key, high_key, True, False):
            yield from rowids

    def ordered_groups(self) -> Iterator[tuple]:
        """``(sort_key, rowids)`` groups in ascending key order, skipping the
        NULL-key group — the pre-grouped stream a merge join consumes."""
        self._require_single("ordered_groups")
        for key, rowids in self._tree.range_scan(sort_key(None), None, False):
            yield key, rowids

    # -- ordered walks ---------------------------------------------------------

    def ordered_rowids(self, reverse: bool = False) -> Iterator[int]:
        """Every indexed rowid in full key order (reverse walks the leaf
        chain backward).  NULL keys come first ascending, last descending —
        matching the executor's sort-key semantics."""
        scan = self._tree.range_scan_desc if reverse else self._tree.range_scan
        for _key, rowids in scan(None, None):
            yield from rowids

    # -- legacy single-value range API ------------------------------------------

    def range(self, low=None, high=None, include_low: bool = True,
              include_high: bool = True, reverse: bool = False) -> Iterator[int]:
        """Yield rowids with column values in the given range, in key order
        (descending with ``reverse`` — the walk behind
        ``WHERE col > ? ORDER BY col DESC``).

        NULLs never satisfy a comparison, so an unbounded-low scan starts
        just past the NULL key instead of sweeping it up.
        """
        self._require_single("range")
        if low is None:
            low_key, include_low = sort_key(None), False
        else:
            low_key = sort_key(low)
        high_key = sort_key(high) if high is not None else None
        scan = self._tree.range_scan_desc if reverse else self._tree.range_scan
        for _, rowids in scan(low_key, high_key, include_low, include_high):
            yield from rowids

    def numeric_range(self, low=None, high=None, include_low: bool = True,
                      include_high: bool = True) -> Iterator[int]:
        """Like :meth:`range` but never crosses into text keys.

        Text sorts above every number, so an unbounded-high scan would
        otherwise sweep up contaminating text values.  The outlier detector
        uses this for its two tail scans.
        """
        self._require_single("numeric_range")
        low_key = sort_key(low) if low is not None else (1, float("-inf"))
        high_key = sort_key(high) if high is not None else (1, float("inf"))
        for _, rowids in self._tree.range_scan(low_key, high_key, include_low, include_high):
            yield from rowids

    def numeric_min(self):
        """The smallest numeric key, or None."""
        self._require_single("numeric_min")
        for key, _ in self._tree.range_scan((1, float("-inf")), (1, float("inf"))):
            return key[1]
        return None

    def numeric_max(self):
        """The largest numeric key, or None (O(log n) reverse walk)."""
        self._require_single("numeric_max")
        for key, _ in self._tree.range_scan_desc((1, float("-inf")), (1, float("inf"))):
            return key[1]
        return None

    # -- internals -------------------------------------------------------------

    def _key(self, values: tuple):
        if self.n_columns == 1:
            return sort_key(values[0])
        return tuple(sort_key(v) for v in values)

    def _require_single(self, what: str) -> None:
        if self.n_columns != 1:
            raise ValueError(
                f"{what}() applies to single-column indexes; "
                f"{self.name!r} covers {self.columns}"
            )
