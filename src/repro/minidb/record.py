"""Binary row encoding for the paged heap (``struct``-packed records).

A stored heap record is the byte string::

    <H n_values> (<B tag> payload)*

with one tagged payload per column value:

========  =======================  ==========================
tag       python value             payload
========  =======================  ==========================
``NULL``  ``None``                 (empty)
``INT``   ``int`` in i64 range     ``<q``
``REAL``  ``float``                ``<d``
``TEXT``  ``str``                  ``<I len`` + UTF-8 bytes
``BIG``   ``int`` beyond i64       ``<I len`` + decimal ASCII
``JSON``  anything else            ``<I len`` + JSON UTF-8
========  =======================  ==========================

The codec is symmetric (``decode_values(encode_values(v)) == v``) for
every value minidb storage produces: affinity coercion reduces cells to
``None`` / ``int`` / ``float`` / ``str``, and the ``JSON`` tag catches
exotic objects that reach a no-affinity column (lists, dicts, bools)
without widening the common tags.  Unbounded Python ints round-trip via
the ``BIG`` decimal-text tag, so overflow never silently truncates.

Records are storage-layer bytes only — the WAL stays JSON (logical,
human-auditable); pages hold these packed rows (compact, offset-seekable).
"""

from __future__ import annotations

import json
import struct

from repro.errors import DatabaseError

TAG_NULL = 0
TAG_INT = 1
TAG_REAL = 2
TAG_TEXT = 3
TAG_BIG = 4
TAG_JSON = 5

_COUNT = struct.Struct("<H")
_TAG = struct.Struct("<B")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_LEN = struct.Struct("<I")

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1


def encode_values(values: list) -> bytes:
    """Pack one row's values into a heap record payload."""
    parts = [_COUNT.pack(len(values))]
    for value in values:
        if value is None:
            parts.append(_TAG.pack(TAG_NULL))
        elif isinstance(value, bool):
            # bools normally never reach storage (affinity folds them to
            # ints); JSON keeps the odd untyped one faithful
            blob = json.dumps(value).encode("utf-8")
            parts.append(_TAG.pack(TAG_JSON) + _LEN.pack(len(blob)) + blob)
        elif isinstance(value, int):
            if _I64_MIN <= value <= _I64_MAX:
                parts.append(_TAG.pack(TAG_INT) + _I64.pack(value))
            else:
                blob = str(value).encode("ascii")
                parts.append(_TAG.pack(TAG_BIG) + _LEN.pack(len(blob)) + blob)
        elif isinstance(value, float):
            parts.append(_TAG.pack(TAG_REAL) + _F64.pack(value))
        elif isinstance(value, str):
            blob = value.encode("utf-8")
            parts.append(_TAG.pack(TAG_TEXT) + _LEN.pack(len(blob)) + blob)
        else:
            try:
                blob = json.dumps(value, sort_keys=True).encode("utf-8")
            except (TypeError, ValueError) as exc:
                raise DatabaseError(
                    f"cannot store value of type {type(value).__name__!r} "
                    f"in a file-backed table: {exc}"
                ) from None
            parts.append(_TAG.pack(TAG_JSON) + _LEN.pack(len(blob)) + blob)
    return b"".join(parts)


def decode_values(buf: bytes, offset: int = 0) -> list:
    """Unpack a heap record payload back into a list of values."""
    (count,) = _COUNT.unpack_from(buf, offset)
    offset += _COUNT.size
    values: list = []
    for _ in range(count):
        (tag,) = _TAG.unpack_from(buf, offset)
        offset += _TAG.size
        if tag == TAG_NULL:
            values.append(None)
        elif tag == TAG_INT:
            (value,) = _I64.unpack_from(buf, offset)
            offset += _I64.size
            values.append(value)
        elif tag == TAG_REAL:
            (value,) = _F64.unpack_from(buf, offset)
            offset += _F64.size
            values.append(value)
        elif tag in (TAG_TEXT, TAG_BIG, TAG_JSON):
            (length,) = _LEN.unpack_from(buf, offset)
            offset += _LEN.size
            blob = bytes(buf[offset:offset + length])
            offset += length
            if tag == TAG_TEXT:
                values.append(blob.decode("utf-8"))
            elif tag == TAG_BIG:
                values.append(int(blob))
            else:
                values.append(json.loads(blob.decode("utf-8")))
        else:
            raise DatabaseError(f"corrupt heap record: unknown value tag {tag}")
    return values
