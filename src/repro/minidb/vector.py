"""Columnar batch execution: the vectorized operator substrate.

The row pipeline pays full interpreter dispatch per tuple — a dozen
function calls and a list allocation for every row that flows through a
scan/filter/aggregate chain.  Batch mode amortizes that cost across
~:data:`BATCH_SIZE` values per call: operators exchange :class:`Batch`
objects (positional column vectors plus a selection index vector) and run
tight per-column loops instead of per-row closures.

Semantics contract: every loop in this module replicates the row-mode
value semantics (``expressions.sql_equal``/``sql_compare``, the
``functions`` aggregate accumulators, ``hash_index.normalize_key`` group
keys) **bit for bit** — the parity suite in
``tests/test_minidb_vectorized.py`` holds both pipelines to identical
output.  Batches preserve row order end to end (scan = insertion order,
join = probe order, aggregation = first-seen group order), so ordered
results match too.

The planner decides per plan whether to run batch or row operators (see
``planner._vectorize``); the executor's ``BatchToRows`` adapter bridges a
batch subtree back into any row-mode consumer.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator

from repro.minidb.functions import _sort_key
from repro.minidb.hash_index import normalize_key

BATCH_SIZE = 1024
"""Rows per batch: large enough to amortize dispatch, small enough to
keep a join's matched-pair working set cache-resident."""


class Batch:
    """A slice of rows in columnar layout.

    ``cols`` holds one sequence (list or tuple) per *row position* — the
    same positional layout the row pipeline uses (``cols[0]`` is the
    rowid column for base-table scans; joins concatenate layouts in
    execution order).  ``sel`` is a selection vector: a list of indices
    into the columns that are still live, or ``None`` meaning "all".
    Filters narrow ``sel`` instead of copying column data.
    """

    __slots__ = ("cols", "sel")

    def __init__(self, cols, sel=None):
        self.cols = cols
        self.sel = sel

    @property
    def count(self) -> int:
        """Number of *selected* logical rows in this batch."""
        if self.sel is not None:
            return len(self.sel)
        return len(self.cols[0]) if self.cols else 0

    def indices(self):
        """Live indices, cheap form: the sel list or a full range."""
        if self.sel is not None:
            return self.sel
        return range(len(self.cols[0]) if self.cols else 0)

    def rows(self) -> Iterator[list]:
        """Re-materialize selected rows in the row pipeline's layout."""
        cols = self.cols
        for i in self.indices():
            yield [c[i] for c in cols]


def batches_from_chunks(chunks) -> Iterator[Batch]:
    """Batchify ``Table.scan_chunks`` output: (rowids, value_rows) pairs.

    ``zip(*value_rows)`` transposes row-major storage pages into column
    tuples at C speed; zero-column tables degrade to a lone rowid column.
    """
    for rowids, value_rows in chunks:
        if not rowids:
            continue
        yield Batch([rowids, *zip(*value_rows)])


def batches_from_rows(rows: Iterable, size: int = BATCH_SIZE) -> Iterator[Batch]:
    """Batchify an arbitrary row iterator (the row->batch adapter).

    Used for MVCC snapshot scans, which stay on the (version-chain aware)
    row path in this first cut and are transposed here so a cached batch
    plan still answers correctly inside a snapshot transaction.
    """
    it = iter(rows)
    while True:
        block = list(islice(it, size))
        if not block:
            return
        yield Batch(list(zip(*block)))


def filter_batch(batch: Batch, kernels, params) -> Batch | None:
    """Run conjunct ``kernels`` over one batch; None when nothing survives.

    Each kernel maps (cols, indices, params) -> surviving index list, so
    a conjunction is a chain of narrowing selection vectors — identical
    to Kleene-AND row filtering because a row passes ``WHERE a AND b``
    exactly when every conjunct is truthy for it.
    """
    cols = batch.cols
    indices = batch.indices()
    for kernel in kernels:
        indices = kernel(cols, indices, params)
        if not indices:
            return None
    return Batch(cols, indices if isinstance(indices, list) else list(indices))


# ---------------------------------------------------------------------------
# vectorized aggregation
# ---------------------------------------------------------------------------

# State-slot widths per supported aggregate.  SUM carries (total, seen,
# all_int) to reproduce SumAgg's int-preserving result exactly; AVG
# carries (total, n); MIN/MAX carry the best value (None == unseen,
# which is unambiguous because NULL inputs are skipped).
_AGG_WIDTH = {"COUNT": 1, "SUM": 3, "AVG": 2, "MIN": 1, "MAX": 1}

BATCH_AGGREGATES = frozenset(_AGG_WIDTH)
"""Aggregate functions with a vectorized tight-loop implementation."""


def state_layout(agg_descs) -> tuple[list, list]:
    """``(offsets, template)`` — the state-entry layout for ``agg_descs``.

    Slot 0 of every entry is reserved for the first-seen raw group
    values; each aggregate then occupies ``_AGG_WIDTH[name]`` slots
    starting at its offset.  The template is the fresh (zero-input)
    state, which is also what SQL's one-row-over-empty-input global
    aggregate finalizes to.
    """
    offsets = []
    template: list = [None]  # slot 0 reserved for the group-values list
    for name, _pos in agg_descs:
        offsets.append(len(template))
        if name == "SUM":
            template.extend((0.0, False, True))
        elif name == "AVG":
            template.extend((0.0, 0))
        elif name == "COUNT":
            template.append(0)
        else:  # MIN / MAX
            template.append(None)
    return offsets, template


def accumulate_batches(batches, group_positions, agg_descs) -> dict:
    """Fold a batch stream into per-group state entries (not finalized).

    Returns ``{key: entry}`` in first-seen group order; a global
    aggregate folds into the single key ``()``.  This is the mergeable
    half of :func:`aggregate_batches` — every state combines
    associatively, so the parallel executor runs it once per partition
    and recombines the entries in partition order before finalizing
    (:mod:`repro.minidb.parallel`).

    Accumulation is a grouped columnar fold: each batch's selection is
    partitioned into per-group index lists once, then every aggregate
    folds one group's extracted values at a time — the value sequence
    each state sees is identical to the row-at-a-time order (a state is
    only ever touched by its own group's rows, in stream order), but
    the per-group probe lets ``sum``/``min``/``max`` collapse to one
    builtin call instead of a per-row state update.
    """
    offsets, template = state_layout(agg_descs)
    if not group_positions:
        # global aggregate: one shared state, so group partitioning
        # vanishes and whole-column fast paths apply
        return {(): _aggregate_ungrouped(batches, agg_descs, offsets,
                                         template)}
    groups: dict = {}
    for batch in batches:
        cols = batch.cols
        indices = batch.indices()
        buckets = _group_indices(cols, indices, group_positions, groups,
                                 template)
        extracted: dict = {}
        for (name, pos), offset in zip(agg_descs, offsets):
            if pos is None:  # COUNT(*) counts rows
                for key, idxs in buckets.items():
                    groups[key][offset] += len(idxs)
                continue
            per_group = extracted.get(pos)
            if per_group is None:
                col = cols[pos]
                per_group = {
                    key: [v for i in idxs if (v := col[i]) is not None]
                    for key, idxs in buckets.items()
                }
                extracted[pos] = per_group
            for key, vals in per_group.items():
                if vals:
                    _fold_values(name, vals, groups[key], offset)
    return groups


def aggregate_batches(batches, group_positions, agg_descs) -> Iterator[list]:
    """Hash-aggregate a batch stream; yields ``[*group_values, *finals]``.

    ``group_positions`` are row positions of the GROUP BY columns;
    ``agg_descs`` is a list of ``(name, position_or_None)`` pairs where
    ``None`` means ``COUNT(*)``.  Output rows appear in first-seen group
    order and carry the first-seen raw group values — the same contract
    as the row executor's ``_agg_groups_hash``, so HAVING/projection/sort
    post-processing is shared unchanged.
    """
    offsets, _template = state_layout(agg_descs)
    groups = accumulate_batches(batches, group_positions, agg_descs)
    for entry in groups.values():
        out = list(entry[0])
        for (name, _pos), offset in zip(agg_descs, offsets):
            out.append(_final(name, entry, offset))
        yield out


#: per-batch type probes for the ungrouped fast paths.  ``bool`` is a
#: subclass of int but ``type(v)`` is exact, so a probe of {int} or
#: {int, float} certifies the batch holds no bools (which SUM/AVG must
#: skip) and no text (which needs ``_as_number`` parsing / rank rules).
_INT_ONLY = frozenset((int,))
_NUM_KINDS = frozenset((int, float))
_STR_ONLY = frozenset((str,))
#: largest int magnitude float() maps exactly; below it, Python's exact
#: int/float comparison agrees with ``_sort_key``'s float-converted one
_EXACT_FLOAT_INT = 2 ** 53


def _aggregate_ungrouped(batches, agg_descs, offsets, template) -> list:
    """Fold a batch stream into one global-aggregate state entry.

    Non-NULL values are extracted once per distinct argument column and
    shared across the aggregates that read it.  A per-batch type probe
    (``set(map(type, ...))`` — one C pass) certifies when the exact
    accumulator loop can collapse to a builtin: ``sum(vals, total)``
    performs the *same sequence* of float additions the row accumulator
    does, and ``min``/``max`` perform the same strictly-less/greater
    first-seen-wins scan ``_sort_key`` ordering implies for same-rank
    values.  Mixed-kind batches fall back to the exact per-value loop.
    """
    entry = list(template)
    entry[0] = []
    for batch in batches:
        cols = batch.cols
        indices = batch.indices()
        n = len(indices)
        if not n:
            continue
        extracted: dict = {}
        for (name, pos), o in zip(agg_descs, offsets):
            if pos is None:  # COUNT(*)
                entry[o] += n
                continue
            vals = extracted.get(pos)
            if vals is None:
                col = cols[pos]
                vals = [v for i in indices if (v := col[i]) is not None]
                extracted[pos] = vals
            if vals:
                _fold_values(name, vals, entry, o)
    return entry


def _fold_values(name, vals, entry, o) -> None:
    """Fold one already-NULL-stripped value run into a state entry.

    A type probe (``set(map(type, ...))`` — one C pass) certifies when
    the exact accumulator loop can collapse to a builtin: ``sum(vals,
    total)`` performs the *same sequence* of float additions the row
    accumulator does, and ``min``/``max`` perform the same strictly-
    less/greater first-seen-wins scan ``_sort_key`` ordering implies for
    same-rank values.  Mixed-kind runs fall back to the exact per-value
    loop.  The probe is exact (``bool`` is not ``int`` under ``type``),
    so bools and numeric text always take the fallback, which skips or
    parses them exactly as the row accumulators do.
    """
    if name == "COUNT":
        entry[o] += len(vals)
        return
    kinds = set(map(type, vals))
    if name == "SUM":
        if kinds <= _NUM_KINDS:
            entry[o] = sum(vals, entry[o])
            entry[o + 1] = True
            if not kinds <= _INT_ONLY:
                entry[o + 2] = False
        else:
            _sum_values(vals, entry, o)
    elif name == "AVG":
        if kinds <= _NUM_KINDS:
            entry[o] = sum(vals, entry[o])
            entry[o + 1] += len(vals)
        else:
            _avg_values(vals, entry, o)
    else:  # MIN / MAX
        # direct comparison agrees with the float-converted ``_sort_key``
        # one for same-kind floats or text always, and for ints only
        # inside float's exact range (beyond it, float-equal ints tie
        # and first-seen diverges from the exact integer order
        # ``min``/``max`` would use)
        champion = None
        if kinds <= _STR_ONLY:
            champion = min(vals) if name == "MIN" else max(vals)
        elif kinds <= _NUM_KINDS:
            low, high = min(vals), max(vals)
            if -_EXACT_FLOAT_INT <= low and high <= _EXACT_FLOAT_INT:
                champion = low if name == "MIN" else high
        if champion is not None:
            best = entry[o]
            if best is None:
                entry[o] = champion
            elif name == "MIN":
                if _sort_key(champion) < _sort_key(best):
                    entry[o] = champion
            elif _sort_key(champion) > _sort_key(best):
                entry[o] = champion
        elif name == "MIN":
            for v in vals:
                best = entry[o]
                if best is None or _sort_key(v) < _sort_key(best):
                    entry[o] = v
        else:
            for v in vals:
                best = entry[o]
                if best is None or _sort_key(v) > _sort_key(best):
                    entry[o] = v


def _sum_values(vals, entry, o):
    """Exact SumAgg steps over already-NULL-stripped values."""
    total, seen, all_int = entry[o], entry[o + 1], entry[o + 2]
    for v in vals:
        if isinstance(v, bool):
            continue
        if isinstance(v, (int, float)):
            total += v
            seen = True
            if not isinstance(v, int):
                all_int = False
        else:
            try:
                number = float(v)
            except (TypeError, ValueError):
                continue
            total += number
            seen = True
            all_int = False
    entry[o], entry[o + 1], entry[o + 2] = total, seen, all_int


def _avg_values(vals, entry, o):
    """Exact AvgAgg steps over already-NULL-stripped values."""
    total, n = entry[o], entry[o + 1]
    for v in vals:
        if isinstance(v, bool):
            continue
        if isinstance(v, (int, float)):
            total += v
            n += 1
        else:
            try:
                number = float(v)
            except (TypeError, ValueError):
                continue
            total += number
            n += 1
    entry[o], entry[o + 1] = total, n


def _group_indices(cols, indices, group_positions, groups, template):
    """Partition a batch's selection into per-group index runs.

    Returns ``{key: [index, ...]}`` in first-seen order within the
    batch, creating missing entries in ``groups`` on demand with the
    first-seen raw group values in slot 0.  Index runs preserve stream
    order, so folding a run replays exactly the steps the row-at-a-time
    loop would have applied to that group's state.
    """
    buckets: dict = {}
    get = buckets.get
    if len(group_positions) == 1:
        col = cols[group_positions[0]]
        for i in indices:
            v = col[i]
            key = (normalize_key(v) if v is not None else None,)
            idxs = get(key)
            if idxs is not None:
                idxs.append(i)
                continue
            buckets[key] = [i]
            if key not in groups:
                entry = list(template)
                entry[0] = [v]
                groups[key] = entry
        return buckets
    gcols = [cols[p] for p in group_positions]
    for i in indices:
        values = [c[i] for c in gcols]
        key = tuple(normalize_key(v) if v is not None else None for v in values)
        idxs = get(key)
        if idxs is not None:
            idxs.append(i)
            continue
        buckets[key] = [i]
        if key not in groups:
            entry = list(template)
            entry[0] = values
            groups[key] = entry
    return buckets


def _final(name, entry, o):
    """Finalize one aggregate's state slots into its result value."""
    if name == "COUNT":
        return entry[o]
    if name == "SUM":
        if not entry[o + 1]:
            return None
        return int(entry[o]) if entry[o + 2] else entry[o]
    if name == "AVG":
        n = entry[o + 1]
        return entry[o] / n if n else None
    return entry[o]  # MIN / MAX: best value, None when no input
