"""Access-path selection for minidb.

Given a table and a WHERE expression, the planner picks the cheapest scan:

1. equality on a hash-indexed column (point lookup);
2. equality on a B+tree-indexed column;
3. ``IN`` list over an indexed column (union of point lookups);
4. range predicates (``<``, ``<=``, ``>``, ``>=``, ``BETWEEN``) on a
   B+tree-indexed column, with bounds merged across conjuncts;
5. a full B+tree walk in key order when it satisfies an ``ORDER BY``
   (so ``ORDER BY indexed_col LIMIT k`` touches only ``k`` rows);
6. otherwise a sequential scan.

Unused conjuncts become a residual filter.  This is the machinery behind the
paper's Table 1 asymmetry: Buckaroo's group lookups (``WHERE country = ?``)
and the zoom engine's viewport queries (``WHERE x BETWEEN ? AND ?``) all
resolve to index scans touching only the relevant rows.

The module also hosts the join-planning helpers the streaming executor
uses: splitting an ``ON`` clause into hash-join key pairs plus residual
conjuncts, and partitioning a ``WHERE`` clause so base-table conjuncts can
be pushed below the join into the scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanningError
from repro.minidb import ast_nodes as ast
from repro.minidb.storage import Table

SEQ = "seq"
INDEX_EQ = "index_eq"
INDEX_IN = "index_in"
INDEX_RANGE = "index_range"
INDEX_ORDER = "index_order"
ROWID_EQ = "rowid_eq"
ROWID_IN = "rowid_in"


@dataclass
class ScanPlan:
    """A chosen access path plus any residual predicate."""

    table: str
    kind: str = SEQ
    index_name: str | None = None
    column: str | None = None
    eq_expr: ast.Expr | None = None
    in_exprs: tuple = ()
    low_expr: ast.Expr | None = None
    high_expr: ast.Expr | None = None
    include_low: bool = True
    include_high: bool = True
    residual: ast.Expr | None = None
    ordered_by: str | None = None  # rows come out sorted by this column (asc)

    def describe(self) -> str:
        """Human-readable one-line plan description (used by EXPLAIN)."""
        if self.kind == SEQ:
            base = f"SeqScan({self.table})"
        elif self.kind == INDEX_ORDER:
            base = f"IndexOrderScan({self.table}.{self.column} via {self.index_name})"
        elif self.kind == ROWID_EQ:
            base = f"RowidLookup({self.table})"
        elif self.kind == ROWID_IN:
            base = f"RowidLookup({self.table}, {len(self.in_exprs)} keys)"
        elif self.kind == INDEX_EQ:
            base = f"IndexEqScan({self.table}.{self.column} via {self.index_name})"
        elif self.kind == INDEX_IN:
            base = (
                f"IndexInScan({self.table}.{self.column} via {self.index_name}, "
                f"{len(self.in_exprs)} keys)"
            )
        else:
            low = "-inf" if self.low_expr is None else "?"
            high = "+inf" if self.high_expr is None else "?"
            base = (
                f"IndexRangeScan({self.table}.{self.column} via {self.index_name}, "
                f"{low}..{high})"
            )
        if self.residual is not None:
            base += " + Filter"
        return base


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten nested ANDs into a conjunct list (empty for None)."""
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    """Rebuild an AND tree from a conjunct list (None when empty)."""
    if not conjuncts:
        return None
    expr = conjuncts[0]
    for conjunct in conjuncts[1:]:
        expr = ast.Binary("AND", expr, conjunct)
    return expr


def _is_value_expr(expr: ast.Expr) -> bool:
    """True when ``expr`` is evaluable without a row (literals/params only)."""
    return all(
        not isinstance(node, (ast.ColumnRef, ast.SlotRef, ast.FuncCall))
        for node in ast.walk(expr)
    )


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _column_of(expr: ast.Expr, table: Table,
               binding: str | None = None) -> str | None:
    """Column name when ``expr`` is a reference to a column of ``table``."""
    if isinstance(expr, ast.ColumnRef) and table.schema.has_column(expr.name):
        if expr.table is None or expr.table in (table.name, binding):
            return expr.name
    return None


def _is_rowid_ref(expr: ast.Expr, table: Table,
                  binding: str | None = None) -> bool:
    """True when ``expr`` is the rowid pseudo-column of ``table``."""
    return (
        isinstance(expr, ast.ColumnRef)
        and expr.name == "rowid"
        and not table.schema.has_column("rowid")
        and (expr.table is None or expr.table in (table.name, binding))
    )


def plan_scan(table: Table, where: ast.Expr | None,
              binding: str | None = None,
              order_column: str | None = None) -> ScanPlan:
    """Choose an access path for ``table`` under predicate ``where``.

    ``order_column`` names a column whose ascending sort order the caller
    would like the scan to produce (from ``ORDER BY``); when no predicate
    picks a better path and a B+tree index covers every row, the planner
    answers with an :data:`INDEX_ORDER` full index walk, letting the
    executor skip the sort entirely.
    """
    conjuncts = split_conjuncts(where)
    eq_candidates: list[tuple[int, str, ast.Expr, int]] = []  # (score, col, value, idx)
    in_candidates: list[tuple[str, tuple, int]] = []
    bounds: dict[str, dict] = {}

    # rowid point lookups beat every index — resolve them first
    for i, conjunct in enumerate(conjuncts):
        if isinstance(conjunct, ast.Binary) and conjunct.op == "=":
            if _is_rowid_ref(conjunct.left, table, binding) and _is_value_expr(conjunct.right):
                value = conjunct.right
            elif _is_rowid_ref(conjunct.right, table, binding) and _is_value_expr(conjunct.left):
                value = conjunct.left
            else:
                continue
            residual = conjoin([c for j, c in enumerate(conjuncts) if j != i])
            return ScanPlan(
                table=table.name, kind=ROWID_EQ, eq_expr=value, residual=residual,
            )
        if isinstance(conjunct, ast.InList) and not conjunct.negated:
            if _is_rowid_ref(conjunct.expr, table, binding) and all(
                _is_value_expr(item) for item in conjunct.items
            ):
                residual = conjoin([c for j, c in enumerate(conjuncts) if j != i])
                return ScanPlan(
                    table=table.name, kind=ROWID_IN, in_exprs=conjunct.items,
                    residual=residual,
                )

    for i, conjunct in enumerate(conjuncts):
        if isinstance(conjunct, ast.Binary) and conjunct.op in ("=", "<", "<=", ">", ">="):
            left_col = _column_of(conjunct.left, table, binding)
            right_col = _column_of(conjunct.right, table, binding)
            if left_col and _is_value_expr(conjunct.right):
                column, value, op = left_col, conjunct.right, conjunct.op
            elif right_col and _is_value_expr(conjunct.left):
                column, value, op = right_col, conjunct.left, _FLIPPED.get(conjunct.op, "=")
            else:
                continue
            if op == "=":
                indexes = table.indexes_on(column)
                if indexes:
                    score = 100 if any(ix.kind == "hash" for ix in indexes) else 90
                    eq_candidates.append((score, column, value, i))
            else:
                entry = bounds.setdefault(
                    column,
                    {"low": None, "high": None, "incl_low": True, "incl_high": True,
                     "conjuncts": []},
                )
                if op in (">", ">="):
                    entry["low"] = value
                    entry["incl_low"] = op == ">="
                else:
                    entry["high"] = value
                    entry["incl_high"] = op == "<="
                entry["conjuncts"].append(i)
        elif isinstance(conjunct, ast.Between) and not conjunct.negated:
            column = _column_of(conjunct.expr, table, binding)
            if column and _is_value_expr(conjunct.low) and _is_value_expr(conjunct.high):
                entry = bounds.setdefault(
                    column,
                    {"low": None, "high": None, "incl_low": True, "incl_high": True,
                     "conjuncts": []},
                )
                entry["low"] = conjunct.low
                entry["high"] = conjunct.high
                entry["incl_low"] = entry["incl_high"] = True
                entry["conjuncts"].append(i)
        elif isinstance(conjunct, ast.InList) and not conjunct.negated:
            column = _column_of(conjunct.expr, table, binding)
            if column and all(_is_value_expr(item) for item in conjunct.items):
                if table.indexes_on(column):
                    in_candidates.append((column, conjunct.items, i))

    # best equality first
    if eq_candidates:
        eq_candidates.sort(reverse=True, key=lambda c: c[0])
        _, column, value, used = eq_candidates[0]
        index = _best_index(table, column, prefer="hash")
        residual = conjoin([c for j, c in enumerate(conjuncts) if j != used])
        return ScanPlan(
            table=table.name, kind=INDEX_EQ, index_name=index.name, column=column,
            eq_expr=value, residual=residual,
        )
    if in_candidates:
        column, items, used = in_candidates[0]
        index = _best_index(table, column, prefer="hash")
        residual = conjoin([c for j, c in enumerate(conjuncts) if j != used])
        return ScanPlan(
            table=table.name, kind=INDEX_IN, index_name=index.name, column=column,
            in_exprs=items, residual=residual,
        )
    for column, entry in bounds.items():
        btree = _best_index(table, column, prefer="btree", require_btree=True)
        if btree is None:
            continue
        used = set(entry["conjuncts"])
        residual = conjoin([c for j, c in enumerate(conjuncts) if j not in used])
        return ScanPlan(
            table=table.name, kind=INDEX_RANGE, index_name=btree.name, column=column,
            low_expr=entry["low"], high_expr=entry["high"],
            include_low=entry["incl_low"], include_high=entry["incl_high"],
            residual=residual, ordered_by=column,
        )
    if order_column is not None:
        btree = _best_index(table, order_column, prefer="btree", require_btree=True)
        # NULLs are not indexed and must sort first, so a full index walk
        # is only a valid ordering when every row appears in the index
        if btree is not None and len(btree) == table.n_rows:
            return ScanPlan(
                table=table.name, kind=INDEX_ORDER, index_name=btree.name,
                column=order_column, residual=where, ordered_by=order_column,
            )
    return ScanPlan(table=table.name, kind=SEQ, residual=where)


def _best_index(table: Table, column: str, prefer: str,
                require_btree: bool = False):
    indexes = table.indexes_on(column)
    if require_btree:
        indexes = [ix for ix in indexes if ix.kind == "btree"]
        return indexes[0] if indexes else None
    preferred = [ix for ix in indexes if ix.kind == prefer]
    return preferred[0] if preferred else indexes[0]


# ---------------------------------------------------------------------------
# join planning
# ---------------------------------------------------------------------------


def _resolved_positions(expr: ast.Expr, resolver) -> list[int] | None:
    """Row positions of every column reference, or None when any fails.

    A failed resolution (unknown or ambiguous column) is not an error here:
    the conjunct simply stays in the residual, where compiling it surfaces
    the same :class:`PlanningError` the executor has always raised.
    """
    positions = []
    for node in ast.walk(expr):
        if isinstance(node, ast.ColumnRef):
            try:
                positions.append(resolver.resolve(node))
            except PlanningError:
                return None
    return positions


def split_join_condition(on: ast.Expr, resolver, join_offset: int,
                         width: int):
    """Decompose an ``ON`` clause for a hash join against the table at
    ``join_offset`` (occupying ``width`` row slots).

    Returns ``(pairs, right_only, residual)``:

    * ``pairs`` — ``(left_pos, right_pos)`` equi-join key positions, with
      ``right_pos`` absolute in the combined row (the executor rebases it);
    * ``right_only`` — conjuncts referencing only the newly joined table,
      applicable while building the hash table (INNER joins only);
    * ``residual`` — everything else, evaluated per candidate pair.

    An empty ``pairs`` means no hash join is possible and the caller must
    fall back to a nested loop over the full ``ON`` expression.
    """
    pairs: list[tuple[int, int]] = []
    right_only: list[ast.Expr] = []
    residual: list[ast.Expr] = []
    end = join_offset + width
    for conjunct in split_conjuncts(on):
        positions = _resolved_positions(conjunct, resolver)
        if (
            positions is not None
            and isinstance(conjunct, ast.Binary) and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            left_pos, right_pos = positions
            if left_pos >= join_offset:
                left_pos, right_pos = right_pos, left_pos
            if left_pos < join_offset <= right_pos < end:
                pairs.append((left_pos, right_pos))
                continue
        if positions and all(join_offset <= p < end for p in positions):
            right_only.append(conjunct)
        else:
            residual.append(conjunct)
    return pairs, right_only, residual


def partition_conjuncts(where: ast.Expr | None, resolver, boundary: int):
    """Split ``where`` into (pushable, remainder) around a join boundary.

    Conjuncts whose column references all land below ``boundary`` (i.e. on
    the base table) are safe to evaluate before the join — for INNER joins
    trivially, and for LEFT joins because the left side is the preserved
    side.  Both halves come back re-conjoined (None when empty).
    """
    pushable: list[ast.Expr] = []
    remainder: list[ast.Expr] = []
    for conjunct in split_conjuncts(where):
        positions = _resolved_positions(conjunct, resolver)
        if positions is not None and all(p < boundary for p in positions):
            pushable.append(conjunct)
        else:
            remainder.append(conjunct)
    return conjoin(pushable), conjoin(remainder)
