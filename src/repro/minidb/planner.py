"""Access-path selection for minidb.

Given a table, a WHERE expression, and the query's ORDER BY shape, the
planner picks the cheapest scan:

1. rowid point lookups;
2. a composite B+tree walk matching *equality-prefix + order-suffix* —
   ``WHERE cat = ? ORDER BY val [DESC] LIMIT k`` on an index over
   ``(cat, val)`` becomes one bounded leaf walk (backward for DESC),
   with no sort or top-k operator downstream;
3. full equality over every column of a multi-column index;
4. equality on a hash-indexed column, then on a B+tree-indexed column;
5. ``IN`` list over an indexed column (union of point lookups);
6. ``IS NULL`` on a B+tree-indexed column (the index tracks its NULL
   rowids, so the predicate is a point lookup);
7. range predicates (``<``, ``<=``, ``>``, ``>=``, ``BETWEEN``) on a
   B+tree-indexed column, with bounds merged across conjuncts;
8. an equality-prefix walk of a composite index even when it leaves the
   order unsatisfied (it still touches only the matching group);
9. a full B+tree walk in key order — forward or backward — when it
   satisfies the ``ORDER BY`` (so ``ORDER BY indexed_col [DESC] LIMIT k``
   touches only ``k`` rows);
10. otherwise a sequential scan.

Because B+tree indexes are NULL-aware (every row is indexed; NULL keys
sort first, exactly like the executor's sort keys), ordered walks stay
valid on nullable columns.  A plan also reports ``order_satisfied`` when
every ORDER BY column is pinned by an equality conjunct, letting the
executor drop the sort for ``WHERE cat = ? ORDER BY cat``.

Unused conjuncts become a residual filter.  This is the machinery behind the
paper's Table 1 asymmetry: Buckaroo's group lookups (``WHERE country = ?``)
and the zoom engine's viewport queries (``WHERE x BETWEEN ? AND ?``) all
resolve to index scans touching only the relevant rows.

The module also hosts the join-planning helpers the streaming executor
uses: splitting an ``ON`` clause into hash-join key pairs plus residual
conjuncts, and partitioning a ``WHERE`` clause so base-table conjuncts can
be pushed below the join into the scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanningError
from repro.minidb import ast_nodes as ast
from repro.minidb.storage import Table

SEQ = "seq"
INDEX_EQ = "index_eq"
INDEX_IN = "index_in"
INDEX_RANGE = "index_range"
INDEX_ORDER = "index_order"
INDEX_PREFIX = "index_prefix"
INDEX_NULL = "index_null"
ROWID_EQ = "rowid_eq"
ROWID_IN = "rowid_in"


@dataclass
class ScanPlan:
    """A chosen access path plus any residual predicate."""

    table: str
    kind: str = SEQ
    index_name: str | None = None
    column: str | None = None
    columns: tuple = ()  # index key columns (composite paths)
    eq_expr: ast.Expr | None = None
    prefix_exprs: tuple = ()  # equality values for the leading index columns
    in_exprs: tuple = ()
    low_expr: ast.Expr | None = None
    high_expr: ast.Expr | None = None
    include_low: bool = True
    include_high: bool = True
    descending: bool = False  # walk the index backward (ORDER BY ... DESC)
    residual: ast.Expr | None = None
    order_satisfied: bool = False  # scan output already matches the ORDER BY

    def describe(self) -> str:
        """Human-readable one-line plan description (used by EXPLAIN)."""
        if self.kind == SEQ:
            base = f"SeqScan({self.table})"
        elif self.kind == INDEX_ORDER:
            base = (
                f"IndexOrderScan({self.table}.{self._key_text()} "
                f"via {self.index_name}{', DESC' if self.descending else ''})"
            )
        elif self.kind == INDEX_PREFIX:
            if len(self.prefix_exprs) == len(self.columns):
                base = (
                    f"IndexEqScan({self.table}.{self._key_text()} "
                    f"via {self.index_name}, {len(self.prefix_exprs)} cols)"
                )
            else:
                base = (
                    f"IndexOrderScan({self.table}.{self._key_text()} "
                    f"via {self.index_name}, eq_prefix={len(self.prefix_exprs)}"
                    f"{', DESC' if self.descending else ''})"
                )
        elif self.kind == INDEX_NULL:
            base = f"IndexNullScan({self.table}.{self.column} via {self.index_name})"
        elif self.kind == ROWID_EQ:
            base = f"RowidLookup({self.table})"
        elif self.kind == ROWID_IN:
            base = f"RowidLookup({self.table}, {len(self.in_exprs)} keys)"
        elif self.kind == INDEX_EQ:
            base = f"IndexEqScan({self.table}.{self.column} via {self.index_name})"
        elif self.kind == INDEX_IN:
            base = (
                f"IndexInScan({self.table}.{self.column} via {self.index_name}, "
                f"{len(self.in_exprs)} keys)"
            )
        else:
            low = "-inf" if self.low_expr is None else "?"
            high = "+inf" if self.high_expr is None else "?"
            base = (
                f"IndexRangeScan({self.table}.{self.column} via {self.index_name}, "
                f"{low}..{high})"
            )
        if self.residual is not None:
            base += " + Filter"
        return base

    def _key_text(self) -> str:
        if len(self.columns) > 1:
            return f"({', '.join(self.columns)})"
        return self.columns[0] if self.columns else self.column


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten nested ANDs into a conjunct list (empty for None)."""
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    """Rebuild an AND tree from a conjunct list (None when empty)."""
    if not conjuncts:
        return None
    expr = conjuncts[0]
    for conjunct in conjuncts[1:]:
        expr = ast.Binary("AND", expr, conjunct)
    return expr


def _is_value_expr(expr: ast.Expr) -> bool:
    """True when ``expr`` is evaluable without a row (literals/params only)."""
    return all(
        not isinstance(node, (ast.ColumnRef, ast.SlotRef, ast.FuncCall))
        for node in ast.walk(expr)
    )


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _column_of(expr: ast.Expr, table: Table,
               binding: str | None = None) -> str | None:
    """Column name when ``expr`` is a reference to a column of ``table``."""
    if isinstance(expr, ast.ColumnRef) and table.schema.has_column(expr.name):
        if expr.table is None or expr.table in (table.name, binding):
            return expr.name
    return None


def _is_rowid_ref(expr: ast.Expr, table: Table,
                  binding: str | None = None) -> bool:
    """True when ``expr`` is the rowid pseudo-column of ``table``."""
    return (
        isinstance(expr, ast.ColumnRef)
        and expr.name == "rowid"
        and not table.schema.has_column("rowid")
        and (expr.table is None or expr.table in (table.name, binding))
    )


def plan_scan(table: Table, where: ast.Expr | None,
              binding: str | None = None,
              order_spec: list | None = None) -> ScanPlan:
    """Choose an access path for ``table`` under predicate ``where``.

    ``order_spec`` is the caller's ORDER BY shape as ``(column, ascending)``
    pairs (None when the order cannot be served by a scan).  The planner
    prefers plans whose output order already satisfies it — marked via
    ``order_satisfied`` — so the executor can drop its sort/top-k stage.
    """
    conjuncts = split_conjuncts(where)
    eq_candidates: list[tuple[int, str, ast.Expr, int]] = []  # (score, col, value, idx)
    eq_map: dict[str, tuple[ast.Expr, int]] = {}  # every equality conjunct
    in_candidates: list[tuple[str, tuple, int]] = []
    null_candidates: list[tuple[str, int]] = []  # (col, idx) for IS NULL
    bounds: dict[str, dict] = {}

    # rowid point lookups beat every index — resolve them first
    for i, conjunct in enumerate(conjuncts):
        if isinstance(conjunct, ast.Binary) and conjunct.op == "=":
            if _is_rowid_ref(conjunct.left, table, binding) and _is_value_expr(conjunct.right):
                value = conjunct.right
            elif _is_rowid_ref(conjunct.right, table, binding) and _is_value_expr(conjunct.left):
                value = conjunct.left
            else:
                continue
            residual = conjoin([c for j, c in enumerate(conjuncts) if j != i])
            return ScanPlan(
                table=table.name, kind=ROWID_EQ, eq_expr=value, residual=residual,
                order_satisfied=order_spec is not None,  # at most one row
            )
        if isinstance(conjunct, ast.InList) and not conjunct.negated:
            if _is_rowid_ref(conjunct.expr, table, binding) and all(
                _is_value_expr(item) for item in conjunct.items
            ):
                residual = conjoin([c for j, c in enumerate(conjuncts) if j != i])
                return ScanPlan(
                    table=table.name, kind=ROWID_IN, in_exprs=conjunct.items,
                    residual=residual,
                )

    for i, conjunct in enumerate(conjuncts):
        if isinstance(conjunct, ast.Binary) and conjunct.op in ("=", "<", "<=", ">", ">="):
            left_col = _column_of(conjunct.left, table, binding)
            right_col = _column_of(conjunct.right, table, binding)
            if left_col and _is_value_expr(conjunct.right):
                column, value, op = left_col, conjunct.right, conjunct.op
            elif right_col and _is_value_expr(conjunct.left):
                column, value, op = right_col, conjunct.left, _FLIPPED.get(conjunct.op, "=")
            else:
                continue
            if op == "=":
                eq_map.setdefault(column, (value, i))
                indexes = table.indexes_on(column)
                if indexes:
                    score = 100 if any(ix.kind == "hash" for ix in indexes) else 90
                    eq_candidates.append((score, column, value, i))
            else:
                entry = bounds.setdefault(
                    column,
                    {"low": None, "high": None, "incl_low": True, "incl_high": True,
                     "conjuncts": []},
                )
                if op in (">", ">="):
                    entry["low"] = value
                    entry["incl_low"] = op == ">="
                else:
                    entry["high"] = value
                    entry["incl_high"] = op == "<="
                entry["conjuncts"].append(i)
        elif isinstance(conjunct, ast.Between) and not conjunct.negated:
            column = _column_of(conjunct.expr, table, binding)
            if column and _is_value_expr(conjunct.low) and _is_value_expr(conjunct.high):
                entry = bounds.setdefault(
                    column,
                    {"low": None, "high": None, "incl_low": True, "incl_high": True,
                     "conjuncts": []},
                )
                entry["low"] = conjunct.low
                entry["high"] = conjunct.high
                entry["incl_low"] = entry["incl_high"] = True
                entry["conjuncts"].append(i)
        elif isinstance(conjunct, ast.InList) and not conjunct.negated:
            column = _column_of(conjunct.expr, table, binding)
            if column and all(_is_value_expr(item) for item in conjunct.items):
                if table.indexes_on(column):
                    in_candidates.append((column, conjunct.items, i))
        elif isinstance(conjunct, ast.IsNull) and not conjunct.negated:
            column = _column_of(conjunct.expr, table, binding)
            if column:
                null_candidates.append((column, i))

    # ORDER BY columns pinned by an equality are constant across the output;
    # what remains is the order the scan itself must produce
    effective_order: list = []
    if order_spec:
        seen_cols: set[str] = set()
        for column, ascending in order_spec:
            if column in eq_map or column in seen_cols:
                continue  # constant column / repeated key: ordering is a no-op
            seen_cols.add(column)
            effective_order.append((column, ascending))
    trivial_order = bool(order_spec) and not effective_order

    def finalize(plan: ScanPlan) -> ScanPlan:
        if trivial_order:
            plan.order_satisfied = True
        return plan

    # equality-prefix + order-suffix over composite (and single) B+trees:
    # `WHERE cat = ? ORDER BY val DESC` on (cat, val) is one bounded walk
    walk = _match_ordered_walk(table, eq_map, effective_order)
    if walk is not None and walk[1] > 0:
        return _prefix_plan(table, conjuncts, eq_map, *walk, order_satisfied=True)

    # full equality across every column of a multi-column index
    full_eq = _match_full_equality(table, eq_map)
    if full_eq is not None:
        index, prefix_cols = full_eq
        used = {eq_map[c][1] for c in prefix_cols}
        residual = conjoin([c for j, c in enumerate(conjuncts) if j not in used])
        return finalize(ScanPlan(
            table=table.name, kind=INDEX_PREFIX, index_name=index.name,
            column=index.columns[0], columns=index.columns,
            prefix_exprs=tuple(eq_map[c][0] for c in prefix_cols),
            residual=residual,
        ))

    # best single-column equality
    if eq_candidates:
        eq_candidates.sort(reverse=True, key=lambda c: c[0])
        _, column, value, used = eq_candidates[0]
        index = _best_index(table, column, prefer="hash")
        residual = conjoin([c for j, c in enumerate(conjuncts) if j != used])
        return finalize(ScanPlan(
            table=table.name, kind=INDEX_EQ, index_name=index.name, column=column,
            eq_expr=value, residual=residual,
        ))
    if in_candidates:
        column, items, used = in_candidates[0]
        index = _best_index(table, column, prefer="hash")
        residual = conjoin([c for j, c in enumerate(conjuncts) if j != used])
        return finalize(ScanPlan(
            table=table.name, kind=INDEX_IN, index_name=index.name, column=column,
            in_exprs=items, residual=residual,
        ))
    for column, used in null_candidates:
        btree = _best_index(table, column, prefer="btree", require_btree=True)
        if btree is None or not btree.covers(table.n_rows):
            continue
        residual = conjoin([c for j, c in enumerate(conjuncts) if j != used])
        return finalize(ScanPlan(
            table=table.name, kind=INDEX_NULL, index_name=btree.name, column=column,
            residual=residual,
        ))
    for column, entry in bounds.items():
        btree = _best_index(table, column, prefer="btree", require_btree=True)
        if btree is None:
            continue
        used = set(entry["conjuncts"])
        residual = conjoin([c for j, c in enumerate(conjuncts) if j not in used])
        return finalize(ScanPlan(
            table=table.name, kind=INDEX_RANGE, index_name=btree.name, column=column,
            low_expr=entry["low"], high_expr=entry["high"],
            include_low=entry["incl_low"], include_high=entry["incl_high"],
            residual=residual,
            order_satisfied=effective_order == [(column, True)],
        ))
    # equality-prefix walk of a composite index, order notwithstanding:
    # still confines the scan to the matching group
    prefix = _match_longest_prefix(table, eq_map)
    if prefix is not None:
        index, k = prefix
        return finalize(_prefix_plan(
            table, conjuncts, eq_map, index, k, False, order_satisfied=False,
        ))
    if walk is not None:  # pure ordered walk (no equality prefix)
        index, _k, descending = walk
        return ScanPlan(
            table=table.name, kind=INDEX_ORDER, index_name=index.name,
            column=index.columns[0], columns=index.columns,
            descending=descending, residual=where,
            order_satisfied=True,
        )
    return finalize(ScanPlan(table=table.name, kind=SEQ, residual=where))


def _match_ordered_walk(table: Table, eq_map: dict, effective_order: list):
    """The B+tree index (if any) whose key order serves the ORDER BY after
    an equality prefix: returns ``(index, prefix_len, descending)``.

    The index columns past the equality prefix must start with exactly the
    residual ORDER BY columns, all in one direction (ascending → forward
    leaf walk, descending → backward).  The index must cover every table
    row — always true for maintained indexes, which are NULL-aware.
    """
    if not effective_order:
        return None
    directions = {ascending for _, ascending in effective_order}
    if len(directions) != 1:
        return None
    descending = not directions.pop()
    best = None
    for index in table.btree_indexes():
        if not index.covers(table.n_rows):
            continue
        k = _eq_prefix_len(index.columns, eq_map)
        suffix = index.columns[k:]
        m = len(effective_order)
        if len(suffix) < m:
            continue
        if any(suffix[i] != effective_order[i][0] for i in range(m)):
            continue
        # rank: longest equality prefix, then tightest index (fewest columns)
        rank = (k, -index.n_columns)
        if best is None or rank > best[0]:
            best = (rank, (index, k, descending))
    return best[1] if best is not None else None


def _match_full_equality(table: Table, eq_map: dict):
    """A multi-column index every column of which is equality-bound."""
    best = None
    for index in table.indexes.values():
        if index.n_columns < 2:
            continue
        if any(column not in eq_map for column in index.columns):
            continue
        rank = (index.n_columns, index.kind == "hash")
        if best is None or rank > best[0]:
            best = (rank, (index, index.columns))
    return best[1] if best is not None else None


def _match_longest_prefix(table: Table, eq_map: dict):
    """The composite B+tree with the longest equality-bound leading prefix."""
    best = None
    for index in table.btree_indexes():
        if index.n_columns < 2 or not index.covers(table.n_rows):
            continue
        k = _eq_prefix_len(index.columns, eq_map)
        if k == 0:
            continue
        rank = (k, -index.n_columns)
        if best is None or rank > best[0]:
            best = (rank, (index, k))
    return best[1] if best is not None else None


def _eq_prefix_len(columns: tuple, eq_map: dict) -> int:
    k = 0
    while k < len(columns) and columns[k] in eq_map:
        k += 1
    return k


def _prefix_plan(table: Table, conjuncts: list, eq_map: dict, index, k: int,
                 descending: bool, order_satisfied: bool) -> ScanPlan:
    prefix_cols = index.columns[:k]
    used = {eq_map[c][1] for c in prefix_cols}
    residual = conjoin([c for j, c in enumerate(conjuncts) if j not in used])
    return ScanPlan(
        table=table.name, kind=INDEX_PREFIX, index_name=index.name,
        column=index.columns[0], columns=index.columns,
        prefix_exprs=tuple(eq_map[c][0] for c in prefix_cols),
        descending=descending, residual=residual,
        order_satisfied=order_satisfied,
    )


def _best_index(table: Table, column: str, prefer: str,
                require_btree: bool = False):
    indexes = table.indexes_on(column)
    if require_btree:
        indexes = [ix for ix in indexes if ix.kind == "btree"]
        return indexes[0] if indexes else None
    preferred = [ix for ix in indexes if ix.kind == prefer]
    return preferred[0] if preferred else indexes[0]


# ---------------------------------------------------------------------------
# join planning
# ---------------------------------------------------------------------------


def _resolved_positions(expr: ast.Expr, resolver) -> list[int] | None:
    """Row positions of every column reference, or None when any fails.

    A failed resolution (unknown or ambiguous column) is not an error here:
    the conjunct simply stays in the residual, where compiling it surfaces
    the same :class:`PlanningError` the executor has always raised.
    """
    positions = []
    for node in ast.walk(expr):
        if isinstance(node, ast.ColumnRef):
            try:
                positions.append(resolver.resolve(node))
            except PlanningError:
                return None
    return positions


def split_join_condition(on: ast.Expr, resolver, join_offset: int,
                         width: int):
    """Decompose an ``ON`` clause for a hash join against the table at
    ``join_offset`` (occupying ``width`` row slots).

    Returns ``(pairs, right_only, residual)``:

    * ``pairs`` — ``(left_pos, right_pos)`` equi-join key positions, with
      ``right_pos`` absolute in the combined row (the executor rebases it);
    * ``right_only`` — conjuncts referencing only the newly joined table,
      applicable while building the hash table (INNER joins only);
    * ``residual`` — everything else, evaluated per candidate pair.

    An empty ``pairs`` means no hash join is possible and the caller must
    fall back to a nested loop over the full ``ON`` expression.
    """
    pairs: list[tuple[int, int]] = []
    right_only: list[ast.Expr] = []
    residual: list[ast.Expr] = []
    end = join_offset + width
    for conjunct in split_conjuncts(on):
        positions = _resolved_positions(conjunct, resolver)
        if (
            positions is not None
            and isinstance(conjunct, ast.Binary) and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            left_pos, right_pos = positions
            if left_pos >= join_offset:
                left_pos, right_pos = right_pos, left_pos
            if left_pos < join_offset <= right_pos < end:
                pairs.append((left_pos, right_pos))
                continue
        if positions and all(join_offset <= p < end for p in positions):
            right_only.append(conjunct)
        else:
            residual.append(conjunct)
    return pairs, right_only, residual


def partition_conjuncts(where: ast.Expr | None, resolver, boundary: int):
    """Split ``where`` into (pushable, remainder) around a join boundary.

    Conjuncts whose column references all land below ``boundary`` (i.e. on
    the base table) are safe to evaluate before the join — for INNER joins
    trivially, and for LEFT joins because the left side is the preserved
    side.  Both halves come back re-conjoined (None when empty).
    """
    pushable: list[ast.Expr] = []
    remainder: list[ast.Expr] = []
    for conjunct in split_conjuncts(where):
        positions = _resolved_positions(conjunct, resolver)
        if positions is not None and all(p < boundary for p in positions):
            pushable.append(conjunct)
        else:
            remainder.append(conjunct)
    return conjoin(pushable), conjoin(remainder)
