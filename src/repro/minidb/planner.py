"""Access-path selection for minidb.

Given a table, a WHERE expression, and the query's ORDER BY shape, the
planner picks the cheapest scan:

1. rowid point lookups;
2. a composite B+tree walk matching *equality-prefix + order-suffix* —
   ``WHERE cat = ? ORDER BY val [DESC] LIMIT k`` on an index over
   ``(cat, val)`` becomes one bounded leaf walk (backward for DESC),
   with no sort or top-k operator downstream;
3. full equality over every column of a multi-column index;
4. equality on a hash-indexed column, then on a B+tree-indexed column;
5. ``IN`` list over an indexed column (union of point lookups);
6. ``IS NULL`` on a B+tree-indexed column (the index tracks its NULL
   rowids, so the predicate is a point lookup);
7. range predicates (``<``, ``<=``, ``>``, ``>=``, ``BETWEEN``) on a
   B+tree-indexed column, with bounds merged across conjuncts;
8. an equality-prefix walk of a composite index even when it leaves the
   order unsatisfied (it still touches only the matching group);
9. a full B+tree walk in key order — forward or backward — when it
   satisfies the ``ORDER BY`` (so ``ORDER BY indexed_col [DESC] LIMIT k``
   touches only ``k`` rows);
10. otherwise a sequential scan.

Because B+tree indexes are NULL-aware (every row is indexed; NULL keys
sort first, exactly like the executor's sort keys), ordered walks stay
valid on nullable columns.  A plan also reports ``order_satisfied`` when
every ORDER BY column is pinned by an equality conjunct, letting the
executor drop the sort for ``WHERE cat = ? ORDER BY cat``.

Unused conjuncts become a residual filter.  This is the machinery behind the
paper's Table 1 asymmetry: Buckaroo's group lookups (``WHERE country = ?``)
and the zoom engine's viewport queries (``WHERE x BETWEEN ? AND ?``) all
resolve to index scans touching only the relevant rows.

The second half of the module is the **cost-based SELECT planner**
(:func:`plan_select`): a two-stage pipeline that first analyzes the
statement logically (bindings, conjunct classification, aggregate
rewriting) and then builds a physical plan tree
(:mod:`repro.minidb.plan_nodes`) using the statistics layer
(:mod:`repro.minidb.stats`) to

* greedily reorder all-INNER equi-joins (smallest estimated input joins
  first, smaller side becomes the hash build side),
* push single-table WHERE/ON conjuncts into each table's scan,
* choose a :class:`~repro.minidb.plan_nodes.MergeJoin` when both inputs
  arrive index-ordered on the join key (preserving key order through to
  ORDER BY elision), and
* choose a :class:`~repro.minidb.plan_nodes.StreamAggregate` when the
  GROUP BY input is already ordered on the grouping columns.

The executor is a dispatcher over the resulting tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanningError
from repro.minidb import ast_nodes as ast
from repro.minidb import plan_nodes as nodes
from repro.minidb.expressions import (
    Resolver,
    compile_expr,
    compile_filter_kernels,
    find_aggregates,
    render_expr,
)
from repro.minidb.functions import is_aggregate
from repro.minidb.stats import (
    StatsManager,
    conjunct_selectivity,
    estimate_filtered_rows,
    estimate_join_rows,
)
from repro.minidb.storage import Table
from repro.minidb.vector import BATCH_AGGREGATES

SEQ = "seq"
INDEX_EQ = "index_eq"
INDEX_IN = "index_in"
INDEX_RANGE = "index_range"
INDEX_ORDER = "index_order"
INDEX_PREFIX = "index_prefix"
INDEX_NULL = "index_null"
ROWID_EQ = "rowid_eq"
ROWID_IN = "rowid_in"

#: estimated rows below which batch mode is not worth the transpose (auto mode)
VECTOR_MIN_ROWS = 512.0

#: estimated rows below which forking a worker pool cannot pay for itself
PARALLEL_MIN_ROWS = 512.0

#: relative per-row costs for the index-vs-seq demotion gate: a B+tree
#: range walk (or an equality probe's rowid chase) pointer-chases leaves
#: and does a heap lookup per hit, roughly twice the cost of streaming
#: the heap in storage order
SEQ_ROW_COST = 1.0
INDEX_RANGE_ROW_COST = 2.0
#: tables smaller than this never demote: both paths are trivially cheap
#: and the index walk's constant factors don't matter at this size
DEMOTE_MIN_ROWS = 128


@dataclass
class ScanPlan:
    """A chosen access path plus any residual predicate."""

    table: str
    kind: str = SEQ
    index_name: str | None = None
    column: str | None = None
    columns: tuple = ()  # index key columns (composite paths)
    eq_expr: ast.Expr | None = None
    prefix_exprs: tuple = ()  # equality values for the leading index columns
    in_exprs: tuple = ()
    low_expr: ast.Expr | None = None
    high_expr: ast.Expr | None = None
    include_low: bool = True
    include_high: bool = True
    descending: bool = False  # walk the index backward (ORDER BY ... DESC)
    residual: ast.Expr | None = None
    order_satisfied: bool = False  # scan output already matches the ORDER BY

    def describe(self, include_residual: bool = True) -> str:
        """Human-readable one-line plan description (used by EXPLAIN).

        ``include_residual=False`` omits the ``+ Filter`` suffix — the plan
        tree renders the residual as its own :class:`~repro.minidb.plan_nodes.Filter`
        node instead.
        """
        if self.kind == SEQ:
            base = f"SeqScan({self.table})"
        elif self.kind == INDEX_ORDER:
            base = (
                f"IndexOrderScan({self.table}.{self._key_text()} "
                f"via {self.index_name}{', DESC' if self.descending else ''})"
            )
        elif self.kind == INDEX_PREFIX:
            if len(self.prefix_exprs) == len(self.columns):
                base = (
                    f"IndexEqScan({self.table}.{self._key_text()} "
                    f"via {self.index_name}, {len(self.prefix_exprs)} cols)"
                )
            else:
                bounds = ""
                if self.low_expr is not None or self.high_expr is not None:
                    low = "-inf" if self.low_expr is None else "?"
                    high = "+inf" if self.high_expr is None else "?"
                    bounds = f", range={low}..{high}"
                base = (
                    f"IndexOrderScan({self.table}.{self._key_text()} "
                    f"via {self.index_name}, eq_prefix={len(self.prefix_exprs)}"
                    f"{bounds}{', DESC' if self.descending else ''})"
                )
        elif self.kind == INDEX_NULL:
            base = f"IndexNullScan({self.table}.{self.column} via {self.index_name})"
        elif self.kind == ROWID_EQ:
            base = f"RowidLookup({self.table})"
        elif self.kind == ROWID_IN:
            base = f"RowidLookup({self.table}, {len(self.in_exprs)} keys)"
        elif self.kind == INDEX_EQ:
            base = f"IndexEqScan({self.table}.{self.column} via {self.index_name})"
        elif self.kind == INDEX_IN:
            base = (
                f"IndexInScan({self.table}.{self.column} via {self.index_name}, "
                f"{len(self.in_exprs)} keys)"
            )
        else:
            low = "-inf" if self.low_expr is None else "?"
            high = "+inf" if self.high_expr is None else "?"
            base = (
                f"IndexRangeScan({self.table}.{self.column} via {self.index_name}, "
                f"{low}..{high}{', DESC' if self.descending else ''})"
            )
        if include_residual and self.residual is not None:
            base += " + Filter"
        return base

    def _key_text(self) -> str:
        if len(self.columns) > 1:
            return f"({', '.join(self.columns)})"
        return self.columns[0] if self.columns else self.column


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten nested ANDs into a conjunct list (empty for None)."""
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    """Rebuild an AND tree from a conjunct list (None when empty)."""
    if not conjuncts:
        return None
    expr = conjuncts[0]
    for conjunct in conjuncts[1:]:
        expr = ast.Binary("AND", expr, conjunct)
    return expr


def _is_value_expr(expr: ast.Expr) -> bool:
    """True when ``expr`` is evaluable without a row (literals/params only)."""
    return all(
        not isinstance(node, (ast.ColumnRef, ast.SlotRef, ast.FuncCall))
        for node in ast.walk(expr)
    )


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _column_of(expr: ast.Expr, table: Table,
               binding: str | None = None) -> str | None:
    """Column name when ``expr`` is a reference to a column of ``table``."""
    if isinstance(expr, ast.ColumnRef) and table.schema.has_column(expr.name):
        if expr.table is None or expr.table in (table.name, binding):
            return expr.name
    return None


def _is_rowid_ref(expr: ast.Expr, table: Table,
                  binding: str | None = None) -> bool:
    """True when ``expr`` is the rowid pseudo-column of ``table``."""
    return (
        isinstance(expr, ast.ColumnRef)
        and expr.name == "rowid"
        and not table.schema.has_column("rowid")
        and (expr.table is None or expr.table in (table.name, binding))
    )


def plan_scan(table: Table, where: ast.Expr | None,
              binding: str | None = None,
              order_spec: list | None = None) -> ScanPlan:
    """Choose an access path for ``table`` under predicate ``where``.

    ``order_spec`` is the caller's ORDER BY shape as ``(column, ascending)``
    pairs (None when the order cannot be served by a scan).  The planner
    prefers plans whose output order already satisfies it — marked via
    ``order_satisfied`` — so the executor can drop its sort/top-k stage.
    """
    conjuncts = split_conjuncts(where)
    eq_candidates: list[tuple[int, str, ast.Expr, int]] = []  # (score, col, value, idx)
    eq_map: dict[str, tuple[ast.Expr, int]] = {}  # every equality conjunct
    in_candidates: list[tuple[str, tuple, int]] = []
    null_candidates: list[tuple[str, int]] = []  # (col, idx) for IS NULL
    bounds: dict[str, dict] = {}

    # rowid point lookups beat every index — resolve them first
    for i, conjunct in enumerate(conjuncts):
        if isinstance(conjunct, ast.Binary) and conjunct.op == "=":
            if _is_rowid_ref(conjunct.left, table, binding) and _is_value_expr(conjunct.right):
                value = conjunct.right
            elif _is_rowid_ref(conjunct.right, table, binding) and _is_value_expr(conjunct.left):
                value = conjunct.left
            else:
                continue
            residual = conjoin([c for j, c in enumerate(conjuncts) if j != i])
            return ScanPlan(
                table=table.name, kind=ROWID_EQ, eq_expr=value, residual=residual,
                order_satisfied=order_spec is not None,  # at most one row
            )
        if isinstance(conjunct, ast.InList) and not conjunct.negated:
            if _is_rowid_ref(conjunct.expr, table, binding) and all(
                _is_value_expr(item) for item in conjunct.items
            ):
                residual = conjoin([c for j, c in enumerate(conjuncts) if j != i])
                return ScanPlan(
                    table=table.name, kind=ROWID_IN, in_exprs=conjunct.items,
                    residual=residual,
                )

    for i, conjunct in enumerate(conjuncts):
        if isinstance(conjunct, ast.Binary) and conjunct.op in ("=", "<", "<=", ">", ">="):
            left_col = _column_of(conjunct.left, table, binding)
            right_col = _column_of(conjunct.right, table, binding)
            if left_col and _is_value_expr(conjunct.right):
                column, value, op = left_col, conjunct.right, conjunct.op
            elif right_col and _is_value_expr(conjunct.left):
                column, value, op = right_col, conjunct.left, _FLIPPED.get(conjunct.op, "=")
            else:
                continue
            if op == "=":
                eq_map.setdefault(column, (value, i))
                indexes = table.indexes_on(column)
                if indexes:
                    score = 100 if any(ix.kind == "hash" for ix in indexes) else 90
                    eq_candidates.append((score, column, value, i))
            else:
                entry = bounds.setdefault(
                    column,
                    {"low": None, "high": None, "incl_low": True, "incl_high": True,
                     "conjuncts": []},
                )
                # bound values are expressions (often parameters), so two
                # conjuncts on the same side cannot be compared at plan
                # time: the scan consumes the first, the rest stay residual
                if op in (">", ">="):
                    if entry["low"] is not None:
                        continue
                    entry["low"] = value
                    entry["incl_low"] = op == ">="
                else:
                    if entry["high"] is not None:
                        continue
                    entry["high"] = value
                    entry["incl_high"] = op == "<="
                entry["conjuncts"].append(i)
        elif isinstance(conjunct, ast.Between) and not conjunct.negated:
            column = _column_of(conjunct.expr, table, binding)
            if column and _is_value_expr(conjunct.low) and _is_value_expr(conjunct.high):
                entry = bounds.setdefault(
                    column,
                    {"low": None, "high": None, "incl_low": True, "incl_high": True,
                     "conjuncts": []},
                )
                if entry["low"] is not None or entry["high"] is not None:
                    continue  # a side is taken; this BETWEEN stays residual
                entry["low"] = conjunct.low
                entry["high"] = conjunct.high
                entry["incl_low"] = entry["incl_high"] = True
                entry["conjuncts"].append(i)
        elif isinstance(conjunct, ast.InList) and not conjunct.negated:
            column = _column_of(conjunct.expr, table, binding)
            if column and all(_is_value_expr(item) for item in conjunct.items):
                if table.indexes_on(column):
                    in_candidates.append((column, conjunct.items, i))
        elif isinstance(conjunct, ast.IsNull) and not conjunct.negated:
            column = _column_of(conjunct.expr, table, binding)
            if column:
                null_candidates.append((column, i))

    # ORDER BY columns pinned by an equality are constant across the output;
    # what remains is the order the scan itself must produce
    effective_order: list = []
    if order_spec:
        seen_cols: set[str] = set()
        for column, ascending in order_spec:
            if column in eq_map or column in seen_cols:
                continue  # constant column / repeated key: ordering is a no-op
            seen_cols.add(column)
            effective_order.append((column, ascending))
    trivial_order = bool(order_spec) and not effective_order

    def finalize(plan: ScanPlan) -> ScanPlan:
        if trivial_order:
            plan.order_satisfied = True
        return plan

    # equality-prefix + order-suffix over composite (and single) B+trees:
    # `WHERE cat = ? ORDER BY val DESC` on (cat, val) is one bounded walk
    walk = _match_ordered_walk(table, eq_map, effective_order)
    if walk is not None and walk[1] > 0:
        return _prefix_plan(table, conjuncts, eq_map, *walk,
                            order_satisfied=True, bounds=bounds)

    # full equality across every column of a multi-column index
    full_eq = _match_full_equality(table, eq_map)
    if full_eq is not None:
        index, prefix_cols = full_eq
        used = {eq_map[c][1] for c in prefix_cols}
        residual = conjoin([c for j, c in enumerate(conjuncts) if j not in used])
        return finalize(ScanPlan(
            table=table.name, kind=INDEX_PREFIX, index_name=index.name,
            column=index.columns[0], columns=index.columns,
            prefix_exprs=tuple(eq_map[c][0] for c in prefix_cols),
            residual=residual,
        ))

    # best single-column equality
    if eq_candidates:
        eq_candidates.sort(reverse=True, key=lambda c: c[0])
        _, column, value, used = eq_candidates[0]
        index = _best_index(table, column, prefer="hash")
        residual = conjoin([c for j, c in enumerate(conjuncts) if j != used])
        return finalize(ScanPlan(
            table=table.name, kind=INDEX_EQ, index_name=index.name, column=column,
            eq_expr=value, residual=residual,
        ))
    if in_candidates:
        column, items, used = in_candidates[0]
        index = _best_index(table, column, prefer="hash")
        residual = conjoin([c for j, c in enumerate(conjuncts) if j != used])
        return finalize(ScanPlan(
            table=table.name, kind=INDEX_IN, index_name=index.name, column=column,
            in_exprs=items, residual=residual,
        ))
    for column, used in null_candidates:
        btree = _best_index(table, column, prefer="btree", require_btree=True)
        if btree is None or not btree.covers(table.n_rows):
            continue
        residual = conjoin([c for j, c in enumerate(conjuncts) if j != used])
        return finalize(ScanPlan(
            table=table.name, kind=INDEX_NULL, index_name=btree.name, column=column,
            residual=residual,
        ))
    for column, entry in bounds.items():
        btree = _best_index(table, column, prefer="btree", require_btree=True)
        if btree is None:
            continue
        used = set(entry["conjuncts"])
        residual = conjoin([c for j, c in enumerate(conjuncts) if j not in used])
        descending = effective_order == [(column, False)]
        return finalize(ScanPlan(
            table=table.name, kind=INDEX_RANGE, index_name=btree.name, column=column,
            low_expr=entry["low"], high_expr=entry["high"],
            include_low=entry["incl_low"], include_high=entry["incl_high"],
            descending=descending, residual=residual,
            order_satisfied=descending or effective_order == [(column, True)],
        ))
    # equality-prefix walk of a composite index, order notwithstanding:
    # still confines the scan to the matching group
    prefix = _match_longest_prefix(table, eq_map)
    if prefix is not None:
        index, k = prefix
        return finalize(_prefix_plan(
            table, conjuncts, eq_map, index, k, False, order_satisfied=False,
            bounds=bounds,
        ))
    if walk is not None:  # ordered walk with no equality prefix
        index, _k, descending = walk
        entry = bounds.get(index.columns[0])
        if entry is not None:
            # range + order fusion without a prefix: seed the full-index
            # walk at the range bound on the leading column
            used = set(entry["conjuncts"])
            residual = conjoin([c for j, c in enumerate(conjuncts) if j not in used])
            return ScanPlan(
                table=table.name, kind=INDEX_PREFIX, index_name=index.name,
                column=index.columns[0], columns=index.columns,
                prefix_exprs=(),
                low_expr=entry["low"], high_expr=entry["high"],
                include_low=entry["incl_low"], include_high=entry["incl_high"],
                descending=descending, residual=residual,
                order_satisfied=True,
            )
        return ScanPlan(
            table=table.name, kind=INDEX_ORDER, index_name=index.name,
            column=index.columns[0], columns=index.columns,
            descending=descending, residual=where,
            order_satisfied=True,
        )
    return finalize(ScanPlan(table=table.name, kind=SEQ, residual=where))


def _match_ordered_walk(table: Table, eq_map: dict, effective_order: list):
    """The B+tree index (if any) whose key order serves the ORDER BY after
    an equality prefix: returns ``(index, prefix_len, descending)``.

    The index columns past the equality prefix must start with exactly the
    residual ORDER BY columns, all in one direction (ascending → forward
    leaf walk, descending → backward).  The index must cover every table
    row — always true for maintained indexes, which are NULL-aware.
    """
    if not effective_order:
        return None
    directions = {ascending for _, ascending in effective_order}
    if len(directions) != 1:
        return None
    descending = not directions.pop()
    best = None
    for index in table.btree_indexes():
        if not index.covers(table.n_rows):
            continue
        k = _eq_prefix_len(index.columns, eq_map)
        suffix = index.columns[k:]
        m = len(effective_order)
        if len(suffix) < m:
            continue
        if any(suffix[i] != effective_order[i][0] for i in range(m)):
            continue
        # rank: longest equality prefix, then tightest index (fewest columns)
        rank = (k, -index.n_columns)
        if best is None or rank > best[0]:
            best = (rank, (index, k, descending))
    return best[1] if best is not None else None


def _match_full_equality(table: Table, eq_map: dict):
    """A multi-column index every column of which is equality-bound."""
    best = None
    for index in table.indexes.values():
        if index.n_columns < 2:
            continue
        if any(column not in eq_map for column in index.columns):
            continue
        rank = (index.n_columns, index.kind == "hash")
        if best is None or rank > best[0]:
            best = (rank, (index, index.columns))
    return best[1] if best is not None else None


def _match_longest_prefix(table: Table, eq_map: dict):
    """The composite B+tree with the longest equality-bound leading prefix."""
    best = None
    for index in table.btree_indexes():
        if index.n_columns < 2 or not index.covers(table.n_rows):
            continue
        k = _eq_prefix_len(index.columns, eq_map)
        if k == 0:
            continue
        rank = (k, -index.n_columns)
        if best is None or rank > best[0]:
            best = (rank, (index, k))
    return best[1] if best is not None else None


def _eq_prefix_len(columns: tuple, eq_map: dict) -> int:
    k = 0
    while k < len(columns) and columns[k] in eq_map:
        k += 1
    return k


def _prefix_plan(table: Table, conjuncts: list, eq_map: dict, index, k: int,
                 descending: bool, order_satisfied: bool,
                 bounds: dict | None = None) -> ScanPlan:
    prefix_cols = index.columns[:k]
    used = {eq_map[c][1] for c in prefix_cols}
    low_expr = high_expr = None
    include_low = include_high = True
    if bounds and k < index.n_columns:
        # range + order fusion: a range conjunct on the column right after
        # the equality prefix seeds the leaf walk at the bound instead of
        # surviving as a residual filter (hash full-equality paths never
        # reach here with k < n_columns, so the index is a B+tree)
        entry = bounds.get(index.columns[k])
        if entry is not None and index.kind == "btree":
            low_expr, high_expr = entry["low"], entry["high"]
            include_low, include_high = entry["incl_low"], entry["incl_high"]
            used |= set(entry["conjuncts"])
    residual = conjoin([c for j, c in enumerate(conjuncts) if j not in used])
    return ScanPlan(
        table=table.name, kind=INDEX_PREFIX, index_name=index.name,
        column=index.columns[0], columns=index.columns,
        prefix_exprs=tuple(eq_map[c][0] for c in prefix_cols),
        low_expr=low_expr, high_expr=high_expr,
        include_low=include_low, include_high=include_high,
        descending=descending, residual=residual,
        order_satisfied=order_satisfied,
    )


def _best_index(table: Table, column: str, prefer: str,
                require_btree: bool = False):
    indexes = table.indexes_on(column)
    if require_btree:
        indexes = [ix for ix in indexes if ix.kind == "btree"]
        return indexes[0] if indexes else None
    preferred = [ix for ix in indexes if ix.kind == prefer]
    return preferred[0] if preferred else indexes[0]


# ---------------------------------------------------------------------------
# join planning
# ---------------------------------------------------------------------------


def _resolved_positions(expr: ast.Expr, resolver) -> list[int] | None:
    """Row positions of every column reference, or None when any fails.

    A failed resolution (unknown or ambiguous column) is not an error here:
    the conjunct simply stays in the residual, where compiling it surfaces
    the same :class:`PlanningError` the executor has always raised.
    """
    positions = []
    for node in ast.walk(expr):
        if isinstance(node, ast.ColumnRef):
            try:
                positions.append(resolver.resolve(node))
            except PlanningError:
                return None
    return positions


def split_join_condition(on: ast.Expr, resolver, join_offset: int,
                         width: int):
    """Decompose an ``ON`` clause for a hash join against the table at
    ``join_offset`` (occupying ``width`` row slots).

    Returns ``(pairs, right_only, residual)``:

    * ``pairs`` — ``(left_pos, right_pos)`` equi-join key positions, with
      ``right_pos`` absolute in the combined row (the executor rebases it);
    * ``right_only`` — conjuncts referencing only the newly joined table,
      applicable while building the hash table (INNER joins only);
    * ``residual`` — everything else, evaluated per candidate pair.

    An empty ``pairs`` means no hash join is possible and the caller must
    fall back to a nested loop over the full ``ON`` expression.
    """
    pairs: list[tuple[int, int]] = []
    right_only: list[ast.Expr] = []
    residual: list[ast.Expr] = []
    end = join_offset + width
    for conjunct in split_conjuncts(on):
        positions = _resolved_positions(conjunct, resolver)
        if (
            positions is not None
            and isinstance(conjunct, ast.Binary) and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            left_pos, right_pos = positions
            if left_pos >= join_offset:
                left_pos, right_pos = right_pos, left_pos
            if left_pos < join_offset <= right_pos < end:
                pairs.append((left_pos, right_pos))
                continue
        if positions and all(join_offset <= p < end for p in positions):
            right_only.append(conjunct)
        else:
            residual.append(conjunct)
    return pairs, right_only, residual


def partition_conjuncts(where: ast.Expr | None, resolver, boundary: int):
    """Split ``where`` into (pushable, remainder) around a join boundary.

    Conjuncts whose column references all land below ``boundary`` (i.e. on
    the base table) are safe to evaluate before the join — for INNER joins
    trivially, and for LEFT joins because the left side is the preserved
    side.  Both halves come back re-conjoined (None when empty).
    """
    pushable: list[ast.Expr] = []
    remainder: list[ast.Expr] = []
    for conjunct in split_conjuncts(where):
        positions = _resolved_positions(conjunct, resolver)
        if positions is not None and all(p < boundary for p in positions):
            pushable.append(conjunct)
        else:
            remainder.append(conjunct)
    return conjoin(pushable), conjoin(remainder)


# ---------------------------------------------------------------------------
# cost-based SELECT planning: logical analysis -> physical plan tree
# ---------------------------------------------------------------------------

#: steer the driver scan into join-key order (enabling a merge join) only
#: when the hash build it avoids is at least this many estimated rows...
MERGE_MIN_BUILD_ROWS = 256
#: ...and at least this fraction of the estimated probe stream
MERGE_STEER_RATIO = 0.25


class SelectPlan:
    """A compiled physical plan for one SELECT statement.

    ``tables`` names every base table the plan reads — the plan cache
    pokes their lazy statistics before reuse so a pending rebuild
    invalidates the plan rather than executing against drifted estimates.
    """

    __slots__ = ("stmt", "root", "names", "resolver", "items", "tables")

    def __init__(self, stmt, root, names, resolver, items, tables=()):
        self.stmt = stmt
        self.root = root
        self.names = names
        self.resolver = resolver
        self.items = items
        self.tables = tables


class _TableSlot:
    """One FROM-list entry: binding, storage, and per-table planning state."""

    __slots__ = ("binding", "table", "join", "stats", "pushed", "offset",
                 "width", "est_out")

    def __init__(self, binding: str, table: Table, join):
        self.binding = binding
        self.table = table
        self.join = join  # the ast.Join that introduced it (None for base)
        self.stats = None
        self.pushed: list[ast.Expr] = []  # single-table conjuncts for the scan
        self.offset = 0
        self.width = 1 + len(table.schema.columns)
        self.est_out = 0.0


class _ConjunctPool:
    """WHERE + ON conjuncts of an all-INNER join query, classified."""

    __slots__ = ("edges", "multi", "post")

    def __init__(self):
        # (binding_a, col_a, binding_b, col_b, conjunct) equi-join edges
        self.edges: list[tuple] = []
        # (frozenset of bindings, conjunct) placed at the earliest join step
        self.multi: list[tuple] = []
        # conjuncts that failed to resolve; compiling them at the end
        # surfaces the same PlanningError the executor always raised
        self.post: list[ast.Expr] = []


class _JoinStepSpec:
    """One join step in execution order (reordered all-INNER planning)."""

    __slots__ = ("slot", "pairs", "residuals", "right_plan", "right_ests")

    def __init__(self, slot, pairs, residuals):
        self.slot = slot
        self.pairs = pairs  # (left_binding, left_col, right_col)
        self.residuals = residuals
        # the build side's (plan, (path_est, out_est)) once computed, so
        # merge steering and node construction plan the scan exactly once
        self.right_plan = None
        self.right_ests = None


def _layout(table: Table, offset: int) -> dict[str, int]:
    mapping = {
        name: offset + 1 + i for i, name in enumerate(table.schema.column_names)
    }
    mapping.setdefault("rowid", offset)
    return mapping


def _expand_stars(items, bindings) -> list[ast.SelectItem]:
    expanded: list[ast.SelectItem] = []
    for item in items:
        if not item.is_star:
            expanded.append(item)
            continue
        targets = [item.star_table] if item.star_table else list(bindings)
        for binding in targets:
            if binding not in bindings:
                raise PlanningError(f"unknown table {binding!r} in select list")
            for column, position in bindings[binding].items():
                if column == "rowid":
                    continue
                expanded.append(
                    ast.SelectItem(expr=ast.ColumnRef(binding, column), alias=column)
                )
    return expanded


def output_name(item: ast.SelectItem) -> str:
    """The result-column name of one select item (alias, column, or text)."""
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    return render_expr(expr)


def _limit_literal(expr) -> int | None:
    """The literal LIMIT/OFFSET value, when statically known."""
    if (
        isinstance(expr, ast.Literal)
        and isinstance(expr.value, int)
        and not isinstance(expr.value, bool)
    ):
        return expr.value
    return None


# -- conjunct classification and greedy join ordering -----------------------


def _classify_conjuncts(stmt: ast.SelectStmt, slots, by_binding) -> _ConjunctPool:
    """Split WHERE + all ON clauses of an all-INNER query into per-table
    pushdowns (stored on the slots), equi-join edges, multi-table
    residuals, and unresolvable leftovers."""
    pool = _ConjunctPool()
    owners: dict[str, list[str]] = {}
    for slot in slots:
        for name in slot.table.schema.column_names:
            owners.setdefault(name, []).append(slot.binding)

    def binding_of(ref: ast.ColumnRef) -> str | None:
        if ref.table is not None:
            slot = by_binding.get(ref.table)
            if slot is None:
                return None
            if slot.table.schema.has_column(ref.name):
                return slot.binding
            if ref.name == "rowid":
                return slot.binding
            return None
        found = owners.get(ref.name)
        if found is not None and len(found) == 1:
            return found[0]
        return None  # unknown or ambiguous: defer to compile-time error

    conjuncts = split_conjuncts(stmt.where)
    for join in stmt.joins:
        conjuncts.extend(split_conjuncts(join.on))
    for conjunct in conjuncts:
        used: set[str] = set()
        resolvable = True
        for node in ast.walk(conjunct):
            if isinstance(node, ast.ColumnRef):
                binding = binding_of(node)
                if binding is None:
                    resolvable = False
                    break
                used.add(binding)
        if not resolvable:
            pool.post.append(conjunct)
            continue
        if (
            isinstance(conjunct, ast.Binary) and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
            and len(used) == 2
        ):
            pool.edges.append((
                binding_of(conjunct.left), conjunct.left.name,
                binding_of(conjunct.right), conjunct.right.name, conjunct,
            ))
            continue
        if len(used) == 1:
            by_binding[next(iter(used))].pushed.append(conjunct)
        else:  # constant predicates (empty set) ride along to the first step
            pool.multi.append((frozenset(used), conjunct))
    return pool


def _greedy_join_order(slots, by_binding, pool: _ConjunctPool):
    """System-R-flavoured greedy left-deep ordering.

    Start with the connected pair whose estimated join output is smallest
    (the larger input streams, the smaller becomes the first build side),
    then repeatedly add the connected table minimizing the next estimated
    intermediate size.  Disconnected tables come last as cross products.
    """
    syn_index = {slot.binding: i for i, slot in enumerate(slots)}
    est: dict[str, float] = {}
    for slot in slots:
        slot.est_out = estimate_filtered_rows(slot.stats, slot.pushed, slot.binding)
        est[slot.binding] = slot.est_out

    edges_between: dict[frozenset, list] = {}
    for lb, lc, rb, rc, _conjunct in pool.edges:
        edges_between.setdefault(frozenset((lb, rb)), []).append((lb, lc, rb, rc))

    def pair_distincts(pairs):
        return [
            (by_binding[lb].stats.distinct(lc), by_binding[rb].stats.distinct(rc))
            for lb, lc, rb, rc in pairs
        ]

    best = None
    for key, pairs in edges_between.items():
        a, b = sorted(key, key=lambda binding: syn_index[binding])
        out = estimate_join_rows(est[a], est[b], pair_distincts(pairs))
        rank = (out, min(est[a], est[b]), syn_index[a], syn_index[b])
        if best is None or rank < best[0]:
            # larger input streams, smaller becomes the build side; a tie
            # keeps the syntactic orientation (a precedes b)
            driver, build = (a, b) if est[a] >= est[b] else (b, a)
            best = (rank, driver, build, out)
    _rank, driver, build, current = best
    order = [driver, build]
    placed = {driver, build}
    remaining = [slot.binding for slot in slots if slot.binding not in placed]
    while remaining:
        choice = None
        for cand in remaining:
            pairs = []
            for other in placed:
                pairs.extend(edges_between.get(frozenset((cand, other)), ()))
            if not pairs:
                continue
            out = estimate_join_rows(current, est[cand], pair_distincts(pairs))
            rank = (out, est[cand], syn_index[cand])
            if choice is None or rank < choice[0]:
                choice = (rank, cand, out)
        if choice is None:  # disconnected component: cheapest cross product
            cand = min(remaining, key=lambda b: (est[b], syn_index[b]))
            choice = (None, cand, current * max(est[cand], 1.0))
        _r, cand, current = choice
        order.append(cand)
        placed.add(cand)
        remaining.remove(cand)
    return [by_binding[binding] for binding in order]


def _reordered_steps(exec_slots, pool: _ConjunctPool):
    """Assign equi edges and residual conjuncts to execution-order steps."""
    placed = {exec_slots[0].binding}
    edges = list(pool.edges)
    multi = list(pool.multi)
    steps: list[_JoinStepSpec] = []
    for slot in exec_slots[1:]:
        pairs = []
        rest = []
        for lb, lc, rb, rc, conjunct in edges:
            if rb == slot.binding and lb in placed:
                pairs.append((lb, lc, rc))
            elif lb == slot.binding and rb in placed:
                pairs.append((rb, rc, lc))
            else:
                rest.append((lb, lc, rb, rc, conjunct))
        edges = rest
        placed.add(slot.binding)
        residuals = [c for tabs, c in multi if tabs <= placed]
        multi = [(tabs, c) for tabs, c in multi if not tabs <= placed]
        steps.append(_JoinStepSpec(slot, pairs, residuals))
    return steps


# -- ORDER BY / GROUP BY shape analysis -------------------------------------


def _order_spec_info(stmt: ast.SelectStmt, alias_map: dict, slots):
    """The ORDER BY as ``(binding, [(column, ascending), ...])`` when every
    key is a plain column of one single table (after alias substitution).

    None when any order item is something a scan cannot produce directly —
    an expression, a positional reference, an ambiguous name, or columns
    spread across tables.  Directions may be mixed; the access-path planner
    decides what it can serve.
    """
    if not stmt.order_by:
        return None
    unique_slots = list({slot.binding: slot for slot in slots}.values())
    binding = None
    spec: list = []
    for order in stmt.order_by:
        expr = order.expr
        if (
            isinstance(expr, ast.ColumnRef) and expr.table is None
            and expr.name in alias_map
        ):
            expr = alias_map[expr.name]
        if not isinstance(expr, ast.ColumnRef):
            return None
        owners = [
            slot for slot in unique_slots
            if slot.table.schema.has_column(expr.name)
            and (expr.table is None or expr.table == slot.binding)
        ]
        if len(owners) != 1:
            return None  # unknown or ambiguous; the sort path reports it
        if binding is None:
            binding = owners[0].binding
        elif binding != owners[0].binding:
            return None
        spec.append((expr.name, order.ascending))
    return binding, spec


def _group_order_spec(stmt: ast.SelectStmt, alias_map: dict, driver):
    """GROUP BY columns as a driver-table order spec, or None when any
    grouping expression is not a plain driver column."""
    if not stmt.group_by:
        return None
    spec: list = []
    for expr in stmt.group_by:
        expr = _substitute_aliases(expr, alias_map)
        if not isinstance(expr, ast.ColumnRef):
            return None
        if expr.table is not None and expr.table != driver.binding:
            return None
        if not driver.table.schema.has_column(expr.name):
            return None
        spec.append((expr.name, True))
    return spec


def _compile_order_specs(order_by, alias_map: dict, resolver: Resolver):
    """ORDER BY items as ``("position", index, asc)`` or ``("expr", fn, asc)``."""
    specs = []
    for order in order_by:
        expr = order.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            specs.append(("position", expr.value - 1, order.ascending))
            continue
        if (
            isinstance(expr, ast.ColumnRef) and expr.table is None
            and expr.name in alias_map
        ):
            expr = alias_map[expr.name]
        specs.append(("expr", compile_expr(expr, resolver), order.ascending))
    return specs


# -- scan / join / group cardinality estimates ------------------------------


def _estimate_scan(stats, plan: ScanPlan, conjuncts, binding):
    """``(access_path_rows, output_rows)`` estimates for a chosen scan.

    The access path satisfies every conjunct the planner consumed; the
    residual filter then reduces the path output to the final estimate.
    """
    residual_ids = {id(c) for c in split_conjuncts(plan.residual)}
    path = rows = float(stats.n_rows)
    for conjunct in conjuncts:
        selectivity = conjunct_selectivity(stats, conjunct, binding)
        rows *= selectivity
        if id(conjunct) not in residual_ids:
            path *= selectivity
    return path, rows


def _estimate_groups(stmt: ast.SelectStmt, alias_map: dict, slots,
                     input_est: float) -> float:
    """Estimated group count: product of grouping-column distincts."""
    if not stmt.group_by:
        return 1.0
    unique_slots = list({slot.binding: slot for slot in slots}.values())
    groups = 1.0
    for expr in stmt.group_by:
        expr = _substitute_aliases(expr, alias_map)
        distinct = 10.0
        if isinstance(expr, ast.ColumnRef):
            owners = [
                slot for slot in unique_slots
                if slot.table.schema.has_column(expr.name)
                and (expr.table is None or expr.table == slot.binding)
            ]
            if len(owners) == 1:
                distinct = owners[0].stats.distinct(expr.name)
        groups *= distinct
    return max(1.0, min(groups, max(input_est, 1.0)))


# -- aggregate preparation (rewriting over intermediate rows) ----------------


class _AggregateRewriter:
    """Rewrites expressions over base rows into expressions over
    intermediate rows laid out as ``[group_key_0.., agg_0..]``."""

    def __init__(self, group_exprs: tuple):
        self.group_exprs = list(group_exprs)
        self.agg_nodes: list[ast.FuncCall] = []
        self._agg_slots: dict[ast.FuncCall, int] = {}

    def rewrite(self, expr: ast.Expr) -> ast.Expr:
        for i, group_expr in enumerate(self.group_exprs):
            if _expr_matches(expr, group_expr):
                return ast.SlotRef(i)
        if isinstance(expr, ast.FuncCall):
            if is_aggregate(expr.name):
                slot = self._agg_slots.get(expr)
                if slot is None:
                    slot = len(self.agg_nodes)
                    self._agg_slots[expr] = slot
                    self.agg_nodes.append(expr)
                return ast.SlotRef(len(self.group_exprs) + slot)
            return ast.FuncCall(
                expr.name, tuple(self.rewrite(a) for a in expr.args),
                expr.distinct, expr.is_star,
            )
        if isinstance(expr, ast.ColumnRef):
            raise PlanningError(
                f"column {expr.name!r} must appear in GROUP BY or inside an aggregate"
            )
        if isinstance(expr, ast.Unary):
            return ast.Unary(expr.op, self.rewrite(expr.operand))
        if isinstance(expr, ast.Binary):
            return ast.Binary(expr.op, self.rewrite(expr.left), self.rewrite(expr.right))
        if isinstance(expr, ast.Between):
            return ast.Between(
                self.rewrite(expr.expr), self.rewrite(expr.low),
                self.rewrite(expr.high), expr.negated,
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                self.rewrite(expr.expr), tuple(self.rewrite(i) for i in expr.items),
                expr.negated,
            )
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(self.rewrite(expr.expr), expr.negated)
        if isinstance(expr, ast.Like):
            return ast.Like(self.rewrite(expr.expr), self.rewrite(expr.pattern), expr.negated)
        if isinstance(expr, ast.Cast):
            return ast.Cast(self.rewrite(expr.expr), expr.type_name)
        if isinstance(expr, ast.Case):
            return ast.Case(
                self.rewrite(expr.operand) if expr.operand is not None else None,
                tuple((self.rewrite(w), self.rewrite(t)) for w, t in expr.whens),
                self.rewrite(expr.else_result) if expr.else_result is not None else None,
            )
        return expr  # Literal, Param, SlotRef


def _substitute_aliases(expr: ast.Expr, alias_map: dict) -> ast.Expr:
    """Recursively replace select-list alias references with their expressions."""
    if isinstance(expr, ast.ColumnRef):
        if expr.table is None and expr.name in alias_map:
            return alias_map[expr.name]
        return expr
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, _substitute_aliases(expr.operand, alias_map))
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            expr.op,
            _substitute_aliases(expr.left, alias_map),
            _substitute_aliases(expr.right, alias_map),
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            _substitute_aliases(expr.expr, alias_map),
            _substitute_aliases(expr.low, alias_map),
            _substitute_aliases(expr.high, alias_map),
            expr.negated,
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            _substitute_aliases(expr.expr, alias_map),
            tuple(_substitute_aliases(i, alias_map) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_substitute_aliases(expr.expr, alias_map), expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(
            _substitute_aliases(expr.expr, alias_map),
            _substitute_aliases(expr.pattern, alias_map),
            expr.negated,
        )
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            tuple(_substitute_aliases(a, alias_map) for a in expr.args),
            expr.distinct, expr.is_star,
        )
    if isinstance(expr, ast.Cast):
        return ast.Cast(_substitute_aliases(expr.expr, alias_map), expr.type_name)
    if isinstance(expr, ast.Case):
        return ast.Case(
            _substitute_aliases(expr.operand, alias_map) if expr.operand is not None else None,
            tuple(
                (_substitute_aliases(w, alias_map), _substitute_aliases(t, alias_map))
                for w, t in expr.whens
            ),
            _substitute_aliases(expr.else_result, alias_map)
            if expr.else_result is not None else None,
        )
    return expr


def _expr_matches(expr: ast.Expr, group_expr: ast.Expr) -> bool:
    if expr == group_expr:
        return True
    if isinstance(expr, ast.ColumnRef) and isinstance(group_expr, ast.ColumnRef):
        return expr.name == group_expr.name and (
            expr.table is None or group_expr.table is None or expr.table == group_expr.table
        )
    return False


def _prepare_aggregate(stmt: ast.SelectStmt, items, resolver: Resolver):
    """Build the :class:`~repro.minidb.plan_nodes.AggregateSpec` and decide
    whether group-ordered input makes the final sort redundant.

    Returns ``(spec, elide_sort)``: ``elide_sort`` is True when every
    ORDER BY key rewrites to the matching leading group slot ascending, in
    which case a StreamAggregate's output already arrives in order.
    """
    alias_map = {item.alias: item.expr for item in items if item.alias is not None}

    def substitute(expr: ast.Expr) -> ast.Expr:
        return _substitute_aliases(expr, alias_map)

    group_exprs = tuple(substitute(expr) for expr in stmt.group_by)
    rewriter = _AggregateRewriter(group_exprs)
    rewritten_items = [
        ast.SelectItem(rewriter.rewrite(item.expr), item.alias) for item in items
    ]
    rewritten_having = (
        rewriter.rewrite(substitute(stmt.having))
        if stmt.having is not None else None
    )
    rewritten_order = [
        ast.OrderItem(rewriter.rewrite(substitute(order.expr)), order.ascending)
        for order in stmt.order_by
    ]

    group_fns = [compile_expr(expr, resolver) for expr in group_exprs]
    agg_specs = []
    for node in rewriter.agg_nodes:
        if node.is_star:
            agg_specs.append((node, None))
        else:
            if len(node.args) != 1:
                raise PlanningError(f"{node.name}() takes exactly one argument")
            agg_specs.append((node, compile_expr(node.args[0], resolver)))

    slot_resolver = Resolver({})
    having_fn = (
        compile_expr(rewritten_having, slot_resolver)
        if rewritten_having is not None else None
    )
    item_fns = [compile_expr(item.expr, slot_resolver) for item in rewritten_items]

    order_specs = []
    elide_sort = bool(stmt.order_by)
    for j, (original, order) in enumerate(zip(stmt.order_by, rewritten_order)):
        # positional ORDER BY (e.g. ORDER BY 2) refers to the projected
        # output row, everything else to the intermediate group row
        if isinstance(original.expr, ast.Literal) and isinstance(
            original.expr.value, int
        ):
            order_specs.append(("position", original.expr.value - 1, order.ascending))
            elide_sort = False
        else:
            order_specs.append(
                ("expr", compile_expr(order.expr, slot_resolver), order.ascending)
            )
            if order.expr != ast.SlotRef(j) or not order.ascending:
                elide_sort = False

    spec = nodes.AggregateSpec(
        group_exprs, group_fns, agg_specs, having_fn, item_fns, order_specs
    )
    return spec, elide_sort


# -- merge-join eligibility --------------------------------------------------


def _provided_order(plan: ScanPlan, table: Table) -> list:
    """The ``(column, ascending)`` order a chosen scan streams rows in."""
    if plan.kind == INDEX_ORDER:
        return [(c, not plan.descending) for c in plan.columns]
    if plan.kind == INDEX_PREFIX and plan.columns:
        index = table.indexes.get(plan.index_name)
        if index is None or index.kind != "btree":
            return []  # hash full-equality lookups carry no order
        k = len(plan.prefix_exprs)
        return [(c, not plan.descending) for c in plan.columns[k:]]
    if plan.kind == INDEX_RANGE:
        return [(plan.column, not plan.descending)]
    return []


def _covering_single_btree(table: Table, column: str):
    """A B+tree over exactly ``column`` that indexes every row, or None."""
    for index in table.btree_indexes():
        if index.columns == (column,) and index.covers(table.n_rows):
            return index
    return None


def _merge_eligible(step: _JoinStepSpec, driver, driver_plan: ScanPlan,
                    right_plan: ScanPlan):
    """``(left_col, right_col, right_index)`` when this step can merge:
    single equi pair on a driver column the stream arrives ordered on, and
    a covering single-column B+tree on the build column (whose best scan
    found no better access path than a full walk)."""
    if len(step.pairs) != 1:
        return None
    left_binding, left_col, right_col = step.pairs[0]
    if left_binding != driver.binding or left_col == "rowid" or right_col == "rowid":
        return None
    provided = _provided_order(driver_plan, driver.table)
    if not provided or provided[0] != (left_col, True):
        return None
    if right_plan.kind != SEQ:
        return None
    index = _covering_single_btree(step.slot.table, right_col)
    if index is None:
        return None
    return left_col, right_col, index


def _maybe_steer_merge(driver, driver_plan: ScanPlan, pushed_where,
                       driver_conjuncts, first_step: _JoinStepSpec,
                       stream_group: bool) -> ScanPlan:
    """Re-plan the driver scan in join-key order when that unlocks a merge
    join worth having (cost gate: the hash build it avoids is large)."""
    if stream_group or driver_plan.kind != SEQ or driver_plan.order_satisfied:
        return driver_plan
    if len(first_step.pairs) != 1:
        return driver_plan
    left_binding, left_col, right_col = first_step.pairs[0]
    if left_binding != driver.binding or left_col == "rowid" or right_col == "rowid":
        return driver_plan
    slot = first_step.slot
    if _covering_single_btree(slot.table, right_col) is None:
        return driver_plan
    right_plan = _plan_step_right(first_step)
    if right_plan.kind != SEQ:
        return driver_plan
    steered = plan_scan(driver.table, pushed_where, binding=driver.binding,
                        order_spec=[(left_col, True)])
    provided = _provided_order(steered, driver.table)
    if not provided or provided[0] != (left_col, True):
        return driver_plan
    _path, right_out = first_step.right_ests
    _path2, left_out = _estimate_scan(driver.stats, driver_plan,
                                      driver_conjuncts, driver.binding)
    if right_out < MERGE_MIN_BUILD_ROWS or right_out < MERGE_STEER_RATIO * max(left_out, 1.0):
        return driver_plan
    return steered


# -- join-step node construction ---------------------------------------------


def _local_pos(table: Table, column: str) -> int:
    """Position of ``column`` in a local ``[rowid, *values]`` row."""
    if column == "rowid" and not table.schema.has_column("rowid"):
        return 0
    return 1 + table.schema.position(column)


def _table_access_nodes(slot: _TableSlot, plan: ScanPlan, path_est: float,
                        out_est: float):
    """Scan (+ local Filter) subtree producing a table's local rows."""
    node = nodes.Scan(slot.table, plan, path_est)
    if plan.residual is not None:
        local = Resolver({slot.binding: _layout(slot.table, 0)})
        node = nodes.Filter(node, plan.residual,
                            compile_expr(plan.residual, local), out_est)
    return node


def _plan_step_right(step: _JoinStepSpec) -> ScanPlan:
    """The build side's access path, planned exactly once per step."""
    if step.right_plan is None:
        slot = step.slot
        step.right_plan = plan_scan(slot.table, conjoin(slot.pushed),
                                    binding=slot.binding)
        step.right_ests = _estimate_scan(slot.stats, step.right_plan,
                                         slot.pushed, slot.binding)
    return step.right_plan


def _reorder_join_node(left_node, left_est: float, step: _JoinStepSpec,
                       bindings: dict, resolver: Resolver, by_binding: dict,
                       driver, driver_plan: ScanPlan):
    """Physical node for one reordered (all-INNER) join step."""
    slot = step.slot
    right_plan = _plan_step_right(step)
    path_est, out_est = step.right_ests
    residual_expr = conjoin(step.residuals)
    residual_fn = (
        compile_expr(residual_expr, resolver) if residual_expr is not None else None
    )
    dpairs = [
        (by_binding[lb].stats.distinct(lc), slot.stats.distinct(rc))
        for lb, lc, rc in step.pairs
    ]
    est = estimate_join_rows(left_est, out_est, dpairs)
    for conjunct in step.residuals:
        est *= conjunct_selectivity(slot.stats, conjunct, slot.binding)

    merge = (
        _merge_eligible(step, driver, driver_plan, right_plan)
        if left_node is not None else None
    )
    if merge is not None:
        left_col, right_col, index = merge
        order_plan = ScanPlan(
            table=slot.table.name, kind=INDEX_ORDER, index_name=index.name,
            column=index.columns[0], columns=index.columns,
            residual=right_plan.residual, order_satisfied=True,
        )
        right_node = nodes.Scan(slot.table, order_plan, float(slot.stats.n_rows))
        right_filter_fn = None
        if right_plan.residual is not None:
            local = Resolver({slot.binding: _layout(slot.table, 0)})
            right_filter_fn = compile_expr(right_plan.residual, local)
            right_node = nodes.Filter(right_node, right_plan.residual,
                                      right_filter_fn, out_est)
        join = nodes.MergeJoin(
            left_node, right_node, slot.binding, slot.table, index,
            bindings[step.pairs[0][0]][left_col], right_col,
            slot.offset, slot.width,
            right_filter_fn=right_filter_fn,
            residual_fn=residual_fn, has_residual=residual_expr is not None,
            estimated_rows=est,
        )
        return join, est

    right_node = _table_access_nodes(slot, right_plan, path_est, out_est)
    if step.pairs:
        join = nodes.HashJoin(
            left_node, right_node, slot.binding, "INNER",
            [bindings[lb][lc] for lb, lc, _rc in step.pairs],
            [_local_pos(slot.table, rc) for _lb, _lc, rc in step.pairs],
            slot.offset, slot.width,
            residual_fn=residual_fn, has_residual=residual_expr is not None,
            estimated_rows=est,
        )
        return join, est
    join = nodes.NestedLoopJoin(
        left_node, right_node, slot.binding, "INNER", residual_expr,
        residual_fn, slot.width, estimated_rows=est,
    )
    return join, est


def _col_at(exec_slots, position: int):
    """``(slot, column_name)`` owning an absolute row position."""
    for slot in exec_slots:
        if slot.offset <= position < slot.offset + slot.width:
            local = position - slot.offset
            if local == 0:
                return slot, "rowid"
            return slot, slot.table.schema.column_names[local - 1]
    raise PlanningError(f"row position {position} out of range")


def _fallback_join_node(left_node, left_est: float, slot: _TableSlot,
                        resolver: Resolver, exec_slots):
    """Physical node for one syntactic-order join step (LEFT joins, or
    queries the reorderer declined)."""
    join = slot.join
    right_plan = ScanPlan(table=slot.table.name, kind=SEQ)
    right_node = nodes.Scan(slot.table, right_plan, float(slot.table.n_rows))
    pairs, right_only, residual = split_join_condition(
        join.on, resolver, slot.offset, slot.width
    )
    if not pairs:
        est = left_est * max(float(slot.table.n_rows), 1.0) * 0.5
        if join.kind == "LEFT":
            est = max(est, left_est)
        node = nodes.NestedLoopJoin(
            left_node, right_node, join.table.binding, join.kind, join.on,
            compile_expr(join.on, resolver), slot.width, estimated_rows=est,
        )
        return node, est
    if join.kind == "LEFT":
        # prefiltering the build side of a LEFT join would turn matched
        # rows into NULL-padded ones; keep right-only conjuncts residual
        build_filter = None
        residual_expr = conjoin(right_only + residual)
    else:
        build_filter = conjoin(right_only)
        residual_expr = conjoin(residual)
    dpairs = []
    for left_pos, right_pos in pairs:
        left_slot, left_col = _col_at(exec_slots, left_pos)
        _right_slot, right_col = _col_at(exec_slots, right_pos)
        dpairs.append((
            left_slot.stats.distinct(left_col), slot.stats.distinct(right_col)
        ))
    est = estimate_join_rows(left_est, float(slot.table.n_rows), dpairs)
    if join.kind == "LEFT":
        est = max(est, left_est)
    node = nodes.HashJoin(
        left_node, right_node, join.table.binding, join.kind,
        [lp for lp, _ in pairs], [rp - slot.offset for _, rp in pairs],
        slot.offset, slot.width,
        build_filter_fn=(
            compile_expr(build_filter, resolver)
            if build_filter is not None else None
        ),
        residual_fn=(
            compile_expr(residual_expr, resolver)
            if residual_expr is not None else None
        ),
        has_build_filter=build_filter is not None,
        has_residual=residual_expr is not None,
        estimated_rows=est,
    )
    return node, est


# -- the two-stage entry point ----------------------------------------------


def plan_select(db, stmt: ast.SelectStmt) -> SelectPlan:
    """Compile a SELECT into a physical plan tree.

    Stage 1 (logical): bind tables, classify conjuncts, pick a join order
    from cardinality estimates.  Stage 2 (physical): choose access paths
    and operator implementations, annotating every node with estimated
    rows.
    """
    base_table = db.table(stmt.table.name)
    slots = [_TableSlot(stmt.table.binding, base_table, None)]
    for join in stmt.joins:
        slots.append(
            _TableSlot(join.table.binding, db.table(join.table.name), join)
        )
    stats = getattr(db, "stats", None)
    if stats is None:
        stats = StatsManager()
    for slot in slots:
        slot.stats = stats.for_table(slot.table)
    by_binding = {slot.binding: slot for slot in slots}

    exec_slots = None
    pool = None
    reorderable = (
        len(slots) > 1
        and len(by_binding) == len(slots)
        and all(slot.join is None or slot.join.kind == "INNER" for slot in slots)
        and getattr(db, "reorder_joins", True)
    )
    if reorderable:
        pool = _classify_conjuncts(stmt, slots, by_binding)
        if pool.edges:
            exec_slots = _greedy_join_order(slots, by_binding, pool)
    fallback = exec_slots is None
    if fallback:
        exec_slots = slots
        for slot in slots:
            slot.pushed = []  # reorder-mode pushdowns do not apply

    offset = 0
    for slot in exec_slots:
        slot.offset = offset
        offset += slot.width

    # bindings in syntactic order (star expansion, name resolution) with
    # offsets reflecting execution order
    bindings = {slot.binding: _layout(slot.table, slot.offset) for slot in slots}
    resolver = Resolver(bindings)
    items = _expand_stars(stmt.items, bindings)
    alias_map = {item.alias: item.expr for item in items if item.alias is not None}
    has_aggregates = bool(stmt.group_by) or any(
        item.expr is not None and find_aggregates(item.expr) for item in items
    ) or (stmt.having is not None and find_aggregates(stmt.having))

    driver = exec_slots[0]
    order_info = None if has_aggregates else _order_spec_info(stmt, alias_map, slots)
    driver_order_spec = (
        order_info[1]
        if order_info is not None and order_info[0] == driver.binding
        else None
    )
    group_spec = (
        _group_order_spec(stmt, alias_map, driver) if has_aggregates else None
    )

    # -- driver access path --------------------------------------------------
    post_where = None
    if fallback:
        if len(slots) > 1:
            pushed_where, post_where = partition_conjuncts(
                stmt.where, resolver, driver.width
            )
        else:
            pushed_where = stmt.where
        driver_conjuncts = split_conjuncts(pushed_where)
    else:
        driver_conjuncts = driver.pushed
        pushed_where = conjoin(driver_conjuncts)

    stream_group = False
    if group_spec is not None:
        plain = plan_scan(driver.table, pushed_where, binding=driver.binding)
        ordered = plan_scan(driver.table, pushed_where, binding=driver.binding,
                            order_spec=group_spec)
        plain_path, _out = _estimate_scan(driver.stats, plain,
                                          driver_conjuncts, driver.binding)
        ordered_path, _out2 = _estimate_scan(driver.stats, ordered,
                                             driver_conjuncts, driver.binding)
        # stream only when ordering the input costs nothing in access-path
        # quality (no index filtering given up for the walk)
        if ordered.order_satisfied and ordered_path <= plain_path:
            driver_plan = ordered
            stream_group = True
        else:
            driver_plan = plain
    else:
        driver_plan = plan_scan(driver.table, pushed_where, binding=driver.binding,
                                order_spec=driver_order_spec)
    driver_plan = _maybe_demote_index(
        driver.table, driver.stats, driver_plan, pushed_where,
        driver_conjuncts, driver.binding, stream_group,
    )

    # whether the chosen scan serves the user's ORDER BY must be decided
    # *before* merge steering: a steered plan is ordered on the join key,
    # which says nothing about the query's ORDER BY columns
    order_served = (
        not has_aggregates
        and driver_order_spec is not None
        and driver_plan.order_satisfied
    )

    steps = _reordered_steps(exec_slots, pool) if not fallback else []
    if steps and not order_served:
        driver_plan = _maybe_steer_merge(
            driver, driver_plan, pushed_where, driver_conjuncts, steps[0],
            stream_group,
        )

    path_est, out_est = _estimate_scan(driver.stats, driver_plan,
                                       driver_conjuncts, driver.binding)
    node = nodes.Scan(driver.table, driver_plan, path_est)
    if driver_plan.residual is not None:
        # the driver occupies offset 0, so the global resolver compiles its
        # residual for both the single-table and the joined layouts
        node = nodes.Filter(node, driver_plan.residual,
                            compile_expr(driver_plan.residual, resolver), out_est)
    current_est = out_est

    # -- join steps ----------------------------------------------------------
    if fallback:
        for slot in exec_slots[1:]:
            node, current_est = _fallback_join_node(
                node, current_est, slot, resolver, exec_slots
            )
        if post_where is not None:
            post_est = current_est * 0.5
            node = nodes.Filter(node, post_where,
                                compile_expr(post_where, resolver), post_est)
            current_est = post_est
    else:
        for step in steps:
            node, current_est = _reorder_join_node(
                node, current_est, step, bindings, resolver, by_binding,
                driver, driver_plan,
            )
        if pool.post:
            post_expr = conjoin(pool.post)
            post_est = current_est * 0.5
            node = nodes.Filter(node, post_expr,
                                compile_expr(post_expr, resolver), post_est)
            current_est = post_est

    names, root = _finish_select(
        stmt, items, alias_map, resolver, node, current_est, has_aggregates,
        stream_group, order_served, slots,
    )
    root = _vectorize(root, resolver, getattr(db, "vectorize", "auto"))
    root = _parallelize(root, resolver, getattr(db, "parallel", 0))
    tables = tuple(dict.fromkeys(slot.table.name for slot in slots))
    return SelectPlan(stmt, root, names, resolver, items, tables)


def _maybe_demote_index(table: Table, table_stats, plan: ScanPlan,
                        pushed_where, conjuncts, binding,
                        stream_group: bool) -> ScanPlan:
    """Demote a broad index walk or probe back to a sequential scan.

    With per-column histograms pricing range predicates honestly
    (:mod:`repro.minidb.stats`), a broad range — ``val > constant``
    matching most of the table — is cheaper as SeqScan + Filter than as a
    leaf-chasing B+tree walk with a heap lookup per hit.  The same goes
    for equality on a skewed key: MCV lists price ``col = heavy_hitter``
    at the hitter's true row fraction, so an index probe returning most
    of the table demotes too (rare values keep the probe — the flip the
    MCV satellite test pins down).  Selective paths keep the index, and
    plans whose walk order serves the query's ORDER BY (or a streaming
    GROUP BY) are never demoted: they elide a sort, which the row-cost
    comparison does not see.
    """
    if (plan.kind not in (INDEX_RANGE, INDEX_EQ) or plan.order_satisfied
            or stream_group):
        return plan
    if table_stats.n_rows < DEMOTE_MIN_ROWS:
        return plan
    path_est, _out = _estimate_scan(table_stats, plan, conjuncts, binding)
    if path_est * INDEX_RANGE_ROW_COST <= float(table_stats.n_rows) * SEQ_ROW_COST:
        return plan
    return ScanPlan(table.name, residual=pushed_where)


# -- vectorization post-pass -------------------------------------------------


def _vectorize(root, resolver: Resolver, vectorize_mode: str):
    """Convert eligible subtrees of a finished plan to batch operators.

    ``"off"`` leaves the row pipeline untouched; ``"on"`` forces batch
    mode wherever it is semantically available (the parity suite runs
    here); ``"auto"`` — the default — vectorizes analytic shapes only:
    aggregate queries, or scan pipelines without a LIMIT/TopK
    short-circuit, over scans expected to produce at least
    :data:`VECTOR_MIN_ROWS` rows.  Only sequential scans batch in this
    first cut — point lookups, index-order walks and MVCC snapshot reads
    keep the row pipeline (a snapshot read through a cached batch plan
    falls back at runtime inside BatchScan).
    """
    if vectorize_mode == "off":
        return root
    force = vectorize_mode == "on"
    if not force and not _analytic_shape(root):
        return root
    node, is_batch = _vectorize_node(root, resolver, force)
    if is_batch:  # defensive: _finish_select always roots a row consumer
        node = nodes.BatchToRows(node, node.estimated_rows)
    return node


def _analytic_shape(root) -> bool:
    """Aggregates always pay off in batch mode; LIMIT/TopK shapes without
    an aggregate favor the row pipeline's short-circuit laziness."""
    has_aggregate = False
    has_limit = False
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, (nodes.HashAggregate, nodes.StreamAggregate)):
            has_aggregate = True
        elif isinstance(node, (nodes.Limit, nodes.TopK)):
            has_limit = True
        stack.extend(node.children())
    return has_aggregate or not has_limit


def _row_child(child, resolver: Resolver, force: bool):
    """Vectorize a subtree whose consumer needs rows, capping batch output."""
    node, is_batch = _vectorize_node(child, resolver, force)
    if is_batch:
        return nodes.BatchToRows(node, node.estimated_rows)
    return node


def _vectorize_node(node, resolver: Resolver, force: bool):
    """Rewrite one node, returning ``(node, outputs_batches)``.

    The tree is freshly built and not yet cached, so row-mode nodes that
    survive are patched in place; converted nodes are rebuilt as their
    batch variants.
    """
    if isinstance(node, nodes.Scan):
        if node.plan.kind == SEQ and (
            force or (node.estimated_rows or 0.0) >= VECTOR_MIN_ROWS
        ):
            return nodes.BatchScan(node.table, node.plan,
                                   node.estimated_rows), True
        return node, False
    if isinstance(node, nodes.Filter):
        child, is_batch = _vectorize_node(node.child, resolver, force)
        if is_batch:
            return nodes.BatchFilter(
                child, node.expr,
                compile_filter_kernels(node.expr, resolver),
                node.estimated_rows,
            ), True
        node.child = child
        return node, False
    if isinstance(node, nodes.HashJoin):
        left, left_batch = _vectorize_node(node.left, resolver, force)
        # the build side stays row-mode: it is materialized into hash
        # buckets regardless, so batching it would buy nothing
        if (left_batch and node.kind == "INNER"
                and not node.has_build_filter and not node.has_residual):
            return nodes.BatchHashJoin(
                left, node.right, node.binding, node.left_positions,
                node.right_positions, node.estimated_rows,
            ), True
        if left_batch:
            left = nodes.BatchToRows(left, left.estimated_rows)
        node.left = left
        return node, False
    if isinstance(node, nodes.HashAggregate):
        child, is_batch = _vectorize_node(node.child, resolver, force)
        if is_batch:
            descs = _vector_agg_descs(node.spec, resolver)
            if descs is not None:
                return nodes.BatchAggregate(
                    child, node.spec, descs[0], descs[1], node.estimated_rows,
                ), False
            child = nodes.BatchToRows(child, child.estimated_rows)
        node.child = child
        return node, False
    if isinstance(node, (nodes.MergeJoin, nodes.NestedLoopJoin)):
        node.left = _row_child(node.left, resolver, force)
        node.right = _row_child(node.right, resolver, force)
        return node, False
    if isinstance(node, (nodes.StreamAggregate, nodes.Project, nodes.Sort,
                         nodes.TopK, nodes.Distinct, nodes.Limit)):
        node.child = _row_child(node.child, resolver, force)
        return node, False
    return node, False  # anything else: leave untouched


def _vector_agg_descs(spec, resolver: Resolver):
    """``(group_positions, agg_descs)`` for a vectorizable aggregate, or None.

    Vectorizable: every group expression is a plain column reference and
    every aggregate is non-DISTINCT SUM/COUNT/MIN/MAX/AVG over a plain
    column (or COUNT(*)).  Anything richer keeps the row accumulators
    behind a BatchToRows adapter.
    """
    group_positions = []
    for expr in spec.group_exprs:
        position = _vector_position(expr, resolver)
        if position is None:
            return None
        group_positions.append(position)
    agg_descs = []
    for fnode, _arg_fn in spec.agg_specs:
        if fnode.distinct or fnode.name not in BATCH_AGGREGATES:
            return None
        if fnode.is_star:
            agg_descs.append((fnode.name, None))
            continue
        position = _vector_position(fnode.args[0], resolver)
        if position is None:
            return None
        agg_descs.append((fnode.name, position))
    return group_positions, agg_descs


def _vector_position(expr: ast.Expr, resolver: Resolver) -> int | None:
    if isinstance(expr, ast.ColumnRef):
        return resolver.resolve(expr)
    if isinstance(expr, ast.SlotRef):
        return expr.index
    return None


# -- parallel partition post-pass ----------------------------------------------


def _parallelize(root, resolver: Resolver, workers: int):
    """Fan eligible subtrees of a finished plan across partition workers.

    Runs after ``_vectorize`` (``pragma("parallel", n)`` rides the plan
    cache key like the other knobs), rewriting three shapes whose driver
    is a sequential scan of a *partitioned* table expected to produce at
    least :data:`PARALLEL_MIN_ROWS` rows:

    * aggregates (hash or batch) become ``FinalAggregate -> Gather ->
      PartialAggregate -> [Filter] -> ParallelScan`` — each worker folds
      its partition into mergeable states;
    * ``Sort[rows] -> Project`` becomes a sorted-merge Gather — each
      worker projects and sorts its partition, the parent k-way merges;
    * a plain projected scan/filter gathers filtered rows partition-major.

    Stream aggregates are left alone: their group order comes from an
    index walk, which a hash-merge recombination would not preserve.
    Execution and recombination live in :mod:`repro.minidb.parallel`.
    """
    if workers < 1:
        return root
    return _parallelize_node(root, resolver, workers)


def _parallelize_node(node, resolver: Resolver, workers: int):
    if isinstance(node, (nodes.HashAggregate, nodes.BatchAggregate)):
        rewritten = _parallel_aggregate(node, resolver, workers)
        return rewritten if rewritten is not None else node
    if isinstance(node, nodes.Sort) and node.mode == "rows":
        rewritten = _parallel_sort(node, resolver, workers)
        if rewritten is not None:
            return rewritten
    if isinstance(node, nodes.Project):
        source = _parallel_source(node.child, resolver, workers)
        if source is not None:
            node.child = source
        return node
    for attr in ("child", "left", "right"):
        child = getattr(node, attr, None)
        if child is not None:
            setattr(node, attr, _parallelize_node(child, resolver, workers))
    return node


def _parallel_split(node, resolver: Resolver):
    """``(scan, filter_expr, kernels, filter_est)`` for an eligible source.

    Eligible: an optional filter over a sequential scan (row or batch
    flavor, an interposed BatchToRows is unwrapped) of a partitioned
    table whose estimate clears :data:`PARALLEL_MIN_ROWS`.  Row-mode
    filters get their vector kernels compiled here — workers always run
    the batch kernels, whose bit-for-bit row parity the vectorized
    pipeline already guarantees.  Returns None when ineligible.
    """
    inner = node
    if isinstance(inner, nodes.BatchToRows):
        inner = inner.child
    filter_expr = kernels = filter_est = None
    if isinstance(inner, nodes.BatchFilter):
        filter_expr = inner.expr
        kernels = inner.kernels
        filter_est = inner.estimated_rows
        inner = inner.child
    elif isinstance(inner, nodes.Filter):
        filter_expr = inner.expr
        filter_est = inner.estimated_rows
        inner = inner.child
    if not isinstance(inner, (nodes.Scan, nodes.BatchScan)):
        return None
    if inner.plan.kind != SEQ:
        return None
    spec = inner.table.schema.partition
    if spec is None or spec.n_partitions < 2:
        return None
    estimate = inner.estimated_rows
    if estimate is None or estimate < PARALLEL_MIN_ROWS:
        return None
    if filter_expr is not None and kernels is None:
        kernels = compile_filter_kernels(filter_expr, resolver)
    return inner, filter_expr, kernels, filter_est


def _parallel_scan_subtree(scan, filter_expr, kernels, filter_est):
    source = nodes.ParallelScan(scan.table, scan.plan, scan.estimated_rows)
    if filter_expr is not None:
        source = nodes.BatchFilter(source, filter_expr, kernels, filter_est)
    return source


def _parallel_aggregate(node, resolver: Resolver, workers: int):
    split = _parallel_split(node.child, resolver)
    if split is None:
        return None
    if isinstance(node, nodes.BatchAggregate):
        group_positions, agg_descs = node.group_positions, node.agg_descs
    else:
        descs = _vector_agg_descs(node.spec, resolver)
        if descs is None:
            return None
        group_positions, agg_descs = descs
    scan, filter_expr, kernels, filter_est = split
    source = _parallel_scan_subtree(scan, filter_expr, kernels, filter_est)
    partial = nodes.PartialAggregate(source, group_positions, agg_descs,
                                     node.estimated_rows)
    gather = nodes.Gather(
        partial, workers, "partial",
        estimated_rows=float(scan.table.schema.partition.n_partitions),
    )
    return nodes.FinalAggregate(gather, node.spec, group_positions,
                                agg_descs, node.estimated_rows)


def _parallel_sort(node, resolver: Resolver, workers: int):
    project = node.child
    if not isinstance(project, nodes.Project):
        return None
    split = _parallel_split(project.child, resolver)
    if split is None:
        return None
    scan, filter_expr, kernels, filter_est = split
    source = _parallel_scan_subtree(scan, filter_expr, kernels, filter_est)
    return nodes.Gather(source, workers, "sorted",
                        project_fns=project.item_fns,
                        sort_specs=node.specs,
                        estimated_rows=node.estimated_rows)


def _parallel_source(child, resolver: Resolver, workers: int):
    split = _parallel_split(child, resolver)
    if split is None:
        return None
    scan, filter_expr, kernels, filter_est = split
    source = _parallel_scan_subtree(scan, filter_expr, kernels, filter_est)
    out_est = filter_est if filter_expr is not None else scan.estimated_rows
    return nodes.Gather(source, workers, "rows", estimated_rows=out_est)


def _finish_select(stmt: ast.SelectStmt, items, alias_map: dict,
                   resolver: Resolver, node, input_est: float,
                   has_aggregates: bool, stream_group: bool,
                   order_served: bool, slots):
    """Build the top of the tree: aggregate/project, order, distinct, limit."""
    names = [output_name(item) for item in items]
    limit_value = _limit_literal(stmt.limit) if stmt.limit is not None else None
    offset_value = _limit_literal(stmt.offset) if stmt.offset is not None else 0

    if has_aggregates:
        spec, elide_sort = _prepare_aggregate(stmt, items, resolver)
        group_est = _estimate_groups(stmt, alias_map, slots, input_est)
        if spec.having_fn is not None:
            group_est = max(1.0, group_est * 0.5)
        agg_cls = nodes.StreamAggregate if stream_group else nodes.HashAggregate
        out = agg_cls(node, spec, group_est)
        if stmt.order_by and not (stream_group and elide_sort):
            out = nodes.Sort(out, spec.order_specs, len(stmt.order_by),
                             "groups", group_est)
        if stmt.distinct:
            out = nodes.Distinct(out, group_est)
        if stmt.limit is not None:
            est = group_est if limit_value is None else min(group_est, limit_value)
            out = nodes.Limit(out, stmt.limit, stmt.offset, est)
        return names, out

    item_fns = [compile_expr(item.expr, resolver) for item in items]
    project = nodes.Project(node, item_fns, names, input_est)
    if not stmt.order_by or order_served:
        out = project
        if stmt.distinct:
            out = nodes.Distinct(out, input_est)
        if stmt.limit is not None:
            est = input_est if limit_value is None else min(input_est, limit_value)
            out = nodes.Limit(out, stmt.limit, stmt.offset, est)
        return names, out

    specs = _compile_order_specs(stmt.order_by, alias_map, resolver)
    if stmt.limit is not None and not stmt.distinct:
        kept = (
            input_est if limit_value is None
            else min(input_est, limit_value + (offset_value or 0))
        )
        top = nodes.TopK(project, specs, len(stmt.order_by), stmt.limit,
                         stmt.offset, kept)
        est = input_est if limit_value is None else min(input_est, limit_value)
        return names, nodes.Limit(top, stmt.limit, stmt.offset, est)
    out = nodes.Sort(project, specs, len(stmt.order_by), "rows", input_est)
    if stmt.distinct:
        out = nodes.Distinct(out, input_est)
    if stmt.limit is not None:
        est = input_est if limit_value is None else min(input_est, limit_value)
        out = nodes.Limit(out, stmt.limit, stmt.offset, est)
    return names, out
