"""The PEP 249-flavored execution surface: prepared statements and cursors.

``Database.prepare(sql)`` returns a :class:`PreparedStatement` — the
parsed AST plus a slot for the compiled physical plan.  Parameter slots
(``?``) live inside the plan as compiled ``fn(row, params)`` closures, so
the same tree re-executes under any binding; the statement revalidates
its plan against the database's ``(schema_epoch, stats_version)`` pair on
every execution and transparently re-plans after DDL, ``analyze()``, or a
mutation-driven statistics rebuild.  ``Database.execute`` / ``stream`` /
``executemany`` are thin wrappers over prepared statements, so every
caller shares one plan cache and one invalidation story.

Prepared statements are **shared across connections** (one statement
cache per database): session state never lives on the statement.  Every
execution method takes an optional ``session`` — the caller's
transaction/snapshot context — defaulting to the database's default
session; :class:`~repro.minidb.session.Connection` passes its own.  The
private plan slot is a single atomically-swapped tuple, so concurrent
executions at worst re-plan redundantly, never execute a torn entry.

:class:`Cursor` is the DB-API-shaped veneer (``execute`` /
``description`` / ``fetchone`` / ``fetchmany`` / ``fetchall`` /
iteration) for code written against that idiom — open it from a
``Database`` (default session) or a ``Connection`` (its session).
"""

from __future__ import annotations

from repro.errors import DatabaseError
from repro.minidb import ast_nodes as ast
from repro.minidb import executor
from repro.minidb.plan_cache import select_plan, validation_key
from repro.minidb.results import ResultSet, StreamingResult

_DML_TYPES = (ast.InsertStmt, ast.UpdateStmt, ast.DeleteStmt)


class PreparedStatement:
    """One parsed statement bound to a database, with a cached plan.

    The plan slot is filled lazily on first execution and revalidated by
    epoch pair on each subsequent one, so holding a prepared statement
    across DDL or statistics churn is always safe — it re-plans instead
    of executing a stale tree.
    """

    __slots__ = ("db", "sql", "statement", "n_params", "_slot", "_check_stats")

    def __init__(self, db, sql: str, statement: ast.Statement):
        self.db = db
        self.sql = sql
        self.statement = statement
        self.n_params = ast.n_params(statement)
        # (payload, tables, validation_key) — swapped atomically
        self._slot: tuple | None = None
        # SELECT plans are costed from statistics; DML scans are not
        self._check_stats = isinstance(statement, ast.SelectStmt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedStatement({self.sql!r})"

    @property
    def is_select(self) -> bool:
        return isinstance(self.statement, ast.SelectStmt)

    def _bind(self, params) -> tuple:
        bound = tuple(params)
        statement = self.statement
        if isinstance(statement, ast.ExplainStmt) and not statement.analyze:
            return bound  # plan-only EXPLAIN never evaluates the slots
        if len(bound) < self.n_params:
            raise DatabaseError(
                f"statement expects {self.n_params} parameter(s), "
                f"got {len(bound)}: {self.sql!r}"
            )
        return bound

    def _plan(self):
        """The cached payload, re-planned when its epoch key is stale.

        Honors ``db.plan_cache.enabled``: with the cache switched off the
        statement re-plans on every execution (the benchmark baseline)
        instead of replaying its private slot.
        """
        caching = self.db.plan_cache.enabled
        if caching:
            slot = self._slot
            if slot is not None and slot[2] == validation_key(
                self.db, slot[1], self._check_stats
            ):
                return slot[0]
        statement = self.statement
        if isinstance(statement, ast.SelectStmt):
            payload, _hit = select_plan(self.db, statement)
            tables = payload.tables
        else:
            payload, _hit = executor.cached_dml(self.db, statement)
            tables = (payload.table_name,)
        if caching:
            self._slot = (
                payload, tables,
                validation_key(self.db, tables, self._check_stats),
            )
        return payload

    def execute(self, params: tuple | list = (), session=None) -> ResultSet:
        """Run the statement under one parameter binding.

        ``session`` carries the caller's transaction/snapshot context
        (a connection's session); None means the default session.
        """
        bound = self._bind(params)
        statement = self.statement
        if isinstance(statement, ast.SelectStmt) and statement.table is not None:
            plan = self._plan()  # plan BEFORE acquiring the snapshot: a
            # planning error must not leak a registered snapshot (which
            # would pin the GC horizon forever)
            snapshot, release = executor._read_context(
                self.db, session, stream=False
            )
            return executor.run_select_plan(
                plan, bound, snapshot=snapshot, release=release
            )
        if isinstance(statement, _DML_TYPES):
            return executor.run_dml(self.db, self._plan(), bound, session)
        # DDL, transactions, EXPLAIN, constant SELECTs: dispatch directly
        return self.db._dispatch(statement, bound, self.sql, session)

    def stream(self, params: tuple | list = (), session=None) -> StreamingResult:
        """Run a SELECT lazily, returning a streaming cursor.

        The cursor holds a snapshot taken now and reads it to
        completion: DML interleaved while it is open — by this session
        or any other — does not change what it yields.
        """
        statement = self.statement
        if not isinstance(statement, ast.SelectStmt):
            raise DatabaseError("stream() supports SELECT statements only")
        bound = self._bind(params)
        if statement.table is None:
            return executor.execute_select(self.db, statement, bound,
                                           stream=True, session=session)
        plan = self._plan()  # before the snapshot — see execute()
        snapshot, release = executor._read_context(self.db, session, stream=True)
        return executor.run_select_plan(
            plan, bound, stream=True, snapshot=snapshot, release=release
        )

    def executemany(self, param_rows, session=None) -> int:
        """Run once per binding; parse and plan are paid exactly once.

        Returns the total rowcount.
        """
        total = 0
        for params in param_rows:
            result = self.execute(params, session=session)
            total += max(result.rowcount, 0)
        return total

    def explain(self, params: tuple | list = (), analyze: bool = False,
                session=None) -> str:
        """The plan as newline-joined text (first line: cache hit/miss)."""
        result = executor.explain(
            self.db, self.statement, tuple(params), analyze=analyze,
            session=session,
        )
        return "\n".join(row[0] for row in result.rows)


class Cursor:
    """A PEP 249-shaped cursor over a :class:`Database` or ``Connection``.

    Results are materialized on ``execute`` (minidb results are small or
    explicitly streamed via ``Database.stream``); ``description`` carries
    the standard 7-tuples with the column name populated.  Statements run
    in the owner's session — cursors from the same connection share its
    transaction state.
    """

    arraysize = 1

    def __init__(self, owner):
        self.connection = owner
        self._session = getattr(owner, "_session", None)
        self.description: list[tuple] | None = None
        self.rowcount = -1
        self.lastrowid: int | None = None
        self._rows: list[tuple] = []
        self._pos = 0
        self._closed = False

    # -- statement execution -------------------------------------------------

    def execute(self, sql, params: tuple | list = ()) -> "Cursor":
        """Run one statement (SQL text or a :class:`PreparedStatement`)."""
        prepared = self._prepared(sql)
        self._load(prepared.execute(params, session=self._session))
        return self

    def executemany(self, sql, param_rows) -> "Cursor":
        prepared = self._prepared(sql)
        total = prepared.executemany(param_rows, session=self._session)
        self.description = None
        self.rowcount = total
        self.lastrowid = None
        self._rows = []
        self._pos = 0
        return self

    def _prepared(self, sql) -> PreparedStatement:
        self._check_open()
        if not isinstance(sql, str):
            # already a statement object — a PreparedStatement, or a
            # network client's RemoteStatement (same execute surface)
            return sql
        return self.connection.prepare(sql)

    def _load(self, result: ResultSet) -> None:
        self._rows = result.rows
        self._pos = 0
        self.rowcount = result.rowcount
        self.lastrowid = result.lastrowid
        self.description = (
            [(name, None, None, None, None, None, None)
             for name in result.columns]
            if result.columns else None
        )

    # -- fetching --------------------------------------------------------------

    def fetchone(self) -> tuple | None:
        self._check_open()
        if self._pos >= len(self._rows):
            return None
        row = self._rows[self._pos]
        self._pos += 1
        return row

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        self._check_open()
        count = self.arraysize if size is None else size
        chunk = self._rows[self._pos:self._pos + max(0, count)]
        self._pos += len(chunk)
        return chunk

    def fetchall(self) -> list[tuple]:
        self._check_open()
        chunk = self._rows[self._pos:]
        self._pos = len(self._rows)
        return chunk

    def __iter__(self):
        return self

    def __next__(self) -> tuple:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._rows = []
        self.description = None

    def _check_open(self) -> None:
        if self._closed:
            raise DatabaseError("cursor is closed")

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
