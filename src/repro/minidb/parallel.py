"""Parallel execution of partitioned scans: fan out, compute, recombine.

A partitioned table (:mod:`repro.minidb.partition`) already splits its
heap into disjoint buckets; this module turns each bucket into one
worker task.  The planner's ``_parallelize`` post-pass rewrites eligible
subtrees into::

    FinalAggregate            merge partial states, finalize, HAVING
      Gather(workers=N)       fork pool, one task per partition
        PartialAggregate      per-partition mergeable aggregate states
          Filter [batch]      vector kernels, worker-side
            ParallelScan      one partition's chunks

(aggregates), or ``Gather`` directly yielding rows (scan/filter) or
merged sorted runs (scan/filter + ORDER BY, k-way merged through
:class:`repro.minidb.partition.MergingIterator`).

Process model — fork inheritance, not pickling
----------------------------------------------

Workers are forked *per Gather execution*, after the job object is
published in a module global.  On Linux ``fork`` gives every child a
copy-on-write snapshot of the parent's memory, so workers reach the
table heap, the compiled filter kernels, projection closures and the
MVCC snapshot **through inheritance** — none of it needs to be
picklable, and no table data crosses a pipe on the way out.  Only the
partition index travels to a worker and only its result (partial
aggregate states, filtered rows, or sorted runs — all plain Python
values) is pickled back.  Pool setup costs a few forks per query, which
the planner's row threshold keeps amortized.

Correctness under MVCC mirrors the serial executor exactly:

* quiescent reads iterate bucket chunks directly (the fork froze the
  child's memory, so workers see an even *stabler* image than the
  serial scan);
* snapshot reads capture per-partition rowid sets in the parent before
  forking (same atomic-copy discipline as ``Table.snapshot_scan``) and
  resolve visibility worker-side with the inherited version chains —
  rows before versions, unchanged;
* version-only rowids (deleted but still visible) are resolved in the
  parent and appended after all partitions, matching the serial scan's
  ``extras`` tail, so row order is bit-identical.

Durable tables read pages through the buffer pool, whose file handle a
forked child would share (seek/read races on the inherited offset), so
paged buckets are materialized parent-side before the fork; workers
still parallelize filtering and aggregation.

Every failure mode — fork unavailable, pool setup error, a worker
dying — falls back to running the identical per-partition code inline,
so a parallel plan can never answer differently from its serial twin.
"""

from __future__ import annotations

import multiprocessing
import threading

from repro.minidb import plan_nodes as nodes
from repro.minidb.functions import _sort_key
from repro.minidb.partition import MergingIterator
from repro.minidb.storage import visible_version
from repro.minidb.vector import (
    BATCH_SIZE,
    _final,
    accumulate_batches,
    batches_from_chunks,
    batches_from_rows,
    filter_batch,
    state_layout,
)

#: the job a freshly forked pool inherits; published under ``_FORK_LOCK``
#: for the instant the pool is being created, then reset in the parent
_ACTIVE_JOB = None
_FORK_LOCK = threading.Lock()


def _invoke(part: int):
    """Pool task entry point: runs in the child against the forked job."""
    return _ACTIVE_JOB.run_partition(part)


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class PartitionJob:
    """One Gather execution: parent-side capture plus the worker task.

    Built from the Gather node's subtree (``PartialAggregate`` /
    ``Filter [batch]`` / ``ParallelScan``), so the pieces a worker runs
    are exactly the operators EXPLAIN shows.  ``prepare()`` runs in the
    parent before the pool forks; ``run_partition(part)`` runs in a
    worker (or inline, for the serial fallback) and returns
    ``(payload, produced_rows)``.
    """

    def __init__(self, gather: "nodes.Gather", params: tuple, snapshot):
        child = gather.child
        partial = child if isinstance(child, nodes.PartialAggregate) else None
        inner = partial.child if partial is not None else child
        filt = inner if isinstance(inner, nodes.BatchFilter) else None
        scan = filt.child if filt is not None else inner
        self.table = scan.table
        self.heap = self.table.rows
        self.n_partitions = self.heap.n_partitions
        self.kernels = filt.kernels if filt is not None else None
        self.params = params
        self.snapshot = snapshot
        self.mode = gather.mode
        self.group_positions = partial.group_positions if partial else None
        self.agg_descs = partial.agg_descs if partial else None
        self.project_fns = gather.project_fns
        self.sort_specs = gather.sort_specs
        # parent-side captures: what they hold depends on capture_kind —
        # "none" (workers read memory buckets directly), "rowids"
        # (snapshot sets per partition, values resolved worker-side),
        # "chunks"/"rows" (paged buckets materialized parent-side)
        self.capture_kind = "none"
        self.captured: list | None = None
        self.extra_rows: list | None = None

    # -- parent side ---------------------------------------------------------

    def prepare(self) -> None:
        """Capture whatever must be read in the parent, pre-fork."""
        heap = self.heap
        paged = any(not isinstance(bucket, dict) for bucket in heap.buckets)
        if self.snapshot is None:
            if paged:
                self.capture_kind = "chunks"
                self.captured = [
                    list(heap.partition_chunks(part, BATCH_SIZE))
                    for part in range(self.n_partitions)
                ]
            return
        # snapshot read: capture the rowid sets first (one atomic copy
        # per bucket), then the version-only extras — the same
        # capture-then-extras order Table.snapshot_scan uses
        rowid_sets = [
            heap.partition_rowids(part) for part in range(self.n_partitions)
        ]
        versions = self.table.versions
        self.extra_rows = []
        if versions:
            in_start: set = set()
            for rowids in rowid_sets:
                in_start.update(rowids)
            snapshot = self.snapshot
            vget = versions.get
            for rowid in tuple(versions):
                if rowid in in_start:
                    continue
                chain = vget(rowid)
                if chain is None:
                    continue
                version = visible_version(chain, snapshot)
                if version is not None:
                    self.extra_rows.append([rowid, *version.values])
        if paged:
            self.capture_kind = "rows"
            self.captured = [
                list(self._visible_rows(rowids)) for rowids in rowid_sets
            ]
        else:
            self.capture_kind = "rowids"
            self.captured = rowid_sets

    def run_extras(self):
        """The serial tail: version-only rows, processed parent-side."""
        if not self.extra_rows:
            return None
        return self._run_rows(self.extra_rows)

    # -- worker side (also the inline fallback) ------------------------------

    def run_partition(self, part: int):
        """One partition's scan→filter→{aggregate,collect,sort} task."""
        if self.capture_kind == "rows":
            return self._run_rows(self.captured[part])
        if self.capture_kind == "rowids":
            rows = self._visible_rows(self.captured[part])
            return self._run_batches(batches_from_rows(rows))
        if self.capture_kind == "chunks":
            chunks = self.captured[part]
        else:
            chunks = self.heap.partition_chunks(part, BATCH_SIZE)
        return self._run_batches(batches_from_chunks(chunks))

    def _visible_rows(self, rowids):
        """Rows-before-versions snapshot resolution of one rowid set."""
        heap = self.heap
        vget = self.table.versions.get
        snapshot = self.snapshot
        for rowid in rowids:
            values = heap.get(rowid)
            chain = vget(rowid)
            if chain is None:
                if values is not None:
                    yield [rowid, *values]
                continue
            version = visible_version(chain, snapshot)
            if version is not None:
                yield [rowid, *version.values]

    def _run_rows(self, rows):
        return self._run_batches(batches_from_rows(rows))

    def _run_batches(self, batches):
        kernels = self.kernels
        params = self.params
        if kernels is not None:
            batches = (
                narrowed for batch in batches
                if (narrowed := filter_batch(batch, kernels, params))
                is not None
            )
        if self.mode == "partial":
            produced = 0

            def counted():
                nonlocal produced
                for batch in batches:
                    produced += batch.count
                    yield batch

            groups = accumulate_batches(counted(), self.group_positions,
                                        self.agg_descs)
            return groups, produced
        if self.mode == "rows":
            out = [row for batch in batches for row in batch.rows()]
            return out, len(out)
        # sorted: project, key and sort this partition's run locally —
        # the parent only k-way merges.  Python's sort is stable and the
        # merge breaks ties by partition index, so equal keys come out
        # in stream order exactly as one global stable sort would emit.
        from repro.minidb.executor import _order_key
        project_fns = self.project_fns
        specs = self.sort_specs
        out = []
        for batch in batches:
            for row in batch.rows():
                out_row = tuple(fn(row, params) for fn in project_fns)
                out.append((_order_key(specs, row, out_row, params), out_row))
        out.sort(key=lambda pair: pair[0])
        return out, len(out)


def _map_partitions(job: PartitionJob, n_workers: int) -> list:
    """Run every partition task, through a forked pool when possible.

    ``n_workers <= 1`` (or an unavailable/failed fork) degrades to the
    inline loop — the exact same per-partition code, same results; a
    query error surfacing through the pool also re-raises here, from
    the serial run, with its original traceback.
    """
    if n_workers > 1 and job.n_partitions > 1 and fork_available():
        try:
            return _pool_map(job, min(n_workers, job.n_partitions))
        except Exception:
            pass
    return [job.run_partition(part) for part in range(job.n_partitions)]


def _pool_map(job: PartitionJob, pool_size: int) -> list:
    global _ACTIVE_JOB
    ctx = multiprocessing.get_context("fork")
    with _FORK_LOCK:
        # the job must be published while the pool forks so every child
        # inherits it; reset immediately after — children keep their copy
        _ACTIVE_JOB = job
        try:
            pool = ctx.Pool(pool_size)
        finally:
            _ACTIVE_JOB = None
    try:
        return pool.map(_invoke, range(job.n_partitions))
    finally:
        pool.terminate()
        pool.join()


def run_gather(node: "nodes.Gather", params: tuple, snapshot, counters):
    """Execute a Gather node; the executor's handler body.

    Results recombine in partition order (extras last), which is the
    serial scan order — so concatenated rows, first-seen group order and
    merge ties all match the serial plan bit for bit.
    """
    job = PartitionJob(node, params, snapshot)
    job.prepare()
    results = _map_partitions(job, node.n_workers)
    extra = job.run_extras()
    if extra is not None:
        results.append(extra)
    partitions = getattr(counters, "partitions", None)
    if partitions is not None:
        partitions[id(node)] = [produced for _payload, produced in results]
    if node.mode == "partial":
        for payload, _produced in results:
            yield payload
    elif node.mode == "rows":
        for payload, _produced in results:
            yield from payload
    else:  # sorted: k-way merge of per-partition sorted runs
        runs = [iter(payload) for payload, _produced in results if payload]
        for _key, out_row in MergingIterator(runs):
            yield out_row


def merge_states(parts, agg_descs) -> dict:
    """Recombine per-partition aggregate states in arrival order.

    Arrival order is partition order, so first-seen group order — and
    first-seen-wins MIN/MAX ties — match the serial fold over the
    concatenated stream.  Every state merge is the associative
    counterpart of its accumulator: counts and totals add, int-ness
    survives only if every side kept it, champions compare via
    ``_sort_key`` with strict inequality.
    """
    offsets, _template = state_layout(agg_descs)
    merged: dict = {}
    for groups in parts:
        for key, entry in groups.items():
            current = merged.get(key)
            if current is None:
                merged[key] = list(entry)
                continue
            for (name, _pos), offset in zip(agg_descs, offsets):
                _merge_entry(name, current, entry, offset)
    return merged


def _merge_entry(name, current, incoming, o) -> None:
    if name == "COUNT":
        current[o] += incoming[o]
    elif name == "SUM":
        if incoming[o + 1]:  # merge only a state that saw values
            current[o] += incoming[o]
            current[o + 1] = True
            if not incoming[o + 2]:
                current[o + 2] = False
    elif name == "AVG":
        current[o] += incoming[o]
        current[o + 1] += incoming[o + 1]
    else:  # MIN / MAX: keep the earlier champion on ties
        value = incoming[o]
        if value is None:
            return
        best = current[o]
        if best is None:
            current[o] = value
        elif name == "MIN":
            if _sort_key(value) < _sort_key(best):
                current[o] = value
        elif _sort_key(value) > _sort_key(best):
            current[o] = value


def finalized_rows(merged: dict, agg_descs):
    """Finalize merged states into ``[*group_values, *finals]`` rows."""
    offsets, _template = state_layout(agg_descs)
    for entry in merged.values():
        out = list(entry[0])
        for (name, _pos), offset in zip(agg_descs, offsets):
            out.append(_final(name, entry, offset))
        yield out
